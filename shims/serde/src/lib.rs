//! Offline shim for `serde`.
//!
//! The workspace derives `serde::Serialize`/`serde::Deserialize` on config
//! and topology types but performs no actual serde serialization (exports
//! are hand-rolled in `ft-topo::export`). This shim provides the derive
//! macro names (as no-ops, via the local `serde_derive` shim) and
//! blanket-implemented marker traits so bounds like `T: Serialize` would
//! still resolve.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait SerializeMarker {}
impl<T: ?Sized> SerializeMarker for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait DeserializeMarker {}
impl<T: ?Sized> DeserializeMarker for T {}
