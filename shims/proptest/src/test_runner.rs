//! Runner-side types: configuration and the reject/fail outcome used by the
//! `prop_assert!`/`prop_assume!` macros.

/// Subset of `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is discarded, not counted as a run.
    Reject(&'static str),
    /// `prop_assert!`-family failure: the whole test fails.
    Fail(String),
}

/// FNV-1a over bytes; used to derive a stable per-test seed from the name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{any, Just, Strategy, TestRng};

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }

    #[test]
    fn strategies_sample_expected_shapes() {
        let mut rng = TestRng::new(1);
        let s = (1usize..4, 0u32..10).prop_map(|(a, b)| a as u32 + b);
        for _ in 0..100 {
            assert!(s.sample(&mut rng) < 13);
        }
        let fm = (2usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        for _ in 0..50 {
            let v = fm.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        assert_eq!(Just(7u32).sample(&mut rng), 7);
        let _: bool = any::<bool>().sample(&mut rng);
    }
}
