//! Offline shim for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace replaces
//! `proptest` with this local, API-compatible subset (see
//! `shims/README.md`). It supports the forms the flat-tree property tests
//! use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {..} }`
//! * strategies: integer/float ranges, tuples, `Just`, `any::<T>()`,
//!   `proptest::collection::vec`, `.prop_map`, `.prop_flat_map`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//!
//! Unlike real proptest there is **no shrinking** and **no persistence**
//! (`proptest-regressions` files are ignored); failures report the case
//! number and the deterministic per-test seed instead.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// Size specification for [`vec`]: an exact length or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// `proptest::collection::vec`: a vector of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test entry macro: expands each `fn name(pat in strategy, ..)`
/// into a `#[test]` that samples `cases` inputs deterministically.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __seed = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
            let mut __rng = $crate::strategy::TestRng::new(__seed);
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(20).max(1000);
            while __passed < __cfg.cases {
                __attempts += 1;
                if __attempts > __max_attempts {
                    panic!(
                        "proptest shim: {} rejected too many cases ({} attempts for {} passes)",
                        stringify!($name), __attempts, __passed
                    );
                }
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest shim: {} failed at case {} (seed {:#x}): {}",
                            stringify!($name), __passed + 1, __seed, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` / with trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// `prop_assume!(cond)`: silently discard the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}
