//! Strategy trait and the combinators/primitive strategies the workspace
//! property tests use. Sampling is purely random (no shrinking).

/// Deterministic SplitMix64 generator for test-case sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.next_u64() % (hi - lo)
        }
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Subset of `proptest::strategy::Strategy`: a recipe for sampling values.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

// Strategies are sampled through references inside tuple impls.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// `Just(v)`: always produce a clone of `v`.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.below(0, (self.end - self.start) as u64)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.below(0, (hi - lo) as u64 + 1)) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Subset of `proptest::arbitrary::Arbitrary` for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}
