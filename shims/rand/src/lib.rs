//! Offline shim for the `rand` crate.
//!
//! The build container has no registry access, so the workspace replaces
//! `rand` with this local, API-compatible subset (see `shims/README.md`).
//! It implements exactly what the flat-tree crates use:
//!
//! * `StdRng` + `SeedableRng::seed_from_u64`
//! * `Rng::random::<T>()` and `Rng::random_range(range)`
//! * slice `shuffle` / `choose` via the prelude traits
//!
//! The generator is SplitMix64 — deterministic per seed, statistically fine
//! for topology sampling, NOT bit-compatible with upstream `rand` (seeds
//! produce different sequences). Nothing in the workspace relies on the
//! upstream sequences; tests assert properties or same-seed stability only.

/// Deterministic 64-bit PRNG (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Types samplable by [`Rng::random`].
pub trait FromRng {
    fn from_rng(rng: &mut StdRng) -> Self;
}

impl FromRng for f64 {
    fn from_rng(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Subset of `rand::Rng`.
pub trait Rng {
    fn random<T: FromRng>(&mut self) -> T;
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Upstream-compat alias kept for older call sites.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

/// Subset of `rand::seq::SliceRandom` (shuffle) + `IndexedRandom` (choose).
pub trait SliceRandom {
    type Item;
    fn shuffle(&mut self, rng: &mut StdRng);
    fn choose(&self, rng: &mut StdRng) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        // Fisher–Yates
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut StdRng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

pub mod seq {
    pub use crate::SliceRandom;
}

pub mod prelude {
    pub use crate::{Rng, SampleRange, SeedableRng, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(0.5..4.0);
            assert!((0.5..4.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let i: u32 = rng.random_range(0..=5u32);
            assert!(i <= 5);
        }
    }

    #[test]
    fn shuffle_is_permutation_and_choose_hits_members() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
