//! Offline shim for `parking_lot`: the non-poisoning `RwLock`/`Mutex` API
//! implemented over `std::sync`. Poisoned locks are re-entered (matching
//! parking_lot, which has no poisoning), not propagated.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
