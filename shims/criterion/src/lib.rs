//! Offline shim for `criterion`: enough API for the ft-bench targets to
//! compile and produce rough wall-clock numbers. No statistics, plots, or
//! baselines — each benchmark runs a fixed warm-up plus a timed batch and
//! prints mean iteration time.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Bench ID: `BenchmarkId::new("name", param)`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Timing loop handed to bench closures.
pub struct Bencher {
    iters: u64,
    nanos: f64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warm-up: one call, also used to pick the batch size
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        // aim for ~0.2 s of measurement, between 1 and 1000 iterations
        let n = ((0.2 / once) as u64).clamp(1, 1000);
        let t1 = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.iters = n;
        self.nanos = t1.elapsed().as_secs_f64() * 1e9 / n as f64;
    }
}

/// Group of related benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample count is ignored by the shim; kept for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            nanos: 0.0,
        };
        f(&mut b);
        report(&self.name, &id.label, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: 0,
            nanos: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &id.label, &b);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, label: &str, b: &Bencher) {
    let (value, unit) = if b.nanos >= 1e9 {
        (b.nanos / 1e9, "s")
    } else if b.nanos >= 1e6 {
        (b.nanos / 1e6, "ms")
    } else if b.nanos >= 1e3 {
        (b.nanos / 1e3, "µs")
    } else {
        (b.nanos, "ns")
    };
    println!(
        "{group}/{label}: {value:.3} {unit}/iter ({} iters)",
        b.iters
    );
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string()).bench_function("", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` passes --test-threads etc. to harness=false bench
            // binaries under `--benches`; a bare `--bench` arg means "run".
            $( $group(); )+
        }
    };
}
