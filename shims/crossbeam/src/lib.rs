//! Offline shim for `crossbeam`: scoped threads over `std::thread::scope`
//! (stable since 1.63, so the crossbeam dependency is pure API compat), plus
//! the subset of `crossbeam::channel` the workspace uses (see [`channel`]).
//!
//! Panic semantics differ slightly from crossbeam: a panicking worker makes
//! `std::thread::scope` itself panic at join, so [`scope`] never actually
//! returns `Err` — callers' `.expect("worker panicked")` still behaves
//! correctly (the panic propagates, with a different message).

use std::any::Any;

/// Mirror of `crossbeam::thread::Scope`, wrapping the std scope.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker; the closure receives the scope (crossbeam signature)
    /// so nested spawns keep working.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Mirror of `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod thread {
    pub use crate::{scope, Scope};
}

/// Offline subset of `crossbeam::channel`: multi-producer/multi-consumer
/// bounded and unbounded channels over `std::sync::mpsc`.
///
/// `std::sync::mpsc::Sender`/`SyncSender` are `Sync` since Rust 1.72, so
/// producers share the sender directly; the single-consumer `Receiver` is
/// wrapped in an `Arc<Mutex<_>>` to provide crossbeam's MPMC semantics
/// (each message is delivered to exactly one receiver clone). Receiving
/// briefly serializes consumers on the mutex, which is fine for the
/// job-queue workloads this workspace runs.
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Duration;

    /// The channel is disconnected (all receivers dropped).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Non-blocking send failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// All receivers were dropped.
        Disconnected(T),
    }

    /// The channel is disconnected and drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders were dropped and the queue is drained.
        Disconnected,
    }

    /// Timed receive failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders were dropped and the queue is drained.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half; clone freely across threads.
    pub struct Sender<T> {
        inner: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }

        /// Sends without blocking; fails with [`TrySendError::Full`] when a
        /// bounded channel is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                Tx::Unbounded(s) => s
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// Receiving half; clones share one queue (each message goes to exactly
    /// one receiver).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Tx::Unbounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// A bounded MPMC channel holding at most `cap` queued messages
    /// (`cap` ≥ 1; a zero capacity is promoted to 1 rather than exposing
    /// mpsc's rendezvous semantics, which crossbeam does not share).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (
            Sender {
                inner: Tx::Bounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn mpmc_channel_fan_out() {
        let (tx, rx) = crate::channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = std::sync::Mutex::new(0u32);
        crate::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        *total.lock().unwrap() += v;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner().unwrap(), (0..100).sum());
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = crate::channel::bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(crate::channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_and_disconnect() {
        let (tx, rx) = crate::channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(crate::channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(crate::channel::RecvTimeoutError::Disconnected)
        );
        assert_eq!(
            rx.try_recv(),
            Err(crate::channel::TryRecvError::Disconnected)
        );
    }

    #[test]
    fn sender_shared_across_threads() {
        let (tx, rx) = crate::channel::bounded::<u32>(64);
        crate::scope(|s| {
            for t in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..8 {
                        tx.send(t * 8 + i).unwrap();
                    }
                });
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<u32> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_workers_share_stack_data() {
        let data = vec![1u32, 2, 3, 4];
        let total = std::sync::Mutex::new(0u32);
        crate::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    *total.lock().unwrap() += chunk.iter().sum::<u32>();
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner().unwrap(), 10);
    }
}
