//! Offline shim for `crossbeam`: scoped threads over `std::thread::scope`
//! (stable since 1.63, so the crossbeam dependency is pure API compat).
//!
//! Panic semantics differ slightly from crossbeam: a panicking worker makes
//! `std::thread::scope` itself panic at join, so [`scope`] never actually
//! returns `Err` — callers' `.expect("worker panicked")` still behaves
//! correctly (the panic propagates, with a different message).

use std::any::Any;

/// Mirror of `crossbeam::thread::Scope`, wrapping the std scope.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker; the closure receives the scope (crossbeam signature)
    /// so nested spawns keep working.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Mirror of `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod thread {
    pub use crate::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_share_stack_data() {
        let data = vec![1u32, 2, 3, 4];
        let total = std::sync::Mutex::new(0u32);
        crate::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    *total.lock().unwrap() += chunk.iter().sum::<u32>();
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner().unwrap(), 10);
    }
}
