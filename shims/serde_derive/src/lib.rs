//! Offline shim for `serde_derive`: no-op derives.
//!
//! The workspace only uses `#[derive(serde::Serialize, serde::Deserialize)]`
//! as forward-looking annotations — nothing actually serializes (export is
//! hand-rolled JSON/DOT in `ft-topo::export`). These derives therefore emit
//! no code; the marker traits in the `serde` shim are blanket-implemented.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
