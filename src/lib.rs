//! # flat-tree
//!
//! A production-quality Rust reproduction of *"Flat-tree: A Convertible Data
//! Center Network Architecture from Clos to Random Graph"* (Xia & Ng,
//! HotNets-XV, 2016).
//!
//! Flat-tree is a data center network that is physically built as a Clos
//! (fat-tree) network but can be *converted*, by re-programming small
//! port-count converter switches, into approximated random graphs at several
//! scales — network-wide, per-Pod, or a hybrid mix of zones.
//!
//! This façade crate re-exports the workspace crates:
//!
//! * [`graph`] — graph substrate (BFS/APSP, Dijkstra, Yen KSP, Dinic).
//! * [`lp`] — dense two-phase simplex LP solver.
//! * [`mcf`] — maximum concurrent multi-commodity flow (exact + FPTAS).
//! * [`topo`] — baseline topologies: fat-tree, Jellyfish random graph,
//!   two-stage random graph; the shared [`topo::Network`] model.
//! * [`core`] — the flat-tree architecture itself: converter switches, Pods,
//!   wiring patterns, operation modes.
//! * [`control`] — centralized controller: zones, reconfiguration plans,
//!   ECMP/KSP routing.
//! * [`workload`] — data-center traffic patterns and placement localities.
//! * [`metrics`] — average path length and throughput evaluation.
//! * [`des`] — deterministic discrete-event engine: total-order event
//!   keys, pending-event queue, component handler registry (extension).
//! * [`sim`] — flow-level max-min fairness simulator (extension); its
//!   `des` module runs flows, failures, and live zone conversions on the
//!   [`des`] engine.
//! * [`serve`] — resident FTQ/1 query service: worker pool, materialization
//!   cache, request metrics (in-process + localhost TCP transports).
//! * [`obs`] — zero-dependency observability: structured spans (JSONL
//!   sink), a global counter/gauge/histogram registry, and Prometheus-style
//!   exposition; off by default at one relaxed atomic load per site.
//!
//! ## Quickstart
//!
//! ```
//! use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
//! use flat_tree::metrics::path_length::average_server_path_length;
//!
//! // Build a k = 8 flat-tree with the paper's profiled m = k/8, n = 2k/8.
//! let cfg = FlatTreeConfig::for_fat_tree_k(8).unwrap();
//! let ft = FlatTree::new(cfg).unwrap();
//!
//! // Convert: Clos mode reproduces the fat-tree exactly.
//! let clos = ft.materialize(&Mode::Clos).unwrap();
//! // Global random-graph approximation flattens the hierarchy.
//! let flat = ft.materialize(&Mode::GlobalRandom).unwrap();
//!
//! let apl_clos = average_server_path_length(&clos);
//! let apl_flat = average_server_path_length(&flat);
//! assert!(apl_flat < apl_clos, "flattening shortens paths");
//! ```

pub mod cli;

pub use ft_control as control;
pub use ft_core as core;
pub use ft_des as des;
pub use ft_graph as graph;
pub use ft_lp as lp;
pub use ft_mcf as mcf;
pub use ft_metrics as metrics;
pub use ft_obs as obs;
pub use ft_serve as serve;
pub use ft_sim as sim;
pub use ft_topo as topo;
pub use ft_workload as workload;
