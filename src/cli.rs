//! Command-line interface backing the `ftctl` binary.
//!
//! Hand-rolled argument handling (the workspace's dependency policy has no
//! CLI crate) with the command logic separated from I/O so it is unit
//! testable: every command produces a [`String`] report, and the binary
//! just prints it.
//!
//! ```text
//! ftctl topo    --kind fat-tree|random-graph|two-stage|flat-tree -k 8
//!               [--mode clos|local-rg|global-rg] [--seed S] [--dot F] [--json F]
//! ftctl metrics --kind … -k 8 [--mode …] [--seed S]
//! ftctl convert -k 8 --from <mode> --to <mode>
//! ftctl profile -k 8
//! ftctl serve   -k 8 [--port 0] [--workers 4] [--cache 8] [--queue 64]
//! ftctl query   -k 8 --req "paths mode=global-rg; stats"
//! ```

use crate::control::{plan_transition, plan_zone_transition, Zone};
use crate::core::PodMode;
use crate::core::{profile_mn, FlatTree, FlatTreeConfig, Mode};
use crate::graph::bridges::bridges;
use crate::graph::stats::{diameter, mean_degree};
use crate::graph::{par, Csr, DistMatrix};
use crate::mcf::{
    aggregate_commodities, max_concurrent_flow, max_concurrent_flow_sharded, CapGraph,
    DijkstraScratch, FptasOptions, ShardConfig,
};
use crate::metrics::bisection::random_bisection_bandwidth;
use crate::metrics::path_length::{
    average_intra_pod_path_length, average_server_path_length, SwitchDistances,
};
use crate::metrics::throughput::{throughput_all_to_all, SolverKind, ThroughputOptions};
use crate::serve::{serve_listener, ServeConfig, Service};
use crate::sim::{flows_with_arrivals, ConversionEvent, DesSimulator, RouterPolicy, TopoEvent};
use crate::topo::export::{to_dot, to_json};
use crate::topo::{
    fat_tree, jellyfish_matching_fat_tree, two_stage_random_graph, DedupedApsp, Network,
    TwoStageParams,
};
use crate::workload::{generate, generate_on, Locality, TrafficPattern, WorkloadSpec};
use ft_graph::NodeId;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed command line: subcommand plus `--flag value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The subcommand (`topo`, `metrics`, `convert`, `profile`).
    pub command: String,
    /// Flag values, keys without the leading `--`.
    pub options: HashMap<String, String>,
    /// Bare (non-flag) arguments, in order. Only commands listed in
    /// [`POSITIONAL_COMMANDS`] accept them; elsewhere a bare token is
    /// still a parse error.
    pub positional: Vec<String>,
}

/// Errors surfaced to the user as friendly messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text shown by `--help` and on parse errors.
pub const USAGE: &str = "\
ftctl — flat-tree topology tool

USAGE:
  ftctl topo    --kind <fat-tree|random-graph|two-stage|flat-tree> -k <even>
                [--mode <clos|local-rg|global-rg>] [--seed <u64>]
                [--dot <file>] [--json <file>]
  ftctl metrics --kind <…> -k <even> [--mode <…>] [--seed <u64>]
  ftctl convert -k <even> --from <mode> --to <mode>
  ftctl profile -k <even>
  ftctl serve   -k <even> [--port <u16, default 0 = OS-picked>]
                [--workers <n>] [--cache <n>] [--queue <n>]
                [--window <epoch ms, default 1000; 0 disables>]
                [--trace <file.jsonl>]
  ftctl query   -k <even> [--req \"<ftq line>[; <ftq line>…]\"] [--workers <n>]
                [--trace <file.jsonl>]
  ftctl sim     --scenario <file> [--quick] [--json <file|->]
                [--events <file.jsonl>] [--trace <file.jsonl>]
  ftctl bench   [--json <file>] [--quick] [--check <baseline.json>]
                [--trace <file.jsonl>]
  ftctl lint    [--json <file|->] [--sarif <file|->] [--fix-allow]
                [--root <dir, default .>]
  ftctl trace   <spans.jsonl> [--top <n, default 15>] [--diff <old.jsonl>]
                [--chrome <file.json>] [--folded <file.folded>]

Topology kinds build from the same equipment as fat-tree(k). flat-tree
requires --mode; other kinds ignore it.

serve runs the resident FTQ/1 query service on localhost TCP until a client
sends `shutdown`; query boots the same service in-process, issues the
`;`-separated request lines, and prints each reply (protocol verbs:
topo | paths | throughput | plan | convert | stats | metrics | shutdown;
`metrics` replies with a Prometheus-style exposition, one metric per line).

--trace enables the ft-obs instrumentation for the run and streams
structured spans (one JSON object per line) to the given file; without it
all instrumentation stays off at a single atomic-load cost per site.

sim runs a seeded scenario on the ft-des discrete-event engine: a workload
replayed as Poisson flow arrivals over a flat-tree, optionally with one
live zone conversion (drained links, converter latency, re-routed flows).
The scenario file is `key = value` lines (# comments): k, policy
(ecmp | ksp:<n>), from (initial mode), to (target mode) or to-zones
(name:lo..hi:mode,…), convert-at, latency, new-policy, workload
(hotspot | all-to-all | permutation), cluster-size, locality
(strong | weak | none), seed, size, rate, rounds, capacity, horizon.
--json writes the ft-des-sim/1 summary (no wall-clock fields, so two runs
of one scenario compare bit-for-bit); --events streams the per-event JSONL
trace; --quick caps the arrival rounds at 1. See scenarios/*.scn.

bench times the hot-path kernels (CSR BFS-APSP sequential vs parallel,
Dijkstra with fresh vs reused scratch buffers, the FPTAS throughput solve
through both the source-batched and the round-sharded engines, and a
ft-des event storm reporting engine-only events/s plus solver_ms) on
fixed seeds at k ∈ {8, 16, 32}, plus scale tiers: the k = 64
symmetry-aggregated all-to-all FPTAS (quick runs too, release builds
only) and the k = 128 aggregated FPTAS and deduplicated APSP (full runs
only). Optionally writes a JSON report (--quick restricts the classic
sizes to k = 8 with a shorter FPTAS step cap).
--check compares the run against a previously written report: determinism
fields (checksums, distance sums, λ at matching step budgets) must match
exactly and any kernel slower than 1.25× baseline + 5 ms fails the run.
The worker count honours the FT_THREADS environment override.

lint runs the ft-lint analyzer (hygiene, determinism, and concurrency rule
packs — see DESIGN.md §13) over the workspace. --json writes the ft-lint/2
machine-readable report, --sarif a SARIF 2.1.0 log (`-` = stdout);
--fix-allow rewrites lint-allow.toml, deleting entries that no longer
suppress anything. Violations and stale allow entries exit non-zero.

trace analyzes a span JSONL file produced by --trace: per-name aggregates
(count, total/self time, p50/p95), the critical path under each root span
(which FPTAS phase, shard round or DES epoch dominated), and — when the
run performed a live conversion — the per-epoch disruption timeline.
--diff compares an older trace against this one and ranks span names by
total-time delta (regression attribution); --chrome exports Chrome
trace-event JSON (chrome://tracing, Perfetto); --folded writes collapsed
stacks weighted by self time for flamegraph tools.";

/// Flags that take no value; `parse` records them as `\"true\"`.
const BOOL_FLAGS: &[&str] = &["quick", "fix-allow"];

/// Commands whose bare arguments are collected as positionals instead of
/// being rejected (`ftctl trace <file.jsonl>`).
const POSITIONAL_COMMANDS: &[&str] = &["trace"];

/// Splits raw arguments into an [`Invocation`].
pub fn parse(args: &[String]) -> Result<Invocation, CliError> {
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or_else(|| CliError(format!("missing subcommand\n\n{USAGE}")))?
        .clone();
    if command == "--help" || command == "-h" || command == "help" {
        return Ok(Invocation {
            command: "help".into(),
            options: HashMap::new(),
            positional: Vec::new(),
        });
    }
    let allow_positional = POSITIONAL_COMMANDS.contains(&command.as_str());
    let mut options = HashMap::new();
    let mut positional = Vec::new();
    while let Some(flag) = it.next() {
        let key = match flag.strip_prefix("--").or_else(|| flag.strip_prefix('-')) {
            Some(key) => key,
            None if allow_positional => {
                positional.push(flag.clone());
                continue;
            }
            None => {
                return Err(CliError(format!(
                    "expected a flag, got {flag:?}\n\n{USAGE}"
                )))
            }
        };
        if BOOL_FLAGS.contains(&key) {
            options.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| CliError(format!("flag --{key} needs a value")))?;
        options.insert(key.to_string(), value.clone());
    }
    Ok(Invocation {
        command,
        options,
        positional,
    })
}

fn get_k(inv: &Invocation) -> Result<usize, CliError> {
    let k: usize = inv
        .options
        .get("k")
        .ok_or_else(|| CliError("missing -k <even fat-tree parameter>".into()))?
        .parse()
        .map_err(|_| CliError("-k must be an integer".into()))?;
    if k < 4 || !k.is_multiple_of(2) {
        return Err(CliError(format!("-k must be even and ≥ 4, got {k}")));
    }
    Ok(k)
}

fn get_seed(inv: &Invocation) -> Result<u64, CliError> {
    match inv.options.get("seed") {
        None => Ok(1),
        Some(s) => s
            .parse()
            .map_err(|_| CliError("--seed must be an integer".into())),
    }
}

fn parse_mode(s: &str) -> Result<Mode, CliError> {
    match s {
        "clos" => Ok(Mode::Clos),
        "local-rg" | "local" => Ok(Mode::LocalRandom),
        "global-rg" | "global" => Ok(Mode::GlobalRandom),
        other => Err(CliError(format!(
            "unknown mode {other:?} (use clos | local-rg | global-rg)"
        ))),
    }
}

fn build_network(inv: &Invocation) -> Result<Network, CliError> {
    let k = get_k(inv)?;
    let seed = get_seed(inv)?;
    let kind = inv
        .options
        .get("kind")
        .map(String::as_str)
        .unwrap_or("flat-tree");
    match kind {
        "fat-tree" => fat_tree(k).map_err(|e| CliError(e.to_string())),
        "random-graph" => jellyfish_matching_fat_tree(k, seed).map_err(|e| CliError(e.to_string())),
        "two-stage" => two_stage_random_graph(
            TwoStageParams::matching_fat_tree(k).map_err(|e| CliError(e.to_string()))?,
            seed,
        )
        .map_err(|e| CliError(e.to_string())),
        "flat-tree" => {
            let mode = parse_mode(
                inv.options
                    .get("mode")
                    .map(String::as_str)
                    .unwrap_or("clos"),
            )?;
            let cfg = FlatTreeConfig::for_fat_tree_k(k).map_err(|e| CliError(e.to_string()))?;
            let ft = FlatTree::new(cfg).map_err(|e| CliError(e.to_string()))?;
            ft.materialize(&mode).map_err(|e| CliError(e.to_string()))
        }
        other => Err(CliError(format!(
            "unknown --kind {other:?} (use fat-tree | random-graph | two-stage | flat-tree)"
        ))),
    }
}

/// Executes a parsed invocation, returning the report to print.
pub fn run(inv: &Invocation) -> Result<String, CliError> {
    match inv.command.as_str() {
        "help" => Ok(USAGE.to_string()),
        "topo" => cmd_topo(inv),
        "metrics" => cmd_metrics(inv),
        "convert" => cmd_convert(inv),
        "profile" => cmd_profile(inv),
        "serve" => cmd_serve(inv),
        "query" => cmd_query(inv),
        "sim" => cmd_sim(inv),
        "bench" => cmd_bench(inv),
        "lint" => cmd_lint(inv),
        "trace" => cmd_trace(inv),
        other => Err(CliError(format!("unknown subcommand {other:?}\n\n{USAGE}"))),
    }
}

fn cmd_topo(inv: &Invocation) -> Result<String, CliError> {
    let net = build_network(inv)?;
    let mut out = String::new();
    let eq = net.equipment();
    let _ = writeln!(out, "{}", net.name());
    let _ = writeln!(
        out,
        "  switches: {}   servers: {}   links: {}",
        eq.switches, eq.servers, eq.links
    );
    if let Some(path) = inv.options.get("dot") {
        std::fs::write(path, to_dot(&net))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "  dot written to {path}");
    }
    if let Some(path) = inv.options.get("json") {
        std::fs::write(path, to_json(&net))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "  json written to {path}");
    }
    Ok(out)
}

fn cmd_metrics(inv: &Invocation) -> Result<String, CliError> {
    let net = build_network(inv)?;
    let k = get_k(inv)?;
    let sg = net.switch_graph();
    let mut out = String::new();
    let _ = writeln!(out, "{}", net.name());
    let _ = writeln!(
        out,
        "  average path length (servers): {:.4}",
        average_server_path_length(&net)
    );
    let _ = writeln!(
        out,
        "  intra-pod path length:         {:.4}",
        average_intra_pod_path_length(&net, k * k / 4)
    );
    let _ = writeln!(
        out,
        "  switch diameter:               {}",
        diameter(&sg).map(|d| d.to_string()).unwrap_or("∞".into())
    );
    let _ = writeln!(
        out,
        "  mean switch degree:            {:.2}",
        mean_degree(&sg)
    );
    let _ = writeln!(
        out,
        "  fabric bridges:                {}",
        bridges(&sg).len()
    );
    let _ = writeln!(
        out,
        "  random-bisection bandwidth:    {}",
        random_bisection_bandwidth(&net, 16, get_seed(inv)?)
    );
    Ok(out)
}

fn cmd_convert(inv: &Invocation) -> Result<String, CliError> {
    let k = get_k(inv)?;
    let from = parse_mode(
        inv.options
            .get("from")
            .ok_or_else(|| CliError("missing --from <mode>".into()))?,
    )?;
    let to = parse_mode(
        inv.options
            .get("to")
            .ok_or_else(|| CliError("missing --to <mode>".into()))?,
    )?;
    let cfg = FlatTreeConfig::for_fat_tree_k(k).map_err(|e| CliError(e.to_string()))?;
    let ft = FlatTree::new(cfg).map_err(|e| CliError(e.to_string()))?;
    let a = ft.resolve(&from).map_err(|e| CliError(e.to_string()))?;
    let b = ft.resolve(&to).map_err(|e| CliError(e.to_string()))?;
    let plan = crate::control::plan_transition(&ft, &a, &b).map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "conversion {} → {} (k = {k})",
        from.label(),
        to.label()
    );
    let _ = writeln!(
        out,
        "  converter reprogramming ops: {} ({} four-port, {} six-port)",
        plan.converter_ops(),
        plan.four_changes.len(),
        plan.six_changes.len()
    );
    let _ = writeln!(
        out,
        "  logical links rewired:       {} removed, {} added",
        plan.links_removed.len(),
        plan.links_added.len()
    );
    Ok(out)
}

fn cmd_profile(inv: &Invocation) -> Result<String, CliError> {
    let k = get_k(inv)?;
    let result = profile_mn(k, 1).map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profiling sweep for k = {k} (global-RG average path length):"
    );
    for p in &result.points {
        let mark = if (p.m, p.n) == (result.best.m, result.best.n) {
            "  ← best"
        } else {
            ""
        };
        let _ = writeln!(out, "  m = {}, n = {}: {:.4}{mark}", p.m, p.n, p.apl);
    }
    Ok(out)
}

/// Arms the ft-obs trace sink when `--trace <file>` is present. The guard
/// disables instrumentation and flushes/closes the sink on drop, so spans
/// land on disk even when the command errors out.
struct TraceGuard {
    armed: bool,
}

impl TraceGuard {
    fn from_inv(inv: &Invocation) -> Result<TraceGuard, CliError> {
        let Some(path) = inv.options.get("trace") else {
            return Ok(TraceGuard { armed: false });
        };
        ft_obs::install_file_sink(path)
            .map_err(|e| CliError(format!("cannot open trace file {path}: {e}")))?;
        ft_obs::set_enabled(true);
        Ok(TraceGuard { armed: true })
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.armed {
            ft_obs::set_enabled(false);
            ft_obs::take_sink();
        }
    }
}

fn get_usize_opt(inv: &Invocation, key: &str) -> Result<Option<usize>, CliError> {
    match inv.options.get(key) {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| CliError(format!("--{key} must be an integer"))),
    }
}

/// Builds a [`ServeConfig`] from `-k` plus the optional
/// `--workers`/`--cache`/`--queue` overrides.
fn serve_config(inv: &Invocation) -> Result<ServeConfig, CliError> {
    let mut cfg = ServeConfig::for_k(get_k(inv)?);
    if let Some(w) = get_usize_opt(inv, "workers")? {
        cfg.workers = w;
    }
    if let Some(c) = get_usize_opt(inv, "cache")? {
        cfg.cache_capacity = c;
    }
    if let Some(q) = get_usize_opt(inv, "queue")? {
        cfg.queue_depth = q;
    }
    if let Some(w) = inv.options.get("window") {
        cfg.window_epoch_ms = w
            .parse()
            .map_err(|_| CliError("--window must be an integer (epoch ms; 0 disables)".into()))?;
    }
    Ok(cfg)
}

fn cmd_serve(inv: &Invocation) -> Result<String, CliError> {
    let _trace = TraceGuard::from_inv(inv)?;
    let cfg = serve_config(inv)?;
    let port: u16 = match inv.options.get("port") {
        None => 0,
        Some(s) => s
            .parse()
            .map_err(|_| CliError("--port must be a u16".into()))?,
    };
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| CliError(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    let addr = listener.local_addr().map_err(|e| CliError(e.to_string()))?;
    // Announced eagerly: the report string below only materializes once a
    // client sends `shutdown`, and the caller needs the port before that.
    println!("ftctl serve: listening on {addr} (FTQ/1; send `shutdown` to stop)");
    serve_listener(listener, cfg).map_err(|e| CliError(e.to_string()))
}

fn cmd_query(inv: &Invocation) -> Result<String, CliError> {
    let _trace = TraceGuard::from_inv(inv)?;
    let cfg = serve_config(inv)?;
    let requests: Vec<String> = inv
        .options
        .get("req")
        .map(String::as_str)
        .unwrap_or("topo")
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if requests.is_empty() {
        return Err(CliError("--req contained no request lines".into()));
    }
    let (replies, _report) = Service::run(cfg, |h| {
        requests
            .iter()
            .map(|r| h.request(r))
            .collect::<Vec<String>>()
    })
    .map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    for reply in replies {
        let _ = writeln!(out, "{reply}");
    }
    Ok(out)
}

/// One parsed `key = value` simulation scenario (see `scenarios/*.scn`).
struct Scenario {
    k: usize,
    policy: RouterPolicy,
    from: Mode,
    to: Option<ScenarioTarget>,
    convert_at: f64,
    latency: f64,
    new_policy: Option<RouterPolicy>,
    workload: WorkloadSpec,
    seed: u64,
    size: f64,
    rate: f64,
    rounds: usize,
    capacity: f64,
    horizon: f64,
}

/// What the scenario converts to: a uniform mode or a zone layout.
enum ScenarioTarget {
    Mode(Mode),
    Zones(Vec<Zone>),
}

fn parse_policy(s: &str) -> Result<RouterPolicy, CliError> {
    if s == "ecmp" {
        return Ok(RouterPolicy::Ecmp);
    }
    if s == "ksp" {
        return Ok(RouterPolicy::Ksp(8));
    }
    if let Some(n) = s.strip_prefix("ksp:") {
        let n: usize = n
            .parse()
            .map_err(|_| CliError(format!("bad ksp path count {n:?}")))?;
        if n == 0 {
            return Err(CliError("ksp path count must be ≥ 1".into()));
        }
        return Ok(RouterPolicy::Ksp(n));
    }
    Err(CliError(format!(
        "unknown policy {s:?} (use ecmp | ksp:<n>)"
    )))
}

fn parse_pod_mode(s: &str) -> Result<PodMode, CliError> {
    match s {
        "clos" => Ok(PodMode::Clos),
        "local-rg" | "local" => Ok(PodMode::LocalRandom),
        "global-rg" | "global" => Ok(PodMode::GlobalRandom),
        other => Err(CliError(format!(
            "unknown zone mode {other:?} (use clos | local-rg | global-rg)"
        ))),
    }
}

/// Parses `name:lo..hi:mode[,name:lo..hi:mode…]` into a zone layout.
fn parse_zones(s: &str) -> Result<Vec<Zone>, CliError> {
    let mut zones = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        let mut it = part.splitn(3, ':');
        let (Some(name), Some(range), Some(mode)) = (it.next(), it.next(), it.next()) else {
            return Err(CliError(format!(
                "bad zone {part:?} (expected name:lo..hi:mode)"
            )));
        };
        let (lo, hi) = range
            .split_once("..")
            .ok_or_else(|| CliError(format!("bad pod range {range:?} (expected lo..hi)")))?;
        let lo: usize = lo
            .parse()
            .map_err(|_| CliError(format!("bad pod index {lo:?}")))?;
        let hi: usize = hi
            .parse()
            .map_err(|_| CliError(format!("bad pod index {hi:?}")))?;
        zones.push(Zone::new(name, lo..hi, parse_pod_mode(mode)?));
    }
    Ok(zones)
}

fn parse_scenario(text: &str) -> Result<Scenario, CliError> {
    let mut sc = Scenario {
        k: 4,
        policy: RouterPolicy::Ecmp,
        from: Mode::Clos,
        to: None,
        convert_at: 5.0,
        latency: 0.5,
        new_policy: None,
        workload: WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 8,
            locality: Locality::None,
        },
        seed: 1,
        size: 1.0,
        rate: 0.5,
        rounds: 4,
        capacity: 1.0,
        horizon: 1e9,
    };
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| CliError(format!("scenario line {}: expected key = value", ln + 1)))?;
        let (key, value) = (key.trim(), value.trim());
        let bad_num = |k: &str, v: &str| CliError(format!("scenario key {k}: bad number {v:?}"));
        match key {
            "k" => sc.k = value.parse().map_err(|_| bad_num(key, value))?,
            "policy" => sc.policy = parse_policy(value)?,
            "new-policy" => sc.new_policy = Some(parse_policy(value)?),
            "from" => sc.from = parse_mode(value)?,
            "to" => sc.to = Some(ScenarioTarget::Mode(parse_mode(value)?)),
            "to-zones" => sc.to = Some(ScenarioTarget::Zones(parse_zones(value)?)),
            "convert-at" => sc.convert_at = value.parse().map_err(|_| bad_num(key, value))?,
            "latency" => sc.latency = value.parse().map_err(|_| bad_num(key, value))?,
            "seed" => sc.seed = value.parse().map_err(|_| bad_num(key, value))?,
            "size" => sc.size = value.parse().map_err(|_| bad_num(key, value))?,
            "rate" => sc.rate = value.parse().map_err(|_| bad_num(key, value))?,
            "rounds" => sc.rounds = value.parse().map_err(|_| bad_num(key, value))?,
            "capacity" => sc.capacity = value.parse().map_err(|_| bad_num(key, value))?,
            "horizon" => sc.horizon = value.parse().map_err(|_| bad_num(key, value))?,
            "cluster-size" => {
                sc.workload.cluster_size = value.parse().map_err(|_| bad_num(key, value))?
            }
            "workload" => {
                sc.workload.pattern = match value {
                    "hotspot" | "hot-spot" => TrafficPattern::HotSpot,
                    "all-to-all" => TrafficPattern::AllToAll,
                    "permutation" => TrafficPattern::Permutation,
                    other => {
                        return Err(CliError(format!(
                            "unknown workload {other:?} (use hotspot | all-to-all | permutation)"
                        )))
                    }
                }
            }
            "locality" => {
                sc.workload.locality = match value {
                    "strong" => Locality::Strong,
                    "weak" => Locality::Weak,
                    "none" => Locality::None,
                    other => {
                        return Err(CliError(format!(
                            "unknown locality {other:?} (use strong | weak | none)"
                        )))
                    }
                }
            }
            other => {
                return Err(CliError(format!(
                    "scenario line {}: unknown key {other:?}",
                    ln + 1
                )))
            }
        }
    }
    Ok(sc)
}

/// Expresses a uniform starting mode as a zone layout: Clos is the empty
/// layout (unclaimed Pods default to Clos), anything else is one
/// all-Pods zone.
fn baseline_zones(from: &Mode, pods: usize) -> Vec<Zone> {
    let pod_mode = match from {
        Mode::Clos => return Vec::new(),
        Mode::LocalRandom => PodMode::LocalRandom,
        Mode::GlobalRandom => PodMode::GlobalRandom,
        Mode::Hybrid(_) => return Vec::new(), // scenario modes are never hybrid
    };
    vec![Zone::new("all", 0..pods, pod_mode)]
}

/// Renders the deterministic `ft-des-sim/1` summary. Deliberately free of
/// wall-clock fields so summaries from different thread counts (or
/// machines) can be byte-compared — the CI determinism gate does exactly
/// that.
fn sim_summary_json(
    sc: &Scenario,
    flows: &[crate::sim::FlowSpec],
    rep: &crate::sim::DesReport,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"ft-des-sim/1\",");
    let _ = writeln!(s, "  \"k\": {},", sc.k);
    let _ = writeln!(s, "  \"seed\": {},", sc.seed);
    let _ = writeln!(s, "  \"flows\": {},", flows.len());
    let _ = writeln!(s, "  \"finished\": {},", flows.len() - rep.unfinished());
    let _ = writeln!(s, "  \"unfinished\": {},", rep.unfinished());
    let mean = rep.mean_fct(flows);
    let _ = if mean.is_finite() {
        writeln!(s, "  \"mean_fct\": {mean:.9},")
    } else {
        writeln!(s, "  \"mean_fct\": null,")
    };
    let _ = writeln!(s, "  \"makespan\": {:.9},", rep.makespan);
    let _ = writeln!(s, "  \"events\": {},", rep.events);
    let _ = writeln!(s, "  \"scheduled\": {},", rep.scheduled);
    let _ = writeln!(s, "  \"reallocations\": {},", rep.reallocations);
    let _ = writeln!(s, "  \"reroutes\": {},", rep.reroutes);
    let _ = writeln!(s, "  \"conversion_reroutes\": {},", rep.conversion_reroutes);
    let _ = writeln!(s, "  \"conversions\": {},", rep.conversions);
    let _ = writeln!(s, "  \"links_removed\": {},", rep.links_removed);
    let _ = writeln!(s, "  \"links_added\": {},", rep.links_added);
    let _ = writeln!(s, "  \"missing_links\": {},", rep.missing_links);
    let _ = writeln!(s, "  \"truncated\": {},", rep.truncated);
    let _ = writeln!(s, "  \"checksum\": {}", rep.completion_checksum());
    s.push_str("}\n");
    s
}

/// `ftctl sim` — runs a scenario file on the ft-des engine: seeded
/// workload arrivals, optionally one live zone conversion sourced from the
/// ft-control reconfiguration plan.
fn cmd_sim(inv: &Invocation) -> Result<String, CliError> {
    let _trace = TraceGuard::from_inv(inv)?;
    let path = inv
        .options
        .get("scenario")
        .ok_or_else(|| CliError("missing --scenario <file>".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read scenario {path}: {e}")))?;
    let mut sc = parse_scenario(&text)?;
    if inv.options.contains_key("quick") {
        sc.rounds = sc.rounds.min(1);
    }

    let cfg = FlatTreeConfig::for_fat_tree_k(sc.k).map_err(|e| CliError(e.to_string()))?;
    let ft = FlatTree::new(cfg).map_err(|e| CliError(e.to_string()))?;
    let net = ft
        .materialize(&sc.from)
        .map_err(|e| CliError(e.to_string()))?;

    let mut topo: Vec<TopoEvent> = Vec::new();
    let mut conversion_desc = String::from("none");
    if let Some(target) = &sc.to {
        let plan = match target {
            ScenarioTarget::Mode(to) => {
                let from = ft.resolve(&sc.from).map_err(|e| CliError(e.to_string()))?;
                let to = ft.resolve(to).map_err(|e| CliError(e.to_string()))?;
                plan_transition(&ft, &from, &to).map_err(|e| CliError(e.to_string()))?
            }
            ScenarioTarget::Zones(zones) => {
                let from_zones = baseline_zones(&sc.from, ft.geometry().pods);
                plan_zone_transition(&ft, &from_zones, zones)
                    .map_err(|e| CliError(e.to_string()))?
            }
        };
        conversion_desc = format!(
            "at t={} (latency {}): -{} links, +{} links, {} converter ops",
            sc.convert_at,
            sc.latency,
            plan.links_removed.len(),
            plan.links_added.len(),
            plan.converter_ops()
        );
        topo.push(TopoEvent::Convert(ConversionEvent::from_plan(
            sc.convert_at,
            sc.latency,
            &plan,
            sc.new_policy,
        )));
    }

    let tm = generate(&net, &sc.workload, sc.seed);
    let flows = flows_with_arrivals(&tm, sc.size, sc.rate, sc.rounds, sc.seed);
    let sim = DesSimulator::new(&net, sc.policy).with_capacity(sc.capacity);
    let events_path = inv.options.get("events");
    let rep = if events_path.is_some() {
        sim.run_traced(&flows, &topo, sc.horizon)
    } else {
        sim.run(&flows, &topo, sc.horizon)
    }
    .map_err(|e| CliError(format!("simulation failed: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(out, "ft-des simulation: {path}");
    let _ = writeln!(
        out,
        "  k={} policy={:?} from={:?} seed={}",
        sc.k, sc.policy, sc.from, sc.seed
    );
    let _ = writeln!(out, "  conversion: {conversion_desc}");
    let _ = writeln!(
        out,
        "  flows: {} ({} finished, {} unfinished)",
        flows.len(),
        flows.len() - rep.unfinished(),
        rep.unfinished()
    );
    let _ = writeln!(
        out,
        "  mean fct: {:.6}   makespan: {:.6}{}",
        rep.mean_fct(&flows),
        rep.makespan,
        if rep.truncated { " (truncated)" } else { "" }
    );
    let _ = writeln!(
        out,
        "  events: {}   reallocations: {}   reroutes: {} ({} from conversion)",
        rep.events, rep.reallocations, rep.reroutes, rep.conversion_reroutes
    );
    if rep.missing_links > 0 {
        let _ = writeln!(
            out,
            "  warning: {} planned link removals matched no live link",
            rep.missing_links
        );
    }
    if let Some(target) = inv.options.get("json") {
        let doc = sim_summary_json(&sc, &flows, &rep);
        if target == "-" {
            out.push_str(&doc);
        } else {
            std::fs::write(target, doc)
                .map_err(|e| CliError(format!("cannot write {target}: {e}")))?;
            let _ = writeln!(out, "  json written to {target}");
        }
    }
    if let Some(target) = events_path {
        let mut doc = rep.trace.as_deref().unwrap_or_default().join("\n");
        doc.push('\n');
        std::fs::write(target, doc).map_err(|e| CliError(format!("cannot write {target}: {e}")))?;
        let _ = writeln!(out, "  events written to {target}");
    }
    Ok(out)
}

/// Fixed RNG seed for every bench topology and workload: the report must be
/// reproducible run to run (timings vary, checksums and λ must not).
const BENCH_SEED: u64 = 1;

/// Runs `f` once and returns its result plus the wall-clock milliseconds.
fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// One timed kernel measurement destined for the JSON report. `extras`
/// holds additional fields as already-rendered JSON values (numbers).
struct BenchEntry {
    k: usize,
    kernel: &'static str,
    variant: &'static str,
    ms: f64,
    extras: Vec<(&'static str, String)>,
}

impl BenchEntry {
    fn extra(&self, key: &str) -> Option<&str> {
        self.extras
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"k\": {}, \"kernel\": \"{}\", \"variant\": \"{}\", \"ms\": {:.3}",
            self.k, self.kernel, self.variant, self.ms
        );
        for (key, value) in &self.extras {
            let _ = write!(s, ", \"{key}\": {value}");
        }
        s.push('}');
        s
    }
}

/// Renders the full bench report as pretty-printed JSON (hand-rolled: the
/// workspace dependency policy has no serializer for this shape).
fn bench_json(threads: usize, quick: bool, entries: &[BenchEntry]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"ft-hotpaths-bench/1\",");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(s, "  \"seed\": {BENCH_SEED},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(s, "    {}{comma}", e.to_json());
    }
    s.push_str("  ]\n}\n");
    s
}

/// Full BFS-APSP over the fat-tree(k) switch fabric into the compact `u16`
/// [`DistMatrix`]: the scalar one-queue-per-source reference (`seq`) vs the
/// multi-source bitset kernel advancing 64 sources per word (`par`, batches
/// distributed over the session's worker count). The tables must agree row
/// for row, and the checksum — identical to the old `u32` table's sum on
/// these connected fabrics — lands in both JSON entries so regressions
/// show up in diffs.
fn bench_apsp(k: usize, threads: usize, entries: &mut Vec<BenchEntry>) -> Result<(), CliError> {
    let net = fat_tree(k).map_err(|e| CliError(e.to_string()))?;
    let sg = net.switch_graph();
    let csr = Csr::from_graph(&sg);
    let (seq, seq_ms) = time_ms(|| DistMatrix::compute_scalar_csr(&csr));
    let seq = seq.map_err(|e| CliError(format!("bench apsp k={k}: {e}")))?;
    let (par_dm, par_ms) = time_ms(|| DistMatrix::compute_csr_with_threads(&csr, threads));
    let par_dm = par_dm.map_err(|e| CliError(format!("bench apsp k={k}: {e}")))?;
    let n = csr.node_count();
    for i in 0..n {
        if seq.row(i) != par_dm.row(i) {
            return Err(CliError(format!(
                "bench: bitset APSP diverged from the scalar reference at k = {k}, row {i}"
            )));
        }
    }
    let checksum = seq.checksum();
    let extras = vec![("nodes", n.to_string()), ("checksum", checksum.to_string())];
    entries.push(BenchEntry {
        k,
        kernel: "apsp",
        variant: "seq",
        ms: seq_ms,
        extras: extras.clone(),
    });
    entries.push(BenchEntry {
        k,
        kernel: "apsp",
        variant: "par",
        ms: par_ms,
        extras,
    });
    Ok(())
}

/// Symmetry-deduplicated APSP at scales where the full table is infeasible
/// (k = 128 → 20,480 switches; a full `u16` table is 0.8 GB). Times class
/// computation + one representative BFS row per class, then spot-checks a
/// few expanded rows against fresh scalar BFS runs and records the
/// expanded-table checksum (exactly what a full table would sum to) for
/// the `--check` gate. The full-vs-deduped equality gate on small k lives
/// in `tests/apsp_scale.rs`.
fn bench_apsp_dedup(
    k: usize,
    threads: usize,
    entries: &mut Vec<BenchEntry>,
) -> Result<(), CliError> {
    let net = fat_tree(k).map_err(|e| CliError(e.to_string()))?;
    let (dd, ms) = time_ms(|| DedupedApsp::compute_with_threads(&net, threads));
    let dd = dd.map_err(|e| CliError(format!("bench apsp-dedup k={k}: {e}")))?;
    let n = net.num_switches();
    // Correctness spot-check: a handful of expanded rows against direct
    // scalar BFS (cores, aggregation, and edge switches all covered by the
    // stride).
    let csr = Csr::from_graph(&net.switch_graph());
    let mut row = vec![0u16; n];
    let mut queue: Vec<u32> = Vec::with_capacity(n);
    for v in (0..n).step_by((n / 7).max(1)) {
        csr.bfs_into_u16(NodeId(ft_graph::id32(v)), &mut row, &mut queue);
        for (w, &expect) in row.iter().enumerate() {
            if dd.get(v, w) != expect {
                return Err(CliError(format!(
                    "bench: deduped APSP diverged from scalar BFS at k = {k}, \
                     pair ({v}, {w})"
                )));
            }
        }
    }
    entries.push(BenchEntry {
        k,
        kernel: "apsp",
        variant: "dedup",
        ms,
        extras: vec![
            ("nodes", n.to_string()),
            ("classes", dd.classes().class_count().to_string()),
            ("checksum", dd.expanded_checksum().to_string()),
        ],
    });
    Ok(())
}

/// Unit-length Dijkstra over the fat-tree(k) switch fabric as a capacitated
/// digraph: the allocating `shortest_path` vs `shortest_path_with` reusing
/// one [`DijkstraScratch`] across all calls. Distance sums must be
/// bit-identical (same algorithm, same relaxation order).
fn bench_dijkstra(k: usize, entries: &mut Vec<BenchEntry>) -> Result<(), CliError> {
    const CALLS: usize = 64;
    let net = fat_tree(k).map_err(|e| CliError(e.to_string()))?;
    let sg = net.switch_graph();
    let g = CapGraph::from_graph(&sg, 1.0);
    let n = g.node_count();
    let ones = vec![1.0f64; g.arc_count()];
    // deterministic src/dst schedule spread across the fabric
    let pair = |i: usize| ((i * 37) % n, (i * 97 + n / 2) % n);
    let (alloc_sum, alloc_ms) = time_ms(|| {
        let mut sum = 0.0f64;
        for i in 0..CALLS {
            let (s, d) = pair(i);
            if s == d {
                continue;
            }
            if let Some((_, dist)) = g.shortest_path(s, d, &ones) {
                sum += dist;
            }
        }
        sum
    });
    let (scratch_sum, scratch_ms) = time_ms(|| {
        let mut scratch = DijkstraScratch::new();
        let mut sum = 0.0f64;
        for i in 0..CALLS {
            let (s, d) = pair(i);
            if s == d {
                continue;
            }
            if let Some(dist) = g.shortest_path_with(s, d, &ones, &mut scratch) {
                sum += dist;
            }
        }
        sum
    });
    if alloc_sum.to_bits() != scratch_sum.to_bits() {
        return Err(CliError(format!(
            "bench: scratch Dijkstra diverged from allocating variant at k = {k} \
             ({alloc_sum} vs {scratch_sum})"
        )));
    }
    let extras = vec![
        ("calls", CALLS.to_string()),
        ("dist_sum", format!("{alloc_sum:.1}")),
    ];
    entries.push(BenchEntry {
        k,
        kernel: "dijkstra",
        variant: "alloc",
        ms: alloc_ms,
        extras: extras.clone(),
    });
    entries.push(BenchEntry {
        k,
        kernel: "dijkstra",
        variant: "scratch",
        ms: scratch_ms,
        extras,
    });
    Ok(())
}

/// End-to-end source-batched FPTAS throughput solve on the k flat-tree in
/// global random-graph mode under the paper's hot-spot workload, with a
/// step cap so the bench stays bounded even if convergence regresses. λ,
/// steps, and phases are recorded alongside the timing: they are
/// deterministic for the fixed seed. A tripped budget is recorded in the
/// entry and surfaced as a warning line — never a silent λ = 0.
fn bench_fptas(
    k: usize,
    quick: bool,
    entries: &mut Vec<BenchEntry>,
    warnings: &mut Vec<String>,
) -> Result<(), CliError> {
    let cfg = FlatTreeConfig::for_fat_tree_k(k).map_err(|e| CliError(e.to_string()))?;
    let ft = FlatTree::new(cfg).map_err(|e| CliError(e.to_string()))?;
    let net = ft
        .materialize(&Mode::GlobalRandom)
        .map_err(|e| CliError(e.to_string()))?;
    let tm = generate(&net, &WorkloadSpec::hotspot(Locality::None), BENCH_SEED);
    let commodities = aggregate_commodities(tm.switch_triples(&net));
    let sg = net.switch_graph();
    let g = CapGraph::from_graph(&sg, 1.0);
    let max_steps = if quick { 500 } else { 3_000 };
    let opts = FptasOptions {
        epsilon: 0.15,
        max_steps: Some(max_steps),
    };
    let (sol, ms) = time_ms(|| max_concurrent_flow(&g, &commodities, opts));
    let sol = sol.map_err(|e| CliError(e.to_string()))?;
    if sol.budget_exhausted {
        warnings.push(crate::metrics::budget_warning(
            &format!("bench fptas k={k}"),
            sol.lambda,
            max_steps,
        ));
    }
    entries.push(BenchEntry {
        k,
        kernel: "fptas",
        variant: "batched",
        ms,
        extras: vec![
            ("lambda", format!("{:.6}", sol.lambda)),
            ("steps", sol.steps.to_string()),
            ("phases", sol.phases.to_string()),
            ("commodities", commodities.len().to_string()),
            ("budget_exhausted", sol.budget_exhausted.to_string()),
        ],
    });

    // Same instance through the round-sharded engine, warm-started from
    // the switch distance table. λ and steps are deterministic and
    // identical for every FT_THREADS value (the round-snapshot schedule),
    // so CI byte-compares this entry across thread counts.
    let dist = SwitchDistances::compute(&net);
    let oracle = move |a: usize, b: usize| dist.switch_distance(a, b);
    let cfg = ShardConfig {
        threads: 0,
        warm: Some(&oracle),
    };
    let rounds0 = crate::obs::registry::counter("ft_mcf_shard_rounds_total").get();
    let (sol, ms) = time_ms(|| max_concurrent_flow_sharded(&g, &commodities, opts, &cfg));
    let sol = sol.map_err(|e| CliError(e.to_string()))?;
    let rounds = crate::obs::registry::counter("ft_mcf_shard_rounds_total").get() - rounds0;
    if sol.budget_exhausted {
        warnings.push(crate::metrics::budget_warning(
            &format!("bench fptas/sharded k={k}"),
            sol.lambda,
            max_steps,
        ));
    }
    entries.push(BenchEntry {
        k,
        kernel: "fptas",
        variant: "sharded",
        ms,
        extras: vec![
            ("lambda", format!("{:.6}", sol.lambda)),
            ("steps", sol.steps.to_string()),
            ("phases", sol.phases.to_string()),
            ("rounds", rounds.to_string()),
            ("workers", par::thread_count().to_string()),
            ("commodities", commodities.len().to_string()),
            ("budget_exhausted", sol.budget_exhausted.to_string()),
        ],
    });
    Ok(())
}

/// Scale tier: the symmetry-aggregated FPTAS on the k = 64/128 **Clos**
/// fabric under uniform all-to-all demand — the instance whose full
/// commodity list (millions of switch pairs) no engine could touch, but
/// whose orbit quotient is tiny. Records the end-to-end wall time
/// (distance table + symmetry classes + quotient solve), the orbit
/// collapse ratio, and λ. λ is deterministic and gate-compared exactly.
fn bench_fptas_scale(
    k: usize,
    entries: &mut Vec<BenchEntry>,
    warnings: &mut Vec<String>,
) -> Result<(), CliError> {
    let cfg = FlatTreeConfig::for_fat_tree_k(k).map_err(|e| CliError(e.to_string()))?;
    let ft = FlatTree::new(cfg).map_err(|e| CliError(e.to_string()))?;
    let net = ft
        .materialize(&Mode::Clos)
        .map_err(|e| CliError(e.to_string()))?;
    let max_steps = 3_000;
    let opts = ThroughputOptions {
        epsilon: 0.15,
        exact_threshold: 0,
        max_steps: Some(max_steps),
        solver: SolverKind::Aggregated,
        threads: 0,
    };
    let (r, ms) = time_ms(|| throughput_all_to_all(&net, opts));
    let r = r.map_err(|e| CliError(e.to_string()))?;
    if r.budget_exhausted {
        warnings.push(crate::metrics::budget_warning(
            &format!("bench fptas/aggregated k={k}"),
            r.lambda,
            max_steps,
        ));
    }
    entries.push(BenchEntry {
        k,
        kernel: "fptas",
        variant: "aggregated",
        ms,
        extras: vec![
            ("lambda", format!("{:.6}", r.lambda)),
            ("commodities", r.commodities.to_string()),
            ("aggregated", r.aggregated.map_or(0, |n| n).to_string()),
            ("budget_exhausted", r.budget_exhausted.to_string()),
        ],
    });
    Ok(())
}

/// Event storm through the ft-des engine: a fixed 32-server all-to-all
/// workload replayed as Poisson arrivals on the fat-tree(k) fabric, no
/// topology events. Records the event-loop throughput (events/s, timing-
/// dependent, not gate-compared) and the completion checksum (gate-
/// compared exactly: the schedule is deterministic for the fixed seed).
///
/// `events_per_sec` is **engine-only**: the max-min solver's wall time
/// (`DesReport::solver_ns`, reported separately as `solver_ms`) is
/// subtracted first. The solver is O(active-flows × path-length) per
/// re-allocation and dominates at large k, which used to invert the
/// metric — k = 32 looked 12× *slower* per event than k = 16 even
/// though the event loop itself is size-independent.
fn bench_des(k: usize, entries: &mut Vec<BenchEntry>) -> Result<(), CliError> {
    let net = fat_tree(k).map_err(|e| CliError(e.to_string()))?;
    let servers: Vec<NodeId> = net.servers().take(32).collect();
    let spec = WorkloadSpec {
        pattern: TrafficPattern::AllToAll,
        cluster_size: 8,
        locality: Locality::None,
    };
    let tm = generate_on(&net, &servers, &spec, BENCH_SEED);
    // same workload in --quick and full runs (the k = 8 storm is fast), so
    // the completion checksum stays exactly comparable to the checked-in
    // baseline — bench --check gates des determinism in CI
    let rounds = 6;
    let flows = flows_with_arrivals(&tm, 1.0, 0.5, rounds, BENCH_SEED);
    let sim = DesSimulator::new(&net, RouterPolicy::Ecmp);
    let (rep, ms) = time_ms(|| sim.run(&flows, &[], f64::INFINITY));
    let rep = rep.map_err(|e| CliError(format!("bench des k={k}: {e}")))?;
    let solver_ms = rep.solver_ns as f64 / 1e6;
    let engine_ms = (ms - solver_ms).max(0.0);
    let events_per_sec = if engine_ms > 0.0 {
        rep.events as f64 / (engine_ms / 1e3)
    } else {
        0.0
    };
    entries.push(BenchEntry {
        k,
        kernel: "des",
        variant: "storm",
        ms,
        extras: vec![
            ("events", rep.events.to_string()),
            ("events_per_sec", format!("{events_per_sec:.0}")),
            ("solver_ms", format!("{solver_ms:.3}")),
            ("flows", flows.len().to_string()),
            ("checksum", rep.completion_checksum().to_string()),
        ],
    });
    Ok(())
}

/// Extracts the value of `"key":` from a single-line JSON object of the
/// bench schema, quotes stripped. Values never contain `,` or `}` (numbers,
/// booleans, and plain identifiers only), so no real parser is needed.
fn json_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = line[start..].trim_start();
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Compares this run's entries against a previously written bench report
/// (the regression gate behind `ftctl bench --check`). Per matched
/// (k, kernel, variant):
///
/// * wall time must stay under `1.25 × baseline + 5 ms` — the grace term
///   keeps sub-millisecond kernels from tripping on scheduler noise;
/// * determinism fields compare **exactly**: `checksum`, `dist_sum`
///   always, `lambda` whenever both runs took the same number of steps (a
///   `--quick` run against a full baseline legitimately differs).
///
/// Baseline entries with no counterpart in this run are skipped, so a
/// quick run can be checked against the full checked-in baseline.
fn bench_check(path: &str, entries: &[BenchEntry]) -> Result<String, CliError> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read baseline {path}: {e}")))?;
    let mut compared = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        let (Some(k), Some(kernel), Some(variant), Some(ms)) = (
            json_value(line, "k"),
            json_value(line, "kernel"),
            json_value(line, "variant"),
            json_value(line, "ms"),
        ) else {
            continue;
        };
        let Ok(k) = k.parse::<usize>() else { continue };
        let Ok(old_ms) = ms.parse::<f64>() else {
            continue;
        };
        let Some(new) = entries
            .iter()
            .find(|e| e.k == k && e.kernel == kernel && e.variant == variant)
        else {
            continue; // quick runs cover a subset of the full baseline
        };
        compared += 1;
        let limit = old_ms * 1.25 + 5.0;
        if new.ms > limit {
            failures.push(format!(
                "k={k} {kernel}/{variant}: {:.3} ms exceeds limit {limit:.3} ms \
                 (baseline {old_ms:.3} ms + 25% + 5 ms grace)",
                new.ms
            ));
        }
        let steps_match = match (json_value(line, "steps"), new.extra("steps")) {
            (Some(old), Some(cur)) => old == cur,
            _ => true,
        };
        let mut determinism: Vec<&str> = vec!["checksum", "dist_sum"];
        if steps_match {
            determinism.push("lambda");
        }
        for key in determinism {
            if let (Some(old), Some(cur)) = (json_value(line, key), new.extra(key)) {
                if old != cur {
                    failures.push(format!(
                        "k={k} {kernel}/{variant}: {key} diverged from baseline \
                         ({old} vs {cur})"
                    ));
                }
            }
        }
    }
    if compared == 0 {
        return Err(CliError(format!(
            "baseline {path} has no entries matching this run"
        )));
    }
    if failures.is_empty() {
        Ok(format!("  check ok against {path} ({compared} entries)\n"))
    } else {
        Err(CliError(format!(
            "bench check against {path} failed:\n  {}",
            failures.join("\n  ")
        )))
    }
}

fn cmd_bench(inv: &Invocation) -> Result<String, CliError> {
    let _trace = TraceGuard::from_inv(inv)?;
    let quick = inv.options.contains_key("quick");
    let ks: &[usize] = if quick { &[8] } else { &[8, 16, 32] };
    let threads = par::thread_count();
    let mut entries: Vec<BenchEntry> = Vec::new();
    let mut warnings: Vec<String> = Vec::new();
    for &k in ks {
        bench_apsp(k, threads, &mut entries)?;
        bench_dijkstra(k, &mut entries)?;
        bench_fptas(k, quick, &mut entries, &mut warnings)?;
        bench_des(k, &mut entries)?;
    }
    // Scaling tiers: k = 64 full APSP table and the k = 64 aggregated
    // all-to-all FPTAS ride the quick run so CI gates both the bitset
    // kernel and the symmetry quotient; k = 128 (deduplicated APSP,
    // aggregated FPTAS) runs in full mode only. The k = 64 tier needs an
    // optimized build — at opt-level 0 (unit tests drive quick mode
    // in-process) the scalar reference alone takes tens of seconds, and
    // `bench_check` skips baseline entries with no counterpart, so debug
    // quick runs still check cleanly.
    if !quick || !cfg!(debug_assertions) {
        bench_apsp(64, threads, &mut entries)?;
        bench_fptas_scale(64, &mut entries, &mut warnings)?;
    }
    if !quick {
        bench_apsp_dedup(128, threads, &mut entries)?;
        bench_fptas_scale(128, &mut entries, &mut warnings)?;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "hot-path benchmark (threads = {threads}, seed = {BENCH_SEED}{})",
        if quick { ", quick" } else { "" }
    );
    for e in &entries {
        let _ = writeln!(
            out,
            "  k={:<2} {:8} {:8} {:10.3} ms",
            e.k, e.kernel, e.variant, e.ms
        );
    }
    // Warnings go to stderr so piped/captured bench output stays
    // machine-readable; a truncated-budget λ is still a lower bound.
    for w in &warnings {
        eprintln!("  {w}");
    }
    if let Some(path) = inv.options.get("json") {
        std::fs::write(path, bench_json(threads, quick, &entries))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "  json written to {path}");
    }
    if let Some(path) = inv.options.get("check") {
        out.push_str(&bench_check(path, &entries)?);
    }
    Ok(out)
}

/// `ftctl lint` — runs the ft-lint analyzer over the workspace and emits
/// machine-readable reports. A dirty result (violations or stale allow
/// entries) is a [`CliError`] so the process exits non-zero for CI.
fn cmd_lint(inv: &Invocation) -> Result<String, CliError> {
    let root = std::path::PathBuf::from(inv.options.get("root").map_or(".", String::as_str));
    let opts = ft_lint::Options {
        fix_allow: inv.options.contains_key("fix-allow"),
    };
    let report = ft_lint::run_with(&root, &opts)
        .map_err(|e| CliError(format!("lint configuration error: {e}")))?;
    let root_str = root.to_string_lossy().replace('\\', "/");
    let mut out = String::new();
    if let Some(target) = inv.options.get("json") {
        let doc = ft_lint::report::to_json(&report, &root_str);
        if target == "-" {
            out.push_str(&doc);
        } else {
            std::fs::write(target, doc)
                .map_err(|e| CliError(format!("cannot write {target}: {e}")))?;
            let _ = writeln!(out, "lint json written to {target}");
        }
    }
    if let Some(target) = inv.options.get("sarif") {
        let doc = ft_lint::report::to_sarif(&report);
        if target == "-" {
            out.push_str(&doc);
        } else {
            std::fs::write(target, doc)
                .map_err(|e| CliError(format!("cannot write {target}: {e}")))?;
            let _ = writeln!(out, "lint sarif written to {target}");
        }
    }
    out.push_str(&ft_lint::report::to_text(&report));
    if report.is_clean() {
        Ok(out)
    } else {
        // reports above are already written; the error text carries the
        // summary so CI logs show why the gate went red
        Err(CliError(out))
    }
}

fn fmt_ms(us: u64) -> String {
    format!("{:.3}", us as f64 / 1000.0)
}

/// Reads and parses a span JSONL file into an analyzable trace.
fn load_trace(path: &str) -> Result<ft_obs::analyze::Trace, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read trace file {path}: {e}")))?;
    let trace = ft_obs::analyze::Trace::parse(&text);
    if trace.spans.is_empty() {
        return Err(CliError(format!(
            "{path}: no span events found ({} non-span line(s) skipped) — \
             was the file produced by --trace?",
            trace.skipped
        )));
    }
    Ok(trace)
}

fn render_aggregates(out: &mut String, forest: &ft_obs::analyze::Forest<'_>, top: usize) {
    let aggs = forest.aggregates();
    let shown = top.min(aggs.len());
    let _ = writeln!(
        out,
        "span aggregates (top {shown} of {} names, by total time):",
        aggs.len()
    );
    let _ = writeln!(
        out,
        "  {:<32} {:>7} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "name", "count", "total_ms", "self_ms", "p50_ms", "p95_ms", "max_ms"
    );
    for a in aggs.iter().take(top) {
        let _ = writeln!(
            out,
            "  {:<32} {:>7} {:>12} {:>12} {:>10} {:>10} {:>10}",
            a.name,
            a.count,
            fmt_ms(a.total_us),
            fmt_ms(a.self_us),
            fmt_ms(a.p50_us),
            fmt_ms(a.p95_us),
            fmt_ms(a.max_us)
        );
    }
}

fn render_critical_paths(out: &mut String, forest: &ft_obs::analyze::Forest<'_>) {
    for &root in &forest.top_roots() {
        let path = forest.critical_path(root);
        let Some(head) = path.first() else { continue };
        let root_us = head.dur_us.max(1);
        let _ = writeln!(
            out,
            "critical path (root {}, {} ms):",
            head.name,
            fmt_ms(head.dur_us)
        );
        for (depth, step) in path.iter().enumerate() {
            let pct = step.dur_us as f64 * 100.0 / root_us as f64;
            let _ = writeln!(
                out,
                "  {:>5.1}%  {:>10} ms  {}{}  [self {} ms]",
                pct,
                fmt_ms(step.dur_us),
                "  ".repeat(depth),
                step.name,
                fmt_ms(step.self_us)
            );
        }
        out.push('\n');
    }
}

fn render_timeline(out: &mut String, trace: &ft_obs::analyze::Trace) {
    let points = ft_obs::analyze::conversion_timeline(trace);
    if points.is_empty() {
        return;
    }
    let _ = writeln!(out, "conversion timeline ({} points):", points.len());
    let _ = writeln!(
        out,
        "  {:>10} {:>6} {:>6} {:>7} {:>7} {:>6} {:>9} {:>10} {:>11}",
        "t", "phase", "epoch", "active", "parked", "queue", "reroutes", "conv_rr", "drain"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "  {:>10.4} {:>6} {:>6} {:>7} {:>7} {:>6} {:>9} {:>10} {:>7}/{}",
            p.t,
            p.phase,
            p.epoch,
            p.active,
            p.parked,
            p.queue,
            p.reroutes,
            p.conversion_reroutes,
            p.links_removed,
            p.links_planned
        );
    }
    out.push('\n');
}

fn render_diff(
    out: &mut String,
    old_path: &str,
    new_path: &str,
    old: &ft_obs::analyze::Trace,
    new: &ft_obs::analyze::Trace,
    top: usize,
) {
    let rows = ft_obs::analyze::diff(old, new);
    let _ = writeln!(out, "trace diff: {old_path} -> {new_path}");
    let shown = top.min(rows.len());
    let _ = writeln!(
        out,
        "  top {shown} of {} span names by |total-time delta|:",
        rows.len()
    );
    let _ = writeln!(
        out,
        "  {:<32} {:>7} {:>7} {:>12} {:>12} {:>12}",
        "name", "n_old", "n_new", "old_ms", "new_ms", "delta_ms"
    );
    for r in rows.iter().take(top) {
        let _ = writeln!(
            out,
            "  {:<32} {:>7} {:>7} {:>12} {:>12} {:>+12.3}",
            r.name,
            r.old_count,
            r.new_count,
            fmt_ms(r.old_total_us),
            fmt_ms(r.new_total_us),
            r.delta_us as f64 / 1000.0
        );
    }
}

fn cmd_trace(inv: &Invocation) -> Result<String, CliError> {
    let file = inv.positional.first().ok_or_else(|| {
        CliError("trace needs a span file: ftctl trace <spans.jsonl>".to_string())
    })?;
    if let Some(extra) = inv.positional.get(1) {
        return Err(CliError(format!(
            "trace takes one span file; unexpected argument {extra:?}"
        )));
    }
    let top = get_usize_opt(inv, "top")?.unwrap_or(15).max(1);
    let trace = load_trace(file)?;
    let mut out = String::new();

    if let Some(old_path) = inv.options.get("diff") {
        let old = load_trace(old_path)?;
        render_diff(&mut out, old_path, file, &old, &trace, top);
        return Ok(out);
    }

    let forest = ft_obs::analyze::Forest::build(&trace);
    let _ = writeln!(out, "trace report: {file}");
    let _ = writeln!(
        out,
        "  spans: {}   threads: {}   skipped non-span lines: {}",
        trace.spans.len(),
        trace.thread_count(),
        trace.skipped
    );
    out.push('\n');
    render_aggregates(&mut out, &forest, top);
    out.push('\n');
    render_critical_paths(&mut out, &forest);
    render_timeline(&mut out, &trace);

    if let Some(path) = inv.options.get("chrome") {
        std::fs::write(path, ft_obs::analyze::to_chrome(&trace))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "chrome trace-event json written to {path}");
    }
    if let Some(path) = inv.options.get("folded") {
        std::fs::write(path, ft_obs::analyze::to_folded(&trace))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "folded stacks written to {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(args: &[&str]) -> Invocation {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_basic() {
        let i = inv(&["topo", "--kind", "fat-tree", "-k", "8"]);
        assert_eq!(i.command, "topo");
        assert_eq!(i.options["kind"], "fat-tree");
        assert_eq!(i.options["k"], "8");
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["topo".into(), "oops".into()]).is_err());
        assert!(parse(&["topo".into(), "--k".into()]).is_err());
    }

    #[test]
    fn help_paths() {
        assert_eq!(inv(&["--help"]).command, "help");
        assert!(run(&inv(&["help"])).unwrap().contains("USAGE"));
    }

    #[test]
    fn topo_all_kinds() {
        for kind in ["fat-tree", "random-graph", "two-stage", "flat-tree"] {
            let out = run(&inv(&["topo", "--kind", kind, "-k", "4"])).unwrap();
            assert!(out.contains("switches: 20"), "{kind}: {out}");
            assert!(out.contains("servers: 16"), "{kind}: {out}");
        }
    }

    #[test]
    fn topo_flat_tree_modes() {
        for mode in ["clos", "local-rg", "global-rg"] {
            let out = run(&inv(&[
                "topo",
                "--kind",
                "flat-tree",
                "-k",
                "8",
                "--mode",
                mode,
            ]))
            .unwrap();
            assert!(out.contains(mode), "{out}");
        }
    }

    #[test]
    fn metrics_report_fields() {
        let out = run(&inv(&["metrics", "--kind", "fat-tree", "-k", "4"])).unwrap();
        assert!(out.contains("average path length"));
        assert!(out.contains("fabric bridges:                0"));
    }

    #[test]
    fn convert_reports_plan() {
        let out = run(&inv(&[
            "convert",
            "-k",
            "8",
            "--from",
            "clos",
            "--to",
            "global-rg",
        ]))
        .unwrap();
        assert!(out.contains("converter reprogramming ops: 96"), "{out}");
        assert!(out.contains("removed"));
    }

    #[test]
    fn convert_noop() {
        let out = run(&inv(&[
            "convert", "-k", "8", "--from", "clos", "--to", "clos",
        ]))
        .unwrap();
        assert!(out.contains("ops: 0"), "{out}");
    }

    #[test]
    fn profile_marks_best() {
        let out = run(&inv(&["profile", "-k", "8"])).unwrap();
        assert!(out.contains("← best"));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(run(&inv(&["topo", "--kind", "nope", "-k", "8"])).is_err());
        assert!(run(&inv(&["topo", "--kind", "fat-tree", "-k", "7"])).is_err());
        assert!(run(&inv(&["topo", "--kind", "fat-tree"])).is_err());
        assert!(run(&inv(&[
            "convert", "-k", "8", "--from", "clos", "--to", "weird"
        ]))
        .is_err());
        assert!(run(&inv(&["frobnicate"])).is_err());
    }

    #[test]
    fn query_runs_ftq_lines_in_process() {
        let out = run(&inv(&[
            "query",
            "-k",
            "4",
            "--req",
            "topo; paths; paths; stats",
        ]))
        .unwrap();
        assert!(out.contains("OK topo "), "{out}");
        assert!(out.contains("source=hit"), "{out}");
        assert!(out.contains("OK stats "), "{out}");
        assert_eq!(out.lines().count(), 4, "{out}");
    }

    #[test]
    fn query_surfaces_protocol_errors_as_reply_lines() {
        let out = run(&inv(&["query", "-k", "4", "--req", "frobnicate"])).unwrap();
        assert!(out.starts_with("ERR unknown-verb "), "{out}");
    }

    #[test]
    fn query_and_serve_flag_validation() {
        assert!(run(&inv(&["query", "-k", "4", "--req", " ; "])).is_err());
        assert!(run(&inv(&["query", "-k", "4", "--workers", "zero"])).is_err());
        assert!(run(&inv(&["serve", "-k", "4", "--port", "70000"])).is_err());
        // worker count 0 is rejected by the service itself
        assert!(run(&inv(&["query", "-k", "4", "--workers", "0"])).is_err());
    }

    #[test]
    fn serve_config_applies_overrides() {
        let cfg = serve_config(&inv(&[
            "serve",
            "-k",
            "6",
            "--workers",
            "2",
            "--cache",
            "3",
            "--queue",
            "9",
        ]))
        .unwrap();
        assert_eq!(cfg.k, 6);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.cache_capacity, 3);
        assert_eq!(cfg.queue_depth, 9);
    }

    #[test]
    fn parse_valueless_quick_flag() {
        let i = inv(&["bench", "--quick", "--json", "out.json"]);
        assert_eq!(i.options["quick"], "true");
        assert_eq!(i.options["json"], "out.json");
        // --quick at the end must not swallow a missing value
        let i = inv(&["bench", "--json", "out.json", "--quick"]);
        assert_eq!(i.options["quick"], "true");
    }

    #[test]
    fn bench_quick_reports_all_kernels() {
        let dir = std::env::temp_dir();
        let json = dir.join("ftctl_bench_test.json");
        let out = run(&inv(&[
            "bench",
            "--quick",
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        for token in [
            "apsp", "dijkstra", "fptas", "des", "seq", "par", "scratch", "batched", "storm",
        ] {
            assert!(out.contains(token), "missing {token} in: {out}");
        }
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(
            body.contains("\"schema\": \"ft-hotpaths-bench/1\""),
            "{body}"
        );
        assert!(body.contains("\"lambda\""), "{body}");
        assert!(body.contains("\"checksum\""), "{body}");
        assert!(body.contains("\"budget_exhausted\""), "{body}");

        // a report always passes a --check against itself
        let checked = run(&inv(&[
            "bench",
            "--quick",
            "--check",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(checked.contains("check ok"), "{checked}");
        let _ = std::fs::remove_file(json);
    }

    #[test]
    fn query_trace_writes_jsonl_spans() {
        let trace = std::env::temp_dir().join("ftctl_query_trace_test.jsonl");
        let out = run(&inv(&[
            "query",
            "-k",
            "4",
            "--req",
            "paths; metrics",
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("OK paths "), "{out}");
        assert!(out.contains("OK metrics lines="), "{out}");
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(!body.trim().is_empty(), "trace file is empty");
        for line in body.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not a JSON object line: {line:?}"
            );
        }
        assert!(body.contains("\"name\":\"serve.request\""), "{body}");
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn json_value_extracts_fields() {
        let line = r#"{"k": 8, "kernel": "fptas", "ms": 14.103, "lambda": 0.051282}"#;
        assert_eq!(json_value(line, "k"), Some("8"));
        assert_eq!(json_value(line, "kernel"), Some("fptas"));
        assert_eq!(json_value(line, "lambda"), Some("0.051282"));
        assert_eq!(json_value(line, "missing"), None);
    }

    #[test]
    fn bench_check_flags_regression_and_divergence() {
        let entry = |ms: f64, lambda: &str, steps: &str| BenchEntry {
            k: 8,
            kernel: "fptas",
            variant: "batched",
            ms,
            extras: vec![("lambda", lambda.to_string()), ("steps", steps.to_string())],
        };
        let baseline = std::env::temp_dir().join("ftctl_bench_check_test.json");
        std::fs::write(
            &baseline,
            "{\n  \"entries\": [\n    {\"k\": 8, \"kernel\": \"fptas\", \"variant\": \
             \"batched\", \"ms\": 10.000, \"lambda\": 0.051282, \"steps\": 751}\n  ]\n}\n",
        )
        .unwrap();
        let path = baseline.to_str().unwrap();

        // within budget, identical λ → ok
        assert!(bench_check(path, &[entry(12.0, "0.051282", "751")]).is_ok());
        // 1.25× + 5 ms grace exceeded → regression
        let err = bench_check(path, &[entry(30.0, "0.051282", "751")]).unwrap_err();
        assert!(err.0.contains("exceeds limit"), "{err}");
        // same steps but different λ → determinism failure
        let err = bench_check(path, &[entry(12.0, "0.040000", "751")]).unwrap_err();
        assert!(err.0.contains("lambda diverged"), "{err}");
        // different step budget → λ legitimately differs, only timing gates
        assert!(bench_check(path, &[entry(12.0, "0.040000", "500")]).is_ok());
        // nothing comparable → error, not a silent pass
        let other = [BenchEntry {
            k: 4,
            kernel: "apsp",
            variant: "seq",
            ms: 1.0,
            extras: vec![],
        }];
        assert!(bench_check(path, &other).is_err());
        let _ = std::fs::remove_file(baseline);
    }

    #[test]
    fn dot_and_json_export() {
        let dir = std::env::temp_dir();
        let dot = dir.join("ftctl_test.dot");
        let json = dir.join("ftctl_test.json");
        let out = run(&inv(&[
            "topo",
            "--kind",
            "fat-tree",
            "-k",
            "4",
            "--dot",
            dot.to_str().unwrap(),
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("dot written"));
        assert!(std::fs::read_to_string(&dot).unwrap().starts_with("graph"));
        assert!(std::fs::read_to_string(&json)
            .unwrap()
            .contains("\"nodes\""));
        let _ = std::fs::remove_file(dot);
        let _ = std::fs::remove_file(json);
    }

    #[test]
    fn sim_runs_checked_in_conversion_scenario() {
        let scn = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/clos_to_global.scn");
        let out = run(&inv(&["sim", "--scenario", scn, "--quick", "--json", "-"])).unwrap();
        assert!(out.contains("\"schema\": \"ft-des-sim/1\""), "{out}");
        assert!(out.contains("\"conversions\": 1"), "{out}");
        assert!(out.contains("\"missing_links\": 0"), "{out}");
        assert!(out.contains("\"unfinished\": 0"), "{out}");
        assert!(
            !out.contains("\"conversion_reroutes\": 0,"),
            "conversion must re-route flows: {out}"
        );
    }

    #[test]
    fn sim_repeat_runs_are_byte_identical() {
        let scn = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/clos_to_global.scn");
        let args = ["sim", "--scenario", scn, "--quick", "--json", "-"];
        assert_eq!(run(&inv(&args)).unwrap(), run(&inv(&args)).unwrap());
    }

    #[test]
    fn sim_scenario_parser_rejects_garbage() {
        assert!(parse_scenario("k = 4\nnot a kv line\n").is_err());
        assert!(parse_scenario("frobnicate = 7\n").is_err());
        assert!(parse_scenario("to-zones = all:0..4\n").is_err()); // missing mode
        assert!(parse_scenario("policy = ksp:0\n").is_err());
        // comments and blank lines are fine
        let sc = parse_scenario("# hello\n\nk = 8 # trailing\npolicy = ksp:4\n").unwrap();
        assert_eq!(sc.k, 8);
        assert_eq!(sc.policy, RouterPolicy::Ksp(4));
    }

    #[test]
    fn sim_events_trace_is_jsonl() {
        let scn = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/clos_to_global.scn");
        let trace = std::env::temp_dir().join("ftctl_sim_events_test.jsonl");
        let out = run(&inv(&[
            "sim",
            "--scenario",
            scn,
            "--quick",
            "--events",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("events written to"), "{out}");
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(!body.trim().is_empty());
        for line in body.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not a JSON object line: {line:?}"
            );
        }
        assert!(body.contains("\"kind\":\"conversion_start\""), "{body}");
        assert!(body.contains("\"kind\":\"conversion_finish\""), "{body}");
        assert!(body.contains("\"kind\":\"arrival\""), "{body}");
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn parse_positionals_only_for_trace() {
        let i = inv(&["trace", "spans.jsonl", "--top", "5"]);
        assert_eq!(i.positional, vec!["spans.jsonl".to_string()]);
        assert_eq!(i.options["top"], "5");
        // other commands still reject bare tokens (see parse_errors)
        assert!(parse(&["bench".into(), "spans.jsonl".into()]).is_err());
    }

    fn write_trace_fixture(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let lines = [
            r#"{"type":"span","name":"bench.run","id":1,"parent":0,"thread":0,"start_us":0,"dur_us":10000,"fields":{}}"#,
            r#"{"type":"span","name":"fptas.run","id":2,"parent":1,"thread":0,"start_us":100,"dur_us":8000,"fields":{"k":8}}"#,
            r#"{"type":"span","name":"fptas.phase","id":3,"parent":2,"thread":0,"start_us":200,"dur_us":6000,"fields":{}}"#,
            r#"{"type":"span","name":"fptas.phase","id":4,"parent":2,"thread":0,"start_us":6300,"dur_us":1500,"fields":{}}"#,
            r#"{"type":"span","name":"des.timeline","id":5,"parent":1,"thread":0,"start_us":9000,"dur_us":1,"fields":{"epoch":3,"t":0.5,"phase":"drain","active":4,"parked":1,"queue":2,"scheduled":9,"reroutes":6,"conversion_reroutes":5,"links_removed":8,"links_planned":16}}"#,
            r#"{"kind":"arrival","t":0.1}"#,
        ];
        std::fs::write(&path, lines.join("\n")).unwrap();
        path
    }

    #[test]
    fn trace_reports_aggregates_critical_path_and_timeline() {
        let path = write_trace_fixture("ftctl_trace_report_test.jsonl");
        let out = run(&inv(&["trace", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("spans: 5"), "{out}");
        assert!(out.contains("skipped non-span lines: 1"), "{out}");
        assert!(out.contains("span aggregates"), "{out}");
        // fptas.phase: two instances totalling 7.5 ms
        assert!(out.contains("fptas.phase"), "{out}");
        assert!(out.contains("7.500"), "{out}");
        assert!(
            out.contains("critical path (root bench.run, 10.000 ms):"),
            "{out}"
        );
        // the path descends into the longer fptas.phase instance
        assert!(out.contains("6.000 ms"), "{out}");
        assert!(out.contains("conversion timeline (1 points):"), "{out}");
        assert!(out.contains("drain"), "{out}");
        assert!(out.contains("8/16"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trace_diff_and_exports() {
        let path = write_trace_fixture("ftctl_trace_diff_test.jsonl");
        let p = path.to_str().unwrap();
        let out = run(&inv(&["trace", p, "--diff", p])).unwrap();
        assert!(out.contains("trace diff:"), "{out}");
        assert!(out.contains("+0.000"), "self-diff must be all-zero: {out}");

        let chrome = std::env::temp_dir().join("ftctl_trace_chrome_test.json");
        let folded = std::env::temp_dir().join("ftctl_trace_folded_test.folded");
        let out = run(&inv(&[
            "trace",
            p,
            "--chrome",
            chrome.to_str().unwrap(),
            "--folded",
            folded.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("chrome trace-event json written"), "{out}");
        let body = std::fs::read_to_string(&chrome).unwrap();
        assert!(body.starts_with("{\"traceEvents\":["), "{body}");
        assert!(body.contains("\"ph\":\"X\""), "{body}");
        let stacks = std::fs::read_to_string(&folded).unwrap();
        // root;child;grandchild weighted by self time
        assert!(
            stacks.contains("bench.run;fptas.run;fptas.phase 7500"),
            "{stacks}"
        );
        for f in [path, chrome, folded] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn trace_bad_inputs_are_cli_errors() {
        assert!(run(&inv(&["trace"])).is_err());
        assert!(run(&inv(&["trace", "/nonexistent/ftctl-spans.jsonl"])).is_err());
        let empty = std::env::temp_dir().join("ftctl_trace_empty_test.jsonl");
        std::fs::write(&empty, "{\"kind\":\"arrival\"}\n").unwrap();
        let err = run(&inv(&["trace", empty.to_str().unwrap()])).unwrap_err();
        assert!(err.0.contains("no span events"), "{err}");
        let _ = std::fs::remove_file(empty);
    }

    #[test]
    fn lint_parses_fix_allow_as_bool_flag() {
        // --fix-allow takes no value; it must not swallow the next flag
        let i = inv(&["lint", "--fix-allow", "--json", "-"]);
        assert_eq!(i.command, "lint");
        assert!(i.options.contains_key("fix-allow"));
        assert_eq!(i.options["json"], "-");
    }

    #[test]
    fn lint_bad_root_is_cli_error() {
        let err = run(&inv(&[
            "lint",
            "--root",
            "/nonexistent/ftctl-lint-test-root",
        ]))
        .unwrap_err();
        assert!(err.0.contains("lint configuration error"), "{err}");
    }

    #[test]
    fn lint_clean_fixture_tree_emits_json() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/ft-lint/fixtures/clean");
        let out = run(&inv(&["lint", "--root", root, "--json", "-"])).unwrap();
        assert!(out.contains("\"schema\": \"ft-lint/2\""), "{out}");
        assert!(out.contains("\"clean\": true"), "{out}");
        assert!(out.contains("0 violation(s)"), "{out}");
    }
}
