//! Command-line interface backing the `ftctl` binary.
//!
//! Hand-rolled argument handling (the workspace's dependency policy has no
//! CLI crate) with the command logic separated from I/O so it is unit
//! testable: every command produces a [`String`] report, and the binary
//! just prints it.
//!
//! ```text
//! ftctl topo    --kind fat-tree|random-graph|two-stage|flat-tree -k 8
//!               [--mode clos|local-rg|global-rg] [--seed S] [--dot F] [--json F]
//! ftctl metrics --kind … -k 8 [--mode …] [--seed S]
//! ftctl convert -k 8 --from <mode> --to <mode>
//! ftctl profile -k 8
//! ftctl serve   -k 8 [--port 0] [--workers 4] [--cache 8] [--queue 64]
//! ftctl query   -k 8 --req "paths mode=global-rg; stats"
//! ```

use crate::core::{profile_mn, FlatTree, FlatTreeConfig, Mode};
use crate::graph::bridges::bridges;
use crate::graph::stats::{diameter, mean_degree};
use crate::metrics::bisection::random_bisection_bandwidth;
use crate::metrics::path_length::{average_intra_pod_path_length, average_server_path_length};
use crate::serve::{serve_listener, ServeConfig, Service};
use crate::topo::export::{to_dot, to_json};
use crate::topo::{
    fat_tree, jellyfish_matching_fat_tree, two_stage_random_graph, Network, TwoStageParams,
};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed command line: subcommand plus `--flag value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The subcommand (`topo`, `metrics`, `convert`, `profile`).
    pub command: String,
    /// Flag values, keys without the leading `--`.
    pub options: HashMap<String, String>,
}

/// Errors surfaced to the user as friendly messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text shown by `--help` and on parse errors.
pub const USAGE: &str = "\
ftctl — flat-tree topology tool

USAGE:
  ftctl topo    --kind <fat-tree|random-graph|two-stage|flat-tree> -k <even>
                [--mode <clos|local-rg|global-rg>] [--seed <u64>]
                [--dot <file>] [--json <file>]
  ftctl metrics --kind <…> -k <even> [--mode <…>] [--seed <u64>]
  ftctl convert -k <even> --from <mode> --to <mode>
  ftctl profile -k <even>
  ftctl serve   -k <even> [--port <u16, default 0 = OS-picked>]
                [--workers <n>] [--cache <n>] [--queue <n>]
  ftctl query   -k <even> [--req \"<ftq line>[; <ftq line>…]\"] [--workers <n>]

Topology kinds build from the same equipment as fat-tree(k). flat-tree
requires --mode; other kinds ignore it.

serve runs the resident FTQ/1 query service on localhost TCP until a client
sends `shutdown`; query boots the same service in-process, issues the
`;`-separated request lines, and prints one reply line each (protocol verbs:
topo | paths | throughput | plan | convert | stats | shutdown).";

/// Splits raw arguments into an [`Invocation`].
pub fn parse(args: &[String]) -> Result<Invocation, CliError> {
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or_else(|| CliError(format!("missing subcommand\n\n{USAGE}")))?
        .clone();
    if command == "--help" || command == "-h" || command == "help" {
        return Ok(Invocation {
            command: "help".into(),
            options: HashMap::new(),
        });
    }
    let mut options = HashMap::new();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .or_else(|| flag.strip_prefix('-'))
            .ok_or_else(|| CliError(format!("expected a flag, got {flag:?}\n\n{USAGE}")))?;
        let value = it
            .next()
            .ok_or_else(|| CliError(format!("flag --{key} needs a value")))?;
        options.insert(key.to_string(), value.clone());
    }
    Ok(Invocation { command, options })
}

fn get_k(inv: &Invocation) -> Result<usize, CliError> {
    let k: usize = inv
        .options
        .get("k")
        .ok_or_else(|| CliError("missing -k <even fat-tree parameter>".into()))?
        .parse()
        .map_err(|_| CliError("-k must be an integer".into()))?;
    if k < 4 || !k.is_multiple_of(2) {
        return Err(CliError(format!("-k must be even and ≥ 4, got {k}")));
    }
    Ok(k)
}

fn get_seed(inv: &Invocation) -> Result<u64, CliError> {
    match inv.options.get("seed") {
        None => Ok(1),
        Some(s) => s
            .parse()
            .map_err(|_| CliError("--seed must be an integer".into())),
    }
}

fn parse_mode(s: &str) -> Result<Mode, CliError> {
    match s {
        "clos" => Ok(Mode::Clos),
        "local-rg" | "local" => Ok(Mode::LocalRandom),
        "global-rg" | "global" => Ok(Mode::GlobalRandom),
        other => Err(CliError(format!(
            "unknown mode {other:?} (use clos | local-rg | global-rg)"
        ))),
    }
}

fn build_network(inv: &Invocation) -> Result<Network, CliError> {
    let k = get_k(inv)?;
    let seed = get_seed(inv)?;
    let kind = inv
        .options
        .get("kind")
        .map(String::as_str)
        .unwrap_or("flat-tree");
    match kind {
        "fat-tree" => fat_tree(k).map_err(|e| CliError(e.to_string())),
        "random-graph" => jellyfish_matching_fat_tree(k, seed).map_err(|e| CliError(e.to_string())),
        "two-stage" => two_stage_random_graph(
            TwoStageParams::matching_fat_tree(k).map_err(|e| CliError(e.to_string()))?,
            seed,
        )
        .map_err(|e| CliError(e.to_string())),
        "flat-tree" => {
            let mode = parse_mode(
                inv.options
                    .get("mode")
                    .map(String::as_str)
                    .unwrap_or("clos"),
            )?;
            let cfg = FlatTreeConfig::for_fat_tree_k(k).map_err(|e| CliError(e.to_string()))?;
            let ft = FlatTree::new(cfg).map_err(|e| CliError(e.to_string()))?;
            ft.materialize(&mode).map_err(|e| CliError(e.to_string()))
        }
        other => Err(CliError(format!(
            "unknown --kind {other:?} (use fat-tree | random-graph | two-stage | flat-tree)"
        ))),
    }
}

/// Executes a parsed invocation, returning the report to print.
pub fn run(inv: &Invocation) -> Result<String, CliError> {
    match inv.command.as_str() {
        "help" => Ok(USAGE.to_string()),
        "topo" => cmd_topo(inv),
        "metrics" => cmd_metrics(inv),
        "convert" => cmd_convert(inv),
        "profile" => cmd_profile(inv),
        "serve" => cmd_serve(inv),
        "query" => cmd_query(inv),
        other => Err(CliError(format!("unknown subcommand {other:?}\n\n{USAGE}"))),
    }
}

fn cmd_topo(inv: &Invocation) -> Result<String, CliError> {
    let net = build_network(inv)?;
    let mut out = String::new();
    let eq = net.equipment();
    let _ = writeln!(out, "{}", net.name());
    let _ = writeln!(
        out,
        "  switches: {}   servers: {}   links: {}",
        eq.switches, eq.servers, eq.links
    );
    if let Some(path) = inv.options.get("dot") {
        std::fs::write(path, to_dot(&net))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "  dot written to {path}");
    }
    if let Some(path) = inv.options.get("json") {
        std::fs::write(path, to_json(&net))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "  json written to {path}");
    }
    Ok(out)
}

fn cmd_metrics(inv: &Invocation) -> Result<String, CliError> {
    let net = build_network(inv)?;
    let k = get_k(inv)?;
    let sg = net.switch_graph();
    let mut out = String::new();
    let _ = writeln!(out, "{}", net.name());
    let _ = writeln!(
        out,
        "  average path length (servers): {:.4}",
        average_server_path_length(&net)
    );
    let _ = writeln!(
        out,
        "  intra-pod path length:         {:.4}",
        average_intra_pod_path_length(&net, k * k / 4)
    );
    let _ = writeln!(
        out,
        "  switch diameter:               {}",
        diameter(&sg).map(|d| d.to_string()).unwrap_or("∞".into())
    );
    let _ = writeln!(
        out,
        "  mean switch degree:            {:.2}",
        mean_degree(&sg)
    );
    let _ = writeln!(
        out,
        "  fabric bridges:                {}",
        bridges(&sg).len()
    );
    let _ = writeln!(
        out,
        "  random-bisection bandwidth:    {}",
        random_bisection_bandwidth(&net, 16, get_seed(inv)?)
    );
    Ok(out)
}

fn cmd_convert(inv: &Invocation) -> Result<String, CliError> {
    let k = get_k(inv)?;
    let from = parse_mode(
        inv.options
            .get("from")
            .ok_or_else(|| CliError("missing --from <mode>".into()))?,
    )?;
    let to = parse_mode(
        inv.options
            .get("to")
            .ok_or_else(|| CliError("missing --to <mode>".into()))?,
    )?;
    let cfg = FlatTreeConfig::for_fat_tree_k(k).map_err(|e| CliError(e.to_string()))?;
    let ft = FlatTree::new(cfg).map_err(|e| CliError(e.to_string()))?;
    let a = ft.resolve(&from).map_err(|e| CliError(e.to_string()))?;
    let b = ft.resolve(&to).map_err(|e| CliError(e.to_string()))?;
    let plan = crate::control::plan_transition(&ft, &a, &b).map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "conversion {} → {} (k = {k})",
        from.label(),
        to.label()
    );
    let _ = writeln!(
        out,
        "  converter reprogramming ops: {} ({} four-port, {} six-port)",
        plan.converter_ops(),
        plan.four_changes.len(),
        plan.six_changes.len()
    );
    let _ = writeln!(
        out,
        "  logical links rewired:       {} removed, {} added",
        plan.links_removed.len(),
        plan.links_added.len()
    );
    Ok(out)
}

fn cmd_profile(inv: &Invocation) -> Result<String, CliError> {
    let k = get_k(inv)?;
    let result = profile_mn(k, 1).map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profiling sweep for k = {k} (global-RG average path length):"
    );
    for p in &result.points {
        let mark = if (p.m, p.n) == (result.best.m, result.best.n) {
            "  ← best"
        } else {
            ""
        };
        let _ = writeln!(out, "  m = {}, n = {}: {:.4}{mark}", p.m, p.n, p.apl);
    }
    Ok(out)
}

fn get_usize_opt(inv: &Invocation, key: &str) -> Result<Option<usize>, CliError> {
    match inv.options.get(key) {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| CliError(format!("--{key} must be an integer"))),
    }
}

/// Builds a [`ServeConfig`] from `-k` plus the optional
/// `--workers`/`--cache`/`--queue` overrides.
fn serve_config(inv: &Invocation) -> Result<ServeConfig, CliError> {
    let mut cfg = ServeConfig::for_k(get_k(inv)?);
    if let Some(w) = get_usize_opt(inv, "workers")? {
        cfg.workers = w;
    }
    if let Some(c) = get_usize_opt(inv, "cache")? {
        cfg.cache_capacity = c;
    }
    if let Some(q) = get_usize_opt(inv, "queue")? {
        cfg.queue_depth = q;
    }
    Ok(cfg)
}

fn cmd_serve(inv: &Invocation) -> Result<String, CliError> {
    let cfg = serve_config(inv)?;
    let port: u16 = match inv.options.get("port") {
        None => 0,
        Some(s) => s
            .parse()
            .map_err(|_| CliError("--port must be a u16".into()))?,
    };
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| CliError(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    let addr = listener.local_addr().map_err(|e| CliError(e.to_string()))?;
    // Announced eagerly: the report string below only materializes once a
    // client sends `shutdown`, and the caller needs the port before that.
    println!("ftctl serve: listening on {addr} (FTQ/1; send `shutdown` to stop)");
    serve_listener(listener, cfg).map_err(|e| CliError(e.to_string()))
}

fn cmd_query(inv: &Invocation) -> Result<String, CliError> {
    let cfg = serve_config(inv)?;
    let requests: Vec<String> = inv
        .options
        .get("req")
        .map(String::as_str)
        .unwrap_or("topo")
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if requests.is_empty() {
        return Err(CliError("--req contained no request lines".into()));
    }
    let (replies, _report) = Service::run(cfg, |h| {
        requests
            .iter()
            .map(|r| h.request(r))
            .collect::<Vec<String>>()
    })
    .map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    for reply in replies {
        let _ = writeln!(out, "{reply}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(args: &[&str]) -> Invocation {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_basic() {
        let i = inv(&["topo", "--kind", "fat-tree", "-k", "8"]);
        assert_eq!(i.command, "topo");
        assert_eq!(i.options["kind"], "fat-tree");
        assert_eq!(i.options["k"], "8");
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["topo".into(), "oops".into()]).is_err());
        assert!(parse(&["topo".into(), "--k".into()]).is_err());
    }

    #[test]
    fn help_paths() {
        assert_eq!(inv(&["--help"]).command, "help");
        assert!(run(&inv(&["help"])).unwrap().contains("USAGE"));
    }

    #[test]
    fn topo_all_kinds() {
        for kind in ["fat-tree", "random-graph", "two-stage", "flat-tree"] {
            let out = run(&inv(&["topo", "--kind", kind, "-k", "4"])).unwrap();
            assert!(out.contains("switches: 20"), "{kind}: {out}");
            assert!(out.contains("servers: 16"), "{kind}: {out}");
        }
    }

    #[test]
    fn topo_flat_tree_modes() {
        for mode in ["clos", "local-rg", "global-rg"] {
            let out = run(&inv(&[
                "topo",
                "--kind",
                "flat-tree",
                "-k",
                "8",
                "--mode",
                mode,
            ]))
            .unwrap();
            assert!(out.contains(mode), "{out}");
        }
    }

    #[test]
    fn metrics_report_fields() {
        let out = run(&inv(&["metrics", "--kind", "fat-tree", "-k", "4"])).unwrap();
        assert!(out.contains("average path length"));
        assert!(out.contains("fabric bridges:                0"));
    }

    #[test]
    fn convert_reports_plan() {
        let out = run(&inv(&[
            "convert",
            "-k",
            "8",
            "--from",
            "clos",
            "--to",
            "global-rg",
        ]))
        .unwrap();
        assert!(out.contains("converter reprogramming ops: 96"), "{out}");
        assert!(out.contains("removed"));
    }

    #[test]
    fn convert_noop() {
        let out = run(&inv(&[
            "convert", "-k", "8", "--from", "clos", "--to", "clos",
        ]))
        .unwrap();
        assert!(out.contains("ops: 0"), "{out}");
    }

    #[test]
    fn profile_marks_best() {
        let out = run(&inv(&["profile", "-k", "8"])).unwrap();
        assert!(out.contains("← best"));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(run(&inv(&["topo", "--kind", "nope", "-k", "8"])).is_err());
        assert!(run(&inv(&["topo", "--kind", "fat-tree", "-k", "7"])).is_err());
        assert!(run(&inv(&["topo", "--kind", "fat-tree"])).is_err());
        assert!(run(&inv(&[
            "convert", "-k", "8", "--from", "clos", "--to", "weird"
        ]))
        .is_err());
        assert!(run(&inv(&["frobnicate"])).is_err());
    }

    #[test]
    fn query_runs_ftq_lines_in_process() {
        let out = run(&inv(&[
            "query",
            "-k",
            "4",
            "--req",
            "topo; paths; paths; stats",
        ]))
        .unwrap();
        assert!(out.contains("OK topo "), "{out}");
        assert!(out.contains("source=hit"), "{out}");
        assert!(out.contains("OK stats "), "{out}");
        assert_eq!(out.lines().count(), 4, "{out}");
    }

    #[test]
    fn query_surfaces_protocol_errors_as_reply_lines() {
        let out = run(&inv(&["query", "-k", "4", "--req", "frobnicate"])).unwrap();
        assert!(out.starts_with("ERR unknown-verb "), "{out}");
    }

    #[test]
    fn query_and_serve_flag_validation() {
        assert!(run(&inv(&["query", "-k", "4", "--req", " ; "])).is_err());
        assert!(run(&inv(&["query", "-k", "4", "--workers", "zero"])).is_err());
        assert!(run(&inv(&["serve", "-k", "4", "--port", "70000"])).is_err());
        // worker count 0 is rejected by the service itself
        assert!(run(&inv(&["query", "-k", "4", "--workers", "0"])).is_err());
    }

    #[test]
    fn serve_config_applies_overrides() {
        let cfg = serve_config(&inv(&[
            "serve",
            "-k",
            "6",
            "--workers",
            "2",
            "--cache",
            "3",
            "--queue",
            "9",
        ]))
        .unwrap();
        assert_eq!(cfg.k, 6);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.cache_capacity, 3);
        assert_eq!(cfg.queue_depth, 9);
    }

    #[test]
    fn dot_and_json_export() {
        let dir = std::env::temp_dir();
        let dot = dir.join("ftctl_test.dot");
        let json = dir.join("ftctl_test.json");
        let out = run(&inv(&[
            "topo",
            "--kind",
            "fat-tree",
            "-k",
            "4",
            "--dot",
            dot.to_str().unwrap(),
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("dot written"));
        assert!(std::fs::read_to_string(&dot).unwrap().starts_with("graph"));
        assert!(std::fs::read_to_string(&json)
            .unwrap()
            .contains("\"nodes\""));
        let _ = std::fs::remove_file(dot);
        let _ = std::fs::remove_file(json);
    }
}
