//! `ftctl` — command-line access to the flat-tree library: build and export
//! topologies, compute metrics, plan conversions, run the (m, n) profiling
//! sweep. See `ftctl --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flat_tree::cli::parse(&args).and_then(|inv| flat_tree::cli::run(&inv)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
