//! Plain-text reporting: fixed-width tables and named series.
//!
//! The experiment binaries print one table per paper figure — a row per
//! sweep point (the fat-tree parameter k) and a column per curve — plus a
//! CSV form for downstream plotting.

use std::fmt::Write;

/// A named data series: `(x, y)` points, as one curve of a paper figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Curve label (e.g. `"Fat-tree locality"`).
    pub name: String,
    /// Sample points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Looks up y at the given x, if sampled.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// A rectangular table for terminal output.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Builds a table from series sharing a common x axis: first column is
    /// x (labelled `x_name`), then one column per series. Missing samples
    /// render as `-`.
    pub fn from_series(x_name: &str, series: &[Series]) -> Self {
        let mut xs: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut headers = vec![x_name.to_string()];
        headers.extend(series.iter().map(|s| s.name.clone()));
        let mut t = Table {
            headers,
            rows: Vec::new(),
        };
        for x in xs {
            let mut row = vec![format_num(x)];
            for s in series {
                row.push(match s.at(x) {
                    Some(y) => format_num(y),
                    None => "-".to_string(),
                });
            }
            t.rows.push(row);
        }
        t
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned, space-padded columns.
    pub fn to_aligned_string(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (comma-separated, no quoting — labels here never
    /// contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats the standard warning line for a throughput solve whose FPTAS
/// step budget tripped before convergence
/// ([`crate::throughput::ThroughputResult::budget_exhausted`]): the λ in
/// hand is a certified lower bound, **not** a converged approximation, and
/// every reporting surface (`ftctl bench`, experiment binaries, FTQ
/// replies) must say so instead of presenting it as final.
///
/// `context` names the solve (e.g. `"fptas k=32"`), `lambda` is the
/// certified partial value, `steps` the budget that tripped.
pub fn budget_warning(context: &str, lambda: f64, steps: usize) -> String {
    format!(
        "WARN {context}: step budget exhausted after {steps} steps; \
         λ = {} is a certified lower bound, not a converged result",
        format_num(lambda)
    )
}

/// Formats a number compactly: integers without decimals, else 4 significant
/// decimals.
pub fn format_num(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "inf".into() } else { "-inf".into() };
    }
    if v.is_nan() {
        return "nan".into();
    }
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_push_and_at() {
        let mut s = Series::new("a");
        s.push(4.0, 1.5);
        s.push(6.0, 2.5);
        assert_eq!(s.at(4.0), Some(1.5));
        assert_eq!(s.at(5.0), None);
    }

    #[test]
    fn table_from_series_aligns_x() {
        let mut a = Series::new("A");
        a.push(4.0, 1.0);
        a.push(6.0, 2.0);
        let mut b = Series::new("B");
        b.push(6.0, 3.0);
        b.push(8.0, 4.0);
        let t = Table::from_series("k", &[a, b]);
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        assert!(csv.starts_with("k,A,B\n"));
        assert!(csv.contains("4,1,-"));
        assert!(csv.contains("6,2,3"));
        assert!(csv.contains("8,-,4"));
    }

    #[test]
    fn aligned_output_has_ruler() {
        let mut t = Table::new(&["k", "value"]);
        t.push_row(vec!["4".into(), "1.2345".into()]);
        let s = t.to_aligned_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn budget_warning_names_context_and_value() {
        let w = budget_warning("fptas k=32", 0.25, 3000);
        assert!(w.starts_with("WARN fptas k=32:"), "{w}");
        assert!(w.contains("3000"), "{w}");
        assert!(w.contains("0.25"), "{w}");
        assert!(w.contains("lower bound"), "{w}");
    }

    #[test]
    fn format_num_variants() {
        assert_eq!(format_num(4.0), "4");
        assert_eq!(format_num(0.12345), "0.1235");
        assert_eq!(format_num(f64::INFINITY), "inf");
        assert_eq!(format_num(f64::NAN), "nan");
    }
}
