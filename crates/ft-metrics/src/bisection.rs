//! Bisection bandwidth estimation.
//!
//! A topology's bisection bandwidth — the minimum link capacity crossing
//! any equal split of the *servers* — is the classic summary of worst-case
//! all-to-all capacity, and the random-graph literature the paper builds on
//! (Jellyfish, Singla's thesis) uses it heavily. Finding the true minimum
//! bisection is NP-hard; this module reports two useful estimates:
//!
//! * [`random_bisection_bandwidth`] — the minimum over sampled random
//!   server bisections (an *upper bound* on the true bisection bandwidth;
//!   tight in practice for well-mixed graphs);
//! * [`pod_bisection_bandwidth`] — the capacity crossing the natural
//!   Pod-aligned bisection (first half of the Pods vs the rest), the cut an
//!   operator would reason about on a Clos network.

use ft_graph::NodeId;
use ft_topo::Network;
use rand::prelude::*;

/// Capacity (link count × unit capacity) crossing a server bipartition.
/// `side[s]` tells which side each *switch* is on; switches are assigned by
/// majority of their servers, serverless switches by `tiebreak`.
fn cut_across(net: &Network, server_side: &[bool], tiebreak: bool) -> u32 {
    // Assign each switch to the side holding most of its servers.
    let mut votes = vec![(0u32, 0u32); net.num_switches()];
    for (i, s) in net.servers().enumerate() {
        let sw = net.attachment(s).index();
        if server_side[i] {
            votes[sw].0 += 1;
        } else {
            votes[sw].1 += 1;
        }
    }
    let side: Vec<bool> = votes
        .iter()
        .map(|&(a, b)| if a == b { tiebreak } else { a > b })
        .collect();
    let mut cut = 0;
    for (_, a, b) in net.graph().edges() {
        if a.index() < net.num_switches()
            && b.index() < net.num_switches()
            && side[a.index()] != side[b.index()]
        {
            cut += 1;
        }
    }
    cut
}

/// Minimum cut capacity over `trials` random equal server bisections.
/// Deterministic for a given seed. Returns 0 for networks with < 2 servers.
pub fn random_bisection_bandwidth(net: &Network, trials: usize, seed: u64) -> u32 {
    let n = net.num_servers();
    if n < 2 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = u32::MAX;
    let mut order: Vec<usize> = (0..n).collect();
    for t in 0..trials.max(1) {
        order.shuffle(&mut rng);
        let mut side = vec![false; n];
        for &i in order.iter().take(n / 2) {
            side[i] = true;
        }
        best = best.min(cut_across(net, &side, t % 2 == 0));
    }
    best
}

/// Capacity crossing the Pod-aligned bisection: servers of the first
/// ⌈pods/2⌉ Pods vs the rest. Networks without Pod annotations fall back
/// to a server-id split.
pub fn pod_bisection_bandwidth(net: &Network) -> u32 {
    let n = net.num_servers();
    if n < 2 {
        return 0;
    }
    let pods: Vec<Option<u32>> = net.servers().map(|s| net.pod(s)).collect();
    let max_pod = pods.iter().flatten().copied().max();
    let side: Vec<bool> = match max_pod {
        Some(mp) => pods.iter().map(|p| p.unwrap_or(0) <= mp / 2).collect(),
        None => (0..n).map(|i| i < n / 2).collect(),
    };
    cut_across(net, &side, false)
}

/// Convenience: servers on one NodeId list vs the rest (used by zone
/// capacity analysis).
pub fn cut_between(net: &Network, group: &[NodeId]) -> u32 {
    let set: std::collections::HashSet<NodeId> = group.iter().copied().collect();
    let side: Vec<bool> = net.servers().map(|s| set.contains(&s)).collect();
    cut_across(net, &side, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_topo::{fat_tree, jellyfish_matching_fat_tree};

    #[test]
    fn fat_tree_pod_bisection() {
        // splitting k = 4 between pods {0,1} and {2,3}: serverless cores
        // receive no votes and land on the second side, so exactly the
        // first side's 2 pods × 4 uplinks cross the cut
        let net = fat_tree(4).unwrap();
        assert_eq!(pod_bisection_bandwidth(&net), 8);
    }

    #[test]
    fn random_bisection_upper_bounds_are_stable() {
        let net = fat_tree(4).unwrap();
        let a = random_bisection_bandwidth(&net, 16, 9);
        let b = random_bisection_bandwidth(&net, 16, 9);
        assert_eq!(a, b, "deterministic per seed");
        assert!(a > 0);
    }

    #[test]
    fn more_trials_never_increase_the_minimum() {
        let net = jellyfish_matching_fat_tree(6, 1).unwrap();
        let few = random_bisection_bandwidth(&net, 4, 5);
        let many = random_bisection_bandwidth(&net, 32, 5);
        assert!(many <= few);
    }

    #[test]
    fn random_graph_richer_bisection_than_fat_tree() {
        // the paper's premise: random graphs have more usable bandwidth
        let k = 8;
        let ft = fat_tree(k).unwrap();
        let rg = jellyfish_matching_fat_tree(k, 2).unwrap();
        let ft_cut = random_bisection_bandwidth(&ft, 24, 3);
        let rg_cut = random_bisection_bandwidth(&rg, 24, 3);
        assert!(
            rg_cut > ft_cut,
            "random graph bisection {rg_cut} should exceed fat-tree {ft_cut}"
        );
    }

    #[test]
    fn tiny_networks() {
        use ft_topo::{DeviceKind, NetworkBuilder};
        let mut b = NetworkBuilder::new("x");
        let sw = b.add_switch(DeviceKind::Generic, 2, None).unwrap();
        let s = b.add_server(None);
        b.add_link(s, sw).unwrap();
        let net = b.build().unwrap();
        assert_eq!(random_bisection_bandwidth(&net, 4, 0), 0);
        assert_eq!(pod_bisection_bandwidth(&net), 0);
    }

    #[test]
    fn cut_between_zones() {
        let net = fat_tree(4).unwrap();
        let group: Vec<_> = net.servers().take(8).collect(); // pods 0–1
        assert_eq!(cut_between(&net, &group), 8);
    }
}
