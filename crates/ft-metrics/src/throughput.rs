//! Throughput of a topology under a traffic matrix — the paper's §3.1
//! methodology end to end.
//!
//! 1. Aggregate the server-level matrix to attachment switches (server
//!    links are uncapacitated per the paper's relaxation; same-switch pairs
//!    drop out).
//! 2. Give every switch–switch link unit capacity per direction.
//! 3. Solve maximum concurrent flow: exactly (simplex LP) when the instance
//!    is small enough, otherwise with the certified FPTAS.
//!
//! The reported λ is the per-flow throughput the paper plots on the y-axes
//! of Figures 7 and 8.

use ft_mcf::{
    aggregate_commodities, max_concurrent_flow, max_concurrent_flow_aggregated,
    max_concurrent_flow_exact, max_concurrent_flow_sharded, AggregatedInstance, CapGraph,
    Commodity, FptasOptions, McfError, ShardConfig,
};
use ft_topo::{Network, SymmetryClasses};
use ft_workload::TrafficMatrix;

use crate::path_length::SwitchDistances;

/// Which FPTAS routing engine solves instances above the exact-LP
/// threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverKind {
    /// The sequential source-batched Fleischer loop
    /// ([`max_concurrent_flow`]) — the PR 4 baseline.
    #[default]
    Batched,
    /// The round-sharded parallel loop
    /// ([`max_concurrent_flow_sharded`]): same certification, trees built
    /// on the `ft_graph::par` pool, λ bit-identical across `FT_THREADS`.
    Sharded,
    /// Symmetry-aggregated quotient solve
    /// ([`max_concurrent_flow_aggregated`]) over
    /// `ft_topo::SymmetryClasses` orbits; falls back to [`Self::Sharded`]
    /// on the full instance when the commodity set does not aggregate
    /// (asymmetric/converted topologies, incomplete distance data).
    Aggregated,
}

/// Solver configuration for [`throughput`].
#[derive(Clone, Copy, Debug)]
pub struct ThroughputOptions {
    /// FPTAS approximation parameter (certified λ ≥ (1 − 3ε)·OPT).
    pub epsilon: f64,
    /// Use the exact LP when `commodities × arcs` is at most this
    /// (LP variable count); beyond it, the FPTAS runs. 0 forces the FPTAS.
    pub exact_threshold: usize,
    /// Optional hard cap on FPTAS shortest-path computations.
    pub max_steps: Option<usize>,
    /// FPTAS routing engine for instances above the threshold.
    pub solver: SolverKind,
    /// Worker threads for the sharded/aggregated engines (0 = the
    /// `FT_THREADS` pool default). Never affects λ, only the wall clock.
    pub threads: usize,
}

impl Default for ThroughputOptions {
    fn default() -> Self {
        ThroughputOptions {
            epsilon: 0.1,
            exact_threshold: 2_000,
            max_steps: None,
            solver: SolverKind::Batched,
            threads: 0,
        }
    }
}

impl ThroughputOptions {
    /// FPTAS-only options with the given ε (batched engine).
    pub fn fptas(epsilon: f64) -> Self {
        ThroughputOptions {
            epsilon,
            exact_threshold: 0,
            ..Default::default()
        }
    }

    /// FPTAS-only options with the given ε and routing engine.
    pub fn fptas_with(epsilon: f64, solver: SolverKind) -> Self {
        ThroughputOptions {
            epsilon,
            exact_threshold: 0,
            solver,
            ..Default::default()
        }
    }
}

/// Result of a throughput evaluation.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// Concurrent per-flow throughput λ. Always a certified lower bound;
    /// only a converged (1 − 3ε)-approximation when
    /// [`ThroughputResult::budget_exhausted`] is `false`.
    pub lambda: f64,
    /// Whether the exact LP (true) or the FPTAS (false) produced it.
    pub exact: bool,
    /// Commodities after switch-level aggregation.
    pub commodities: usize,
    /// Node-cut upper bound on λ (∞ when unconstrained / exact path).
    pub upper_bound: f64,
    /// `true` when the FPTAS step budget ([`ThroughputOptions::max_steps`])
    /// tripped before convergence: `lambda` is then only a lower bound.
    /// Always `false` on the exact-LP path. Surface this to users (see
    /// [`crate::report::budget_warning`]) instead of presenting λ as final.
    pub budget_exhausted: bool,
    /// When the symmetry aggregation engaged
    /// ([`SolverKind::Aggregated`], non-identity): the number of
    /// representative commodities actually solved. `None` when the solver
    /// ran on the full commodity list.
    pub aggregated: Option<usize>,
}

/// Evaluates λ for the network under the given server-level matrix.
///
/// # Errors
/// Propagates [`McfError`] from the underlying solver (invalid ε, internal
/// LP inconsistency); aggregation guarantees the commodities themselves are
/// well-formed.
pub fn throughput(
    net: &Network,
    tm: &TrafficMatrix,
    opts: ThroughputOptions,
) -> Result<ThroughputResult, McfError> {
    let commodities: Vec<Commodity> = aggregate_commodities(tm.switch_triples(net));
    throughput_on_commodities(net, &commodities, opts)
}

/// Evaluates λ for pre-aggregated switch-level commodities. Exposed for
/// callers (hybrid-mode experiments) that combine matrices before solving.
///
/// # Errors
/// Propagates [`McfError`] from the underlying solver.
pub fn throughput_on_commodities(
    net: &Network,
    commodities: &[Commodity],
    opts: ThroughputOptions,
) -> Result<ThroughputResult, McfError> {
    throughput_on_commodities_with(net, commodities, opts, None)
}

/// [`throughput_on_commodities`] with an optional shared distance table.
/// The table warm-starts the sharded engines (O(1) reachability, the
/// distance-volume upper bound) and feeds the symmetry aggregation —
/// `ft-serve` passes the table it already caches per network instead of
/// recomputing APSP per query.
///
/// # Errors
/// Propagates [`McfError`] from the underlying solver.
pub fn throughput_on_commodities_with(
    net: &Network,
    commodities: &[Commodity],
    opts: ThroughputOptions,
    warm: Option<&SwitchDistances>,
) -> Result<ThroughputResult, McfError> {
    let sg = net.switch_graph();
    let cg = CapGraph::from_graph(&sg, 1.0);
    if commodities.is_empty() {
        return Ok(ThroughputResult {
            lambda: f64::INFINITY,
            exact: true,
            commodities: 0,
            upper_bound: f64::INFINITY,
            budget_exhausted: false,
            aggregated: None,
        });
    }
    let lp_vars = commodities.len() * cg.arc_count();
    if lp_vars <= opts.exact_threshold {
        return Ok(ThroughputResult {
            lambda: max_concurrent_flow_exact(&cg, commodities)?,
            exact: true,
            commodities: commodities.len(),
            upper_bound: f64::INFINITY,
            budget_exhausted: false,
            aggregated: None,
        });
    }
    let fopts = FptasOptions {
        epsilon: opts.epsilon,
        max_steps: opts.max_steps,
    };
    let wrap = |sol: ft_mcf::McfSolution, aggregated: Option<usize>| ThroughputResult {
        lambda: sol.lambda,
        exact: false,
        commodities: commodities.len(),
        upper_bound: sol.upper_bound,
        budget_exhausted: sol.budget_exhausted,
        aggregated,
    };
    match opts.solver {
        SolverKind::Batched => Ok(wrap(max_concurrent_flow(&cg, commodities, fopts)?, None)),
        SolverKind::Sharded => {
            // Only a caller-provided table warm-starts the plain sharded
            // engine: computing APSP here would hide a whole-table build
            // behind every solve.
            let oracle = warm.map(|d| move |a: usize, b: usize| d.switch_distance(a, b));
            let cfg = ShardConfig {
                threads: opts.threads,
                warm: oracle
                    .as_ref()
                    .map(|o| o as &(dyn Fn(usize, usize) -> Option<u32> + Sync)),
            };
            Ok(wrap(
                max_concurrent_flow_sharded(&cg, commodities, fopts, &cfg)?,
                None,
            ))
        }
        SolverKind::Aggregated => {
            // Aggregation needs a full distance table; compute one if the
            // caller did not share theirs.
            let owned;
            let dist = match warm {
                Some(d) => d,
                None => {
                    owned = SwitchDistances::compute(net);
                    &owned
                }
            };
            let oracle = move |a: usize, b: usize| dist.switch_distance(a, b);
            let cfg = ShardConfig {
                threads: opts.threads,
                warm: Some(&oracle),
            };
            let classes = SymmetryClasses::compute(net);
            match AggregatedInstance::from_commodities(
                &cg,
                classes.class_slice(),
                commodities,
                &oracle,
            ) {
                Some(inst) => {
                    let aggregated = (!inst.is_identity()).then_some(inst.commodities().len());
                    Ok(wrap(
                        max_concurrent_flow_aggregated(&cg, &inst, fopts, &cfg)?,
                        aggregated,
                    ))
                }
                // non-aggregatable (asymmetric, mixed demands, missing
                // distance rows): solve the instance as given
                None => Ok(wrap(
                    max_concurrent_flow_sharded(&cg, commodities, fopts, &cfg)?,
                    None,
                )),
            }
        }
    }
}

/// Symbolic uniform all-to-all throughput: every ordered pair of distinct
/// servers exchanges unit demand, expressed directly as per-switch weights
/// (`n_s · n_t` between hosting switches) without materializing the
/// quadratic commodity list. With [`SolverKind::Aggregated`] and a
/// symmetric topology this is what makes k = 128 solvable at all; other
/// engines (or failed aggregation) fall back to the materialized list.
///
/// # Errors
/// Propagates [`McfError`] from the underlying solver.
pub fn throughput_all_to_all(
    net: &Network,
    opts: ThroughputOptions,
) -> Result<ThroughputResult, McfError> {
    let counts = net.server_counts();
    if opts.solver == SolverKind::Aggregated {
        let sg = net.switch_graph();
        let cg = CapGraph::from_graph(&sg, 1.0);
        let dist = SwitchDistances::compute(net);
        let oracle = move |a: usize, b: usize| dist.switch_distance(a, b);
        let classes = SymmetryClasses::compute(net);
        let weights: Vec<f64> = counts.iter().map(|&c| f64::from(c)).collect();
        if let Some(inst) =
            AggregatedInstance::all_to_all(&cg, classes.class_slice(), &weights, &oracle)
        {
            let cfg = ShardConfig {
                threads: opts.threads,
                warm: Some(&oracle),
            };
            let sol = max_concurrent_flow_aggregated(
                &cg,
                &inst,
                FptasOptions {
                    epsilon: opts.epsilon,
                    max_steps: opts.max_steps,
                },
                &cfg,
            )?;
            let aggregated = (!inst.is_identity()).then_some(inst.commodities().len());
            return Ok(ThroughputResult {
                lambda: sol.lambda,
                exact: false,
                commodities: inst.original_commodities(),
                upper_bound: sol.upper_bound,
                budget_exhausted: sol.budget_exhausted,
                aggregated,
            });
        }
    }
    // Materialized fallback: switch-level all-to-all with n_s·n_t demands.
    let mut commodities = Vec::new();
    for (s, &ns) in counts.iter().enumerate() {
        if ns == 0 {
            continue;
        }
        for (t, &nt) in counts.iter().enumerate() {
            if t != s && nt > 0 {
                commodities.push(Commodity {
                    src: s,
                    dst: t,
                    demand: f64::from(ns) * f64::from(nt),
                });
            }
        }
    }
    // The sharded engine gets the same warm table the aggregated path
    // uses, so an identity-degraded aggregation and a direct sharded run
    // produce bit-identical λ (the symmetry tests byte-compare them).
    let warm = (opts.solver == SolverKind::Sharded).then(|| SwitchDistances::compute(net));
    throughput_on_commodities_with(net, &commodities, opts, warm.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_topo::{fat_tree, jellyfish_matching_fat_tree};
    use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};

    #[test]
    fn same_switch_traffic_is_free() {
        let net = fat_tree(4).unwrap();
        // all-to-all among the 2 servers of one edge switch: same-switch
        // pairs only → unconstrained
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 2,
            locality: Locality::Strong,
        };
        let tm = generate(&net, &spec, 1);
        // clusters of 2 over contiguous ids = exactly the co-located pairs
        let r = throughput(&net, &tm, ThroughputOptions::default()).unwrap();
        assert!(r.lambda.is_infinite());
        assert_eq!(r.commodities, 0);
    }

    #[test]
    fn fat_tree_all_to_all_exact_vs_fptas() {
        let net = fat_tree(4).unwrap();
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 8,
            locality: Locality::Strong,
        };
        let tm = generate(&net, &spec, 1);
        let exact = throughput(
            &net,
            &tm,
            ThroughputOptions {
                exact_threshold: usize::MAX,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(exact.exact);
        let approx = throughput(&net, &tm, ThroughputOptions::fptas(0.05)).unwrap();
        assert!(!approx.exact);
        assert!(approx.lambda <= exact.lambda + 1e-6);
        assert!(
            approx.lambda >= 0.8 * exact.lambda,
            "approx {} vs exact {}",
            approx.lambda,
            exact.lambda
        );
    }

    #[test]
    fn random_graph_beats_fat_tree_on_hotspot() {
        // the paper's headline: ~1.5× throughput for broadcast/incast
        let k = 6;
        let spec = WorkloadSpec {
            pattern: TrafficPattern::HotSpot,
            cluster_size: 27, // one pod's worth, spans pods
            locality: Locality::None,
        };
        let ft = fat_tree(k).unwrap();
        let rg = jellyfish_matching_fat_tree(k, 3).unwrap();
        let tm_ft = generate(&ft, &spec, 9);
        let tm_rg = generate(&rg, &spec, 9);
        let o = ThroughputOptions::fptas(0.08);
        let lf = throughput(&ft, &tm_ft, o).unwrap().lambda;
        let lr = throughput(&rg, &tm_rg, o).unwrap().lambda;
        assert!(lr > lf, "random graph λ {lr} should beat fat-tree λ {lf}");
    }

    #[test]
    fn solver_engines_agree_on_fat_tree_all_to_all() {
        let net = fat_tree(4).unwrap();
        let eps = 0.08;
        let band = 1.0 - 3.0 * eps;
        let b = throughput_all_to_all(&net, ThroughputOptions::fptas(eps)).unwrap();
        let s = throughput_all_to_all(
            &net,
            ThroughputOptions::fptas_with(eps, SolverKind::Sharded),
        )
        .unwrap();
        let a = throughput_all_to_all(
            &net,
            ThroughputOptions::fptas_with(eps, SolverKind::Aggregated),
        )
        .unwrap();
        // the fat-tree is symmetric: the aggregation must engage and
        // collapse the 56 edge-pair commodities to a handful of orbits
        let collapsed = a
            .aggregated
            .expect("aggregation should engage on a fat-tree");
        assert!(
            collapsed < a.commodities,
            "{collapsed} vs {}",
            a.commodities
        );
        for (name, r) in [("sharded", &s), ("aggregated", &a)] {
            assert!(
                r.lambda >= band * b.lambda - 1e-9 && b.lambda >= band * r.lambda - 1e-9,
                "{name} {} vs batched {} outside the ε band",
                r.lambda,
                b.lambda
            );
            assert!(!r.budget_exhausted);
        }
    }

    #[test]
    fn warm_table_keeps_lambda_in_band() {
        let net = fat_tree(4).unwrap();
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 8,
            locality: Locality::Strong,
        };
        let tm = generate(&net, &spec, 1);
        let commodities: Vec<_> = ft_mcf::aggregate_commodities(tm.switch_triples(&net));
        let eps = 0.08;
        let band = 1.0 - 3.0 * eps;
        let opts = ThroughputOptions::fptas_with(eps, SolverKind::Sharded);
        let cold = throughput_on_commodities_with(&net, &commodities, opts, None).unwrap();
        let table = crate::path_length::SwitchDistances::compute(&net);
        let warm = throughput_on_commodities_with(&net, &commodities, opts, Some(&table)).unwrap();
        assert!(
            warm.lambda >= band * cold.lambda - 1e-9 && cold.lambda >= band * warm.lambda - 1e-9,
            "warm {} vs cold {}",
            warm.lambda,
            cold.lambda
        );
    }

    #[test]
    fn lambda_within_upper_bound() {
        let net = fat_tree(4).unwrap();
        let tm = generate(&net, &WorkloadSpec::hotspot(Locality::Strong), 2);
        let r = throughput(&net, &tm, ThroughputOptions::fptas(0.1)).unwrap();
        assert!(r.lambda <= r.upper_bound + 1e-9);
        assert!(r.lambda > 0.0);
        assert!(!r.budget_exhausted, "unbounded run must converge");
    }
}
