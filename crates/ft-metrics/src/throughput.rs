//! Throughput of a topology under a traffic matrix — the paper's §3.1
//! methodology end to end.
//!
//! 1. Aggregate the server-level matrix to attachment switches (server
//!    links are uncapacitated per the paper's relaxation; same-switch pairs
//!    drop out).
//! 2. Give every switch–switch link unit capacity per direction.
//! 3. Solve maximum concurrent flow: exactly (simplex LP) when the instance
//!    is small enough, otherwise with the certified FPTAS.
//!
//! The reported λ is the per-flow throughput the paper plots on the y-axes
//! of Figures 7 and 8.

use ft_mcf::{
    aggregate_commodities, max_concurrent_flow, max_concurrent_flow_exact, CapGraph, Commodity,
    FptasOptions, McfError,
};
use ft_topo::Network;
use ft_workload::TrafficMatrix;

/// Solver configuration for [`throughput`].
#[derive(Clone, Copy, Debug)]
pub struct ThroughputOptions {
    /// FPTAS approximation parameter (certified λ ≥ (1 − 3ε)·OPT).
    pub epsilon: f64,
    /// Use the exact LP when `commodities × arcs` is at most this
    /// (LP variable count); beyond it, the FPTAS runs. 0 forces the FPTAS.
    pub exact_threshold: usize,
    /// Optional hard cap on FPTAS shortest-path computations.
    pub max_steps: Option<usize>,
}

impl Default for ThroughputOptions {
    fn default() -> Self {
        ThroughputOptions {
            epsilon: 0.1,
            exact_threshold: 2_000,
            max_steps: None,
        }
    }
}

impl ThroughputOptions {
    /// FPTAS-only options with the given ε.
    pub fn fptas(epsilon: f64) -> Self {
        ThroughputOptions {
            epsilon,
            exact_threshold: 0,
            max_steps: None,
        }
    }
}

/// Result of a throughput evaluation.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// Concurrent per-flow throughput λ. Always a certified lower bound;
    /// only a converged (1 − 3ε)-approximation when
    /// [`ThroughputResult::budget_exhausted`] is `false`.
    pub lambda: f64,
    /// Whether the exact LP (true) or the FPTAS (false) produced it.
    pub exact: bool,
    /// Commodities after switch-level aggregation.
    pub commodities: usize,
    /// Node-cut upper bound on λ (∞ when unconstrained / exact path).
    pub upper_bound: f64,
    /// `true` when the FPTAS step budget ([`ThroughputOptions::max_steps`])
    /// tripped before convergence: `lambda` is then only a lower bound.
    /// Always `false` on the exact-LP path. Surface this to users (see
    /// [`crate::report::budget_warning`]) instead of presenting λ as final.
    pub budget_exhausted: bool,
}

/// Evaluates λ for the network under the given server-level matrix.
///
/// # Errors
/// Propagates [`McfError`] from the underlying solver (invalid ε, internal
/// LP inconsistency); aggregation guarantees the commodities themselves are
/// well-formed.
pub fn throughput(
    net: &Network,
    tm: &TrafficMatrix,
    opts: ThroughputOptions,
) -> Result<ThroughputResult, McfError> {
    let commodities: Vec<Commodity> = aggregate_commodities(tm.switch_triples(net));
    throughput_on_commodities(net, &commodities, opts)
}

/// Evaluates λ for pre-aggregated switch-level commodities. Exposed for
/// callers (hybrid-mode experiments) that combine matrices before solving.
///
/// # Errors
/// Propagates [`McfError`] from the underlying solver.
pub fn throughput_on_commodities(
    net: &Network,
    commodities: &[Commodity],
    opts: ThroughputOptions,
) -> Result<ThroughputResult, McfError> {
    let sg = net.switch_graph();
    let cg = CapGraph::from_graph(&sg, 1.0);
    if commodities.is_empty() {
        return Ok(ThroughputResult {
            lambda: f64::INFINITY,
            exact: true,
            commodities: 0,
            upper_bound: f64::INFINITY,
            budget_exhausted: false,
        });
    }
    let lp_vars = commodities.len() * cg.arc_count();
    if lp_vars <= opts.exact_threshold {
        Ok(ThroughputResult {
            lambda: max_concurrent_flow_exact(&cg, commodities)?,
            exact: true,
            commodities: commodities.len(),
            upper_bound: f64::INFINITY,
            budget_exhausted: false,
        })
    } else {
        let sol = max_concurrent_flow(
            &cg,
            commodities,
            FptasOptions {
                epsilon: opts.epsilon,
                max_steps: opts.max_steps,
            },
        )?;
        Ok(ThroughputResult {
            lambda: sol.lambda,
            exact: false,
            commodities: commodities.len(),
            upper_bound: sol.upper_bound,
            budget_exhausted: sol.budget_exhausted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_topo::{fat_tree, jellyfish_matching_fat_tree};
    use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};

    #[test]
    fn same_switch_traffic_is_free() {
        let net = fat_tree(4).unwrap();
        // all-to-all among the 2 servers of one edge switch: same-switch
        // pairs only → unconstrained
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 2,
            locality: Locality::Strong,
        };
        let tm = generate(&net, &spec, 1);
        // clusters of 2 over contiguous ids = exactly the co-located pairs
        let r = throughput(&net, &tm, ThroughputOptions::default()).unwrap();
        assert!(r.lambda.is_infinite());
        assert_eq!(r.commodities, 0);
    }

    #[test]
    fn fat_tree_all_to_all_exact_vs_fptas() {
        let net = fat_tree(4).unwrap();
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 8,
            locality: Locality::Strong,
        };
        let tm = generate(&net, &spec, 1);
        let exact = throughput(
            &net,
            &tm,
            ThroughputOptions {
                exact_threshold: usize::MAX,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(exact.exact);
        let approx = throughput(&net, &tm, ThroughputOptions::fptas(0.05)).unwrap();
        assert!(!approx.exact);
        assert!(approx.lambda <= exact.lambda + 1e-6);
        assert!(
            approx.lambda >= 0.8 * exact.lambda,
            "approx {} vs exact {}",
            approx.lambda,
            exact.lambda
        );
    }

    #[test]
    fn random_graph_beats_fat_tree_on_hotspot() {
        // the paper's headline: ~1.5× throughput for broadcast/incast
        let k = 6;
        let spec = WorkloadSpec {
            pattern: TrafficPattern::HotSpot,
            cluster_size: 27, // one pod's worth, spans pods
            locality: Locality::None,
        };
        let ft = fat_tree(k).unwrap();
        let rg = jellyfish_matching_fat_tree(k, 3).unwrap();
        let tm_ft = generate(&ft, &spec, 9);
        let tm_rg = generate(&rg, &spec, 9);
        let o = ThroughputOptions::fptas(0.08);
        let lf = throughput(&ft, &tm_ft, o).unwrap().lambda;
        let lr = throughput(&rg, &tm_rg, o).unwrap().lambda;
        assert!(lr > lf, "random graph λ {lr} should beat fat-tree λ {lf}");
    }

    #[test]
    fn lambda_within_upper_bound() {
        let net = fat_tree(4).unwrap();
        let tm = generate(&net, &WorkloadSpec::hotspot(Locality::Strong), 2);
        let r = throughput(&net, &tm, ThroughputOptions::fptas(0.1)).unwrap();
        assert!(r.lambda <= r.upper_bound + 1e-9);
        assert!(r.lambda > 0.0);
        assert!(!r.budget_exhausted, "unbounded run must converge");
    }
}
