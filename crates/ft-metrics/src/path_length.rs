//! Average server-pair path length (Figures 5 and 6).
//!
//! Rather than running BFS per server (`k³/4` sources at k = 32), the
//! implementation runs one BFS per *switch that hosts servers* and weights
//! each switch pair by the number of server pairs attached to it:
//!
//! ```text
//! APL = [ Σ_{a,b} n_a·n_b·(d(a,b) + 2)  −  Σ_a n_a·2 ] / [N·(N−1)]
//! ```
//!
//! where `n_a` is the server count on switch `a`, `d` the switch-graph BFS
//! distance, `+2` the two server–switch hops, and the subtracted term
//! removes self-pairs (a server to itself). Distinct servers on the same
//! switch are correctly counted at distance 2.

use ft_graph::{id32, AllPairs, Csr, Graph, NodeId, UNREACHABLE};
use ft_topo::Network;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Cached registry handles: APSP computations and BFS rows filled.
/// Recorded once per [`source_distances`] call, never per row.
struct ApspCounters {
    computations: &'static ft_obs::Counter,
    rows: &'static ft_obs::Counter,
}

fn obs() -> &'static ApspCounters {
    static CELL: OnceLock<ApspCounters> = OnceLock::new();
    CELL.get_or_init(|| ApspCounters {
        computations: ft_obs::registry::counter("ft_metrics_apsp_total"),
        rows: ft_obs::registry::counter("ft_metrics_apsp_rows_total"),
    })
}

/// Builds the partial APSP table for the server-hosting switches, one
/// parallel BFS row per source over a frozen CSR view. Row `i` belongs to
/// `sources[i]`. Rows are bit-identical for every `FT_THREADS` value, so
/// every float accumulation downstream is too.
fn source_distances(sg: &Graph, sources: &[usize]) -> AllPairs {
    let c = obs();
    c.computations.incr();
    c.rows.add(sources.len() as u64);
    let _span = ft_obs::span!(
        "metrics.apsp",
        sources = sources.len(),
        nodes = sg.node_count()
    );
    let nodes: Vec<NodeId> = sources.iter().map(|&i| NodeId(id32(i))).collect();
    AllPairs::compute_from_csr(&Csr::from_graph(sg), &nodes)
}

/// Average path length in hops over all ordered pairs of distinct servers.
///
/// Returns `NaN` for networks with fewer than two servers, and `∞` if any
/// server pair is disconnected.
pub fn average_server_path_length(net: &Network) -> f64 {
    let counts = net.server_counts();
    let sg = net.switch_graph();
    let (sum, pairs) = weighted_sum(&sg, &counts);
    if pairs == 0 {
        return f64::NAN;
    }
    sum / pairs as f64
}

/// Average path length over ordered pairs of distinct servers *in the same
/// Pod* (Figure 6). Paths may leave the Pod; only the endpoints are
/// restricted.
///
/// Networks without Pod annotations (e.g. Jellyfish, whose servers have no
/// meaningful Pod) are grouped into pseudo-Pods of `fallback_pod_size`
/// consecutive servers — the paper's implicit treatment when it reports
/// intra-Pod numbers for the random graph.
pub fn average_intra_pod_path_length(net: &Network, fallback_pod_size: usize) -> f64 {
    // Group servers by pod (or pseudo-pod).
    let mut groups: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
    let annotated = net.servers().any(|s| net.pod(s).is_some());
    for (i, s) in net.servers().enumerate() {
        let pod = if annotated {
            net.pod(s).unwrap_or(u32::MAX)
        } else {
            id32(i / fallback_pod_size.max(1))
        };
        groups.entry(pod).or_default().push(s);
    }
    let sg = net.switch_graph();
    let mut total = 0.0;
    let mut pairs = 0u64;
    for servers in groups.values() {
        let mut counts = vec![0u32; net.num_switches()];
        for &s in servers {
            counts[net.attachment(s).index()] += 1;
        }
        let (sum, p) = weighted_sum(&sg, &counts);
        total += sum;
        pairs += p;
    }
    if pairs == 0 {
        return f64::NAN;
    }
    total / pairs as f64
}

/// Histogram of server-pair path lengths: `hist[h]` = number of ordered
/// pairs of distinct servers at `h` hops. Useful for tail analysis beyond
/// the paper's averages.
pub fn path_length_histogram(net: &Network) -> Vec<u64> {
    let counts = net.server_counts();
    let sg = net.switch_graph();
    let sources: Vec<usize> = (0..counts.len()).filter(|&i| counts[i] > 0).collect();
    let ap = source_distances(&sg, &sources);
    let mut hist: Vec<u64> = Vec::new();
    let mut bump = |h: usize, n: u64| {
        if h >= hist.len() {
            hist.resize(h + 1, 0);
        }
        hist[h] += n;
    };
    for (ai, &a) in sources.iter().enumerate() {
        let dist = ap.row(ai);
        for &b in &sources {
            if dist[b] == UNREACHABLE {
                continue;
            }
            let d = dist[b] as usize + 2;
            let n = if a == b {
                (counts[a] as u64) * (counts[a] as u64 - 1)
            } else {
                counts[a] as u64 * counts[b] as u64
            };
            if n > 0 {
                bump(d, n);
            }
        }
    }
    hist
}

/// Shared weighted-APSP accumulation. Returns `(Σ weight·hops, pair count)`
/// over ordered pairs of distinct servers; the pair count is an exact
/// integer so callers can test emptiness without comparing floats.
/// Disconnected pairs contribute `∞` (reported with a pair count of 1).
fn weighted_sum(sg: &Graph, counts: &[u32]) -> (f64, u64) {
    let total_servers: u64 = counts.iter().map(|&c| c as u64).sum();
    if total_servers < 2 {
        return (0.0, 0);
    }
    let sources: Vec<usize> = (0..counts.len()).filter(|&i| counts[i] > 0).collect();
    // parallel BFS up front; the accumulation below keeps the exact
    // source/target order of the old sequential loop, so the float sum is
    // unchanged bit for bit
    let ap = source_distances(sg, &sources);
    let mut sum = 0.0f64;
    for (ai, &a) in sources.iter().enumerate() {
        let dist = ap.row(ai);
        let na = counts[a] as f64;
        for &b in &sources {
            let w = na * counts[b] as f64;
            if dist[b] == UNREACHABLE {
                return (f64::INFINITY, 1);
            }
            sum += w * (dist[b] as f64 + 2.0);
        }
        // remove self-pairs on switch a (they were counted at d+2 = 2 with
        // weight n_a·n_a; the true same-switch distinct pairs are
        // n_a·(n_a−1), also at 2 hops)
        sum -= 2.0 * na;
    }
    (sum, total_servers * (total_servers - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_topo::{fat_tree, jellyfish_matching_fat_tree};

    #[test]
    fn two_servers_one_switch() {
        use ft_topo::{DeviceKind, NetworkBuilder};
        let mut b = NetworkBuilder::new("x");
        let sw = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        let s0 = b.add_server(None);
        let s1 = b.add_server(None);
        b.add_link(s0, sw).unwrap();
        b.add_link(s1, sw).unwrap();
        let n = b.build().unwrap();
        assert_eq!(average_server_path_length(&n), 2.0);
    }

    #[test]
    fn single_server_nan() {
        use ft_topo::{DeviceKind, NetworkBuilder};
        let mut b = NetworkBuilder::new("x");
        let sw = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        let s0 = b.add_server(None);
        b.add_link(s0, sw).unwrap();
        let n = b.build().unwrap();
        assert!(average_server_path_length(&n).is_nan());
    }

    /// Closed-form fat-tree APL: pairs on the same edge switch are 2 hops,
    /// same pod different edge 4 hops, inter-pod 6 hops.
    fn fat_tree_apl_closed_form(k: usize) -> f64 {
        let n = (k * k * k / 4) as f64; // servers
        let spe = (k / 2) as f64; // servers per edge
        let spp = (k * k / 4) as f64; // servers per pod
        let same_edge = n * (spe - 1.0);
        let same_pod = n * (spp - spe);
        let inter_pod = n * (n - spp);
        (2.0 * same_edge + 4.0 * same_pod + 6.0 * inter_pod) / (n * (n - 1.0))
    }

    #[test]
    fn fat_tree_matches_closed_form() {
        for k in [4, 6, 8] {
            let net = fat_tree(k).unwrap();
            let apl = average_server_path_length(&net);
            let expected = fat_tree_apl_closed_form(k);
            assert!(
                (apl - expected).abs() < 1e-9,
                "k = {k}: {apl} vs {expected}"
            );
        }
    }

    #[test]
    fn fat_tree_intra_pod_is_shorter() {
        let net = fat_tree(8).unwrap();
        let intra = average_intra_pod_path_length(&net, 16);
        let global = average_server_path_length(&net);
        assert!(intra < global);
        // intra-pod closed form: same edge 2 hops, else 4
        let spe = 4.0;
        let spp = 16.0;
        let expected = (2.0 * (spe - 1.0) + 4.0 * (spp - spe)) / (spp - 1.0);
        assert!((intra - expected).abs() < 1e-9, "{intra} vs {expected}");
    }

    #[test]
    fn random_graph_shorter_than_fat_tree() {
        // the paper's core premise: random graphs have shorter paths
        let k = 8;
        let ft = average_server_path_length(&fat_tree(k).unwrap());
        let rg = average_server_path_length(&jellyfish_matching_fat_tree(k, 1).unwrap());
        assert!(rg < ft, "random graph APL {rg} should beat fat-tree {ft}");
    }

    #[test]
    fn jellyfish_intra_pod_uses_pseudo_pods() {
        let k = 6;
        let net = jellyfish_matching_fat_tree(k, 2).unwrap();
        let v = average_intra_pod_path_length(&net, k * k / 4);
        assert!(v.is_finite() && v >= 2.0);
    }

    #[test]
    fn histogram_consistent_with_average() {
        let net = fat_tree(4).unwrap();
        let hist = path_length_histogram(&net);
        let total: u64 = hist.iter().sum();
        let n = net.num_servers() as u64;
        assert_eq!(total, n * (n - 1));
        let mean: f64 = hist
            .iter()
            .enumerate()
            .map(|(h, &c)| h as f64 * c as f64)
            .sum::<f64>()
            / total as f64;
        let apl = average_server_path_length(&net);
        assert!((mean - apl).abs() < 1e-9);
        // fat-tree histogram has mass only at 2, 4, 6
        for (h, &c) in hist.iter().enumerate() {
            if c > 0 {
                assert!(matches!(h, 2 | 4 | 6), "unexpected hop count {h}");
            }
        }
    }

    #[test]
    fn disconnected_pair_infinite() {
        use ft_topo::{DeviceKind, NetworkBuilder};
        let mut b = NetworkBuilder::new("x");
        let sw0 = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        let sw1 = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        let s0 = b.add_server(None);
        let s1 = b.add_server(None);
        b.add_link(s0, sw0).unwrap();
        b.add_link(s1, sw1).unwrap();
        let n = b.build().unwrap();
        assert!(average_server_path_length(&n).is_infinite());
    }
}
