//! Average server-pair path length (Figures 5 and 6).
//!
//! Rather than running BFS per server (`k³/4` sources at k = 32), the
//! implementation runs one BFS per *switch that hosts servers* and weights
//! each switch pair by the number of server pairs attached to it:
//!
//! ```text
//! APL = [ Σ_{a,b} n_a·n_b·(d(a,b) + 2)  −  Σ_a n_a·2 ] / [N·(N−1)]
//! ```
//!
//! where `n_a` is the server count on switch `a`, `d` the switch-graph BFS
//! distance, `+2` the two server–switch hops, and the subtracted term
//! removes self-pairs (a server to itself). Distinct servers on the same
//! switch are correctly counted at distance 2.
//!
//! Distances come from the compact `u16` [`DistMatrix`] filled by the
//! multi-source bitset BFS kernel (DESIGN.md §15); graphs too large for
//! `u16` hop counts fall back to the `u32` [`AllPairs`] fill transparently.
//! One table serves every metric: [`SwitchDistances`] holds the rows for
//! all server-hosting switches, and the `*_with` variants
//! ([`average_server_path_length_with`],
//! [`average_intra_pod_path_length_with`]) reuse it — `ft-serve` computes
//! the table once per materialized network instead of once per query
//! metric. The float accumulation order is unchanged from the original
//! per-call fills, so every reported average is bit-identical.

use ft_graph::{id32, AllPairs, Csr, DistMatrix, Graph, NodeId, UNREACHABLE, UNREACHABLE16};
use ft_topo::Network;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Cached registry handles: APSP computations and BFS rows filled.
/// Recorded once per table build, never per row.
struct ApspCounters {
    computations: &'static ft_obs::Counter,
    rows: &'static ft_obs::Counter,
}

fn obs() -> &'static ApspCounters {
    static CELL: OnceLock<ApspCounters> = OnceLock::new();
    CELL.get_or_init(|| ApspCounters {
        computations: ft_obs::registry::counter("ft_metrics_apsp_total"),
        rows: ft_obs::registry::counter("ft_metrics_apsp_rows_total"),
    })
}

/// The partial distance table behind [`SwitchDistances`]: compact `u16`
/// rows whenever the graph fits (`n < u16::MAX`, always true for the
/// topologies this workspace builds), `u32` rows otherwise.
enum Table {
    Compact(DistMatrix),
    Wide(AllPairs),
}

impl Table {
    /// Distance for row `i`, column `j`, widened to the `u32` domain
    /// ([`UNREACHABLE`] for unreachable pairs under either storage).
    #[inline]
    fn get(&self, i: usize, j: usize) -> u32 {
        match self {
            Table::Compact(m) => {
                let d = m.get(i, j);
                if d == UNREACHABLE16 {
                    UNREACHABLE
                } else {
                    u32::from(d)
                }
            }
            Table::Wide(ap) => ap.get(i, j),
        }
    }
}

/// Builds the partial APSP table for the given source switches, batched
/// multi-source BFS over a frozen CSR view. Row `i` belongs to
/// `sources[i]`. Rows are bit-identical for every `FT_THREADS` value, so
/// every float accumulation downstream is too.
fn source_table(sg: &Graph, sources: &[usize]) -> Table {
    let c = obs();
    c.computations.incr();
    c.rows.add(sources.len() as u64);
    let _span = ft_obs::span!(
        "metrics.apsp",
        sources = sources.len(),
        nodes = sg.node_count()
    );
    let nodes: Vec<NodeId> = sources.iter().map(|&i| NodeId(id32(i))).collect();
    let csr = Csr::from_graph(sg);
    match DistMatrix::compute_from_csr(&csr, &nodes) {
        Ok(m) => Table::Compact(m),
        // DistanceOverflow (graph ≥ u16::MAX nodes): the u32 fill has no
        // such limit. NodeOutOfBounds cannot happen — sources come from
        // enumerating the graph's own switches.
        Err(_) => Table::Wide(AllPairs::compute_from_csr(&csr, &nodes)),
    }
}

/// Switch-graph distances from every server-hosting switch, computed once
/// and shared across the path-length metrics.
///
/// `ft-serve` materializes one of these per cached network; the `*_with`
/// metric variants then reuse it instead of re-running APSP per metric.
pub struct SwitchDistances {
    /// Per switch id: row index into `table`, or `u32::MAX` when the
    /// switch hosts no servers (no row needed).
    row_index: Vec<u32>,
    table: Table,
}

impl SwitchDistances {
    /// Runs the batched BFS fill for all switches of `net` that host at
    /// least one server.
    pub fn compute(net: &Network) -> SwitchDistances {
        let counts = net.server_counts();
        let sg = net.switch_graph();
        let sources: Vec<usize> = (0..counts.len()).filter(|&i| counts[i] > 0).collect();
        let mut row_index = vec![u32::MAX; counts.len()];
        for (r, &s) in sources.iter().enumerate() {
            // bounds: sources enumerate indices of counts
            row_index[s] = id32(r);
        }
        let table = source_table(&sg, &sources);
        SwitchDistances { row_index, table }
    }

    /// Number of rows (server-hosting switches).
    pub fn rows(&self) -> usize {
        self.row_index.iter().filter(|&&r| r != u32::MAX).count()
    }

    /// Distance in hops between switches `a` and `b`, or `None` when `a`
    /// hosts no servers (no row was computed for it).
    #[inline]
    pub fn switch_distance(&self, a: usize, b: usize) -> Option<u32> {
        // bounds: callers pass valid switch ids (≤ row_index length)
        let r = self.row_index[a];
        if r == u32::MAX {
            return None;
        }
        Some(self.table.get(r as usize, b))
    }
}

/// Average path length in hops over all ordered pairs of distinct servers.
///
/// Returns `NaN` for networks with fewer than two servers, and `∞` if any
/// server pair is disconnected.
pub fn average_server_path_length(net: &Network) -> f64 {
    average_server_path_length_with(net, &SwitchDistances::compute(net))
}

/// [`average_server_path_length`] over a precomputed (shared) distance
/// table — bit-identical to the plain variant.
pub fn average_server_path_length_with(net: &Network, dist: &SwitchDistances) -> f64 {
    let counts = net.server_counts();
    let (sum, pairs) = weighted_sum_with(dist, &counts);
    if pairs == 0 {
        return f64::NAN;
    }
    sum / pairs as f64
}

/// Average path length over ordered pairs of distinct servers *in the same
/// Pod* (Figure 6). Paths may leave the Pod; only the endpoints are
/// restricted.
///
/// Networks without Pod annotations (e.g. Jellyfish, whose servers have no
/// meaningful Pod) are grouped into pseudo-Pods of `fallback_pod_size`
/// consecutive servers — the paper's implicit treatment when it reports
/// intra-Pod numbers for the random graph.
pub fn average_intra_pod_path_length(net: &Network, fallback_pod_size: usize) -> f64 {
    average_intra_pod_path_length_with(net, fallback_pod_size, &SwitchDistances::compute(net))
}

/// [`average_intra_pod_path_length`] over a precomputed (shared) distance
/// table — bit-identical to the plain variant, and the reason the table
/// exists: every Pod group reads the same rows instead of re-running APSP.
pub fn average_intra_pod_path_length_with(
    net: &Network,
    fallback_pod_size: usize,
    dist: &SwitchDistances,
) -> f64 {
    // Group servers by pod (or pseudo-pod).
    let mut groups: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
    let annotated = net.servers().any(|s| net.pod(s).is_some());
    for (i, s) in net.servers().enumerate() {
        let pod = if annotated {
            net.pod(s).unwrap_or(u32::MAX)
        } else {
            id32(i / fallback_pod_size.max(1))
        };
        groups.entry(pod).or_default().push(s);
    }
    let mut total = 0.0;
    let mut pairs = 0u64;
    for servers in groups.values() {
        let mut counts = vec![0u32; net.num_switches()];
        for &s in servers {
            counts[net.attachment(s).index()] += 1;
        }
        let (sum, p) = weighted_sum_with(dist, &counts);
        total += sum;
        pairs += p;
    }
    if pairs == 0 {
        return f64::NAN;
    }
    total / pairs as f64
}

/// Histogram of server-pair path lengths: `hist[h]` = number of ordered
/// pairs of distinct servers at `h` hops. Useful for tail analysis beyond
/// the paper's averages.
pub fn path_length_histogram(net: &Network) -> Vec<u64> {
    let counts = net.server_counts();
    let dist = SwitchDistances::compute(net);
    let sources: Vec<usize> = (0..counts.len()).filter(|&i| counts[i] > 0).collect();
    let mut hist: Vec<u64> = Vec::new();
    let mut bump = |h: usize, n: u64| {
        if h >= hist.len() {
            hist.resize(h + 1, 0);
        }
        hist[h] += n;
    };
    for &a in &sources {
        for &b in &sources {
            let d = match dist.switch_distance(a, b) {
                Some(d) if d != UNREACHABLE => d as usize + 2,
                _ => continue,
            };
            let n = if a == b {
                (counts[a] as u64) * (counts[a] as u64 - 1)
            } else {
                counts[a] as u64 * counts[b] as u64
            };
            if n > 0 {
                bump(d, n);
            }
        }
    }
    hist
}

/// Shared weighted-APSP accumulation. Returns `(Σ weight·hops, pair count)`
/// over ordered pairs of distinct servers; the pair count is an exact
/// integer so callers can test emptiness without comparing floats.
/// Disconnected pairs contribute `∞` (reported with a pair count of 1).
///
/// The source/target iteration order is exactly the old per-call fill's
/// order (sources ascending, then targets ascending), so the float sum is
/// unchanged bit for bit no matter which call site shares the table.
fn weighted_sum_with(dist: &SwitchDistances, counts: &[u32]) -> (f64, u64) {
    let total_servers: u64 = counts.iter().map(|&c| c as u64).sum();
    if total_servers < 2 {
        return (0.0, 0);
    }
    let sources: Vec<usize> = (0..counts.len()).filter(|&i| counts[i] > 0).collect();
    let mut sum = 0.0f64;
    for &a in &sources {
        let na = counts[a] as f64;
        for &b in &sources {
            let w = na * counts[b] as f64;
            match dist.switch_distance(a, b) {
                Some(d) if d != UNREACHABLE => sum += w * (d as f64 + 2.0),
                // no row (foreign table) or disconnected: the pair cannot
                // be completed
                _ => return (f64::INFINITY, 1),
            }
        }
        // remove self-pairs on switch a (they were counted at d+2 = 2 with
        // weight n_a·n_a; the true same-switch distinct pairs are
        // n_a·(n_a−1), also at 2 hops)
        sum -= 2.0 * na;
    }
    (sum, total_servers * (total_servers - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_topo::{fat_tree, jellyfish_matching_fat_tree};

    #[test]
    fn two_servers_one_switch() {
        use ft_topo::{DeviceKind, NetworkBuilder};
        let mut b = NetworkBuilder::new("x");
        let sw = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        let s0 = b.add_server(None);
        let s1 = b.add_server(None);
        b.add_link(s0, sw).unwrap();
        b.add_link(s1, sw).unwrap();
        let n = b.build().unwrap();
        assert_eq!(average_server_path_length(&n), 2.0);
    }

    #[test]
    fn single_server_nan() {
        use ft_topo::{DeviceKind, NetworkBuilder};
        let mut b = NetworkBuilder::new("x");
        let sw = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        let s0 = b.add_server(None);
        b.add_link(s0, sw).unwrap();
        let n = b.build().unwrap();
        assert!(average_server_path_length(&n).is_nan());
    }

    /// Closed-form fat-tree APL: pairs on the same edge switch are 2 hops,
    /// same pod different edge 4 hops, inter-pod 6 hops.
    fn fat_tree_apl_closed_form(k: usize) -> f64 {
        let n = (k * k * k / 4) as f64; // servers
        let spe = (k / 2) as f64; // servers per edge
        let spp = (k * k / 4) as f64; // servers per pod
        let same_edge = n * (spe - 1.0);
        let same_pod = n * (spp - spe);
        let inter_pod = n * (n - spp);
        (2.0 * same_edge + 4.0 * same_pod + 6.0 * inter_pod) / (n * (n - 1.0))
    }

    #[test]
    fn fat_tree_matches_closed_form() {
        for k in [4, 6, 8] {
            let net = fat_tree(k).unwrap();
            let apl = average_server_path_length(&net);
            let expected = fat_tree_apl_closed_form(k);
            assert!(
                (apl - expected).abs() < 1e-9,
                "k = {k}: {apl} vs {expected}"
            );
        }
    }

    #[test]
    fn fat_tree_intra_pod_is_shorter() {
        let net = fat_tree(8).unwrap();
        let intra = average_intra_pod_path_length(&net, 16);
        let global = average_server_path_length(&net);
        assert!(intra < global);
        // intra-pod closed form: same edge 2 hops, else 4
        let spe = 4.0;
        let spp = 16.0;
        let expected = (2.0 * (spe - 1.0) + 4.0 * (spp - spe)) / (spp - 1.0);
        assert!((intra - expected).abs() < 1e-9, "{intra} vs {expected}");
    }

    #[test]
    fn shared_table_matches_per_call_fills() {
        for k in [4, 6, 8] {
            let net = fat_tree(k).unwrap();
            let shared = SwitchDistances::compute(&net);
            let apl = average_server_path_length(&net);
            let intra = average_intra_pod_path_length(&net, 16);
            // bit-identical, not approximately equal: same accumulation
            // order over the same distances
            assert_eq!(
                apl.to_bits(),
                average_server_path_length_with(&net, &shared).to_bits(),
                "k={k} apl"
            );
            assert_eq!(
                intra.to_bits(),
                average_intra_pod_path_length_with(&net, 16, &shared).to_bits(),
                "k={k} intra"
            );
        }
    }

    #[test]
    fn switch_distance_rows_cover_hosting_switches() {
        let net = fat_tree(4).unwrap();
        let dist = SwitchDistances::compute(&net);
        // fat-tree k=4: 8 edge switches host servers, cores/aggs do not
        assert_eq!(dist.rows(), 8);
        let counts = net.server_counts();
        for (sw, &c) in counts.iter().enumerate() {
            if c > 0 {
                assert_eq!(dist.switch_distance(sw, sw), Some(0));
            } else {
                assert_eq!(dist.switch_distance(sw, sw), None);
            }
        }
    }

    #[test]
    fn random_graph_shorter_than_fat_tree() {
        // the paper's core premise: random graphs have shorter paths
        let k = 8;
        let ft = average_server_path_length(&fat_tree(k).unwrap());
        let rg = average_server_path_length(&jellyfish_matching_fat_tree(k, 1).unwrap());
        assert!(rg < ft, "random graph APL {rg} should beat fat-tree {ft}");
    }

    #[test]
    fn jellyfish_intra_pod_uses_pseudo_pods() {
        let k = 6;
        let net = jellyfish_matching_fat_tree(k, 2).unwrap();
        let v = average_intra_pod_path_length(&net, k * k / 4);
        assert!(v.is_finite() && v >= 2.0);
    }

    #[test]
    fn histogram_consistent_with_average() {
        let net = fat_tree(4).unwrap();
        let hist = path_length_histogram(&net);
        let total: u64 = hist.iter().sum();
        let n = net.num_servers() as u64;
        assert_eq!(total, n * (n - 1));
        let mean: f64 = hist
            .iter()
            .enumerate()
            .map(|(h, &c)| h as f64 * c as f64)
            .sum::<f64>()
            / total as f64;
        let apl = average_server_path_length(&net);
        assert!((mean - apl).abs() < 1e-9);
        // fat-tree histogram has mass only at 2, 4, 6
        for (h, &c) in hist.iter().enumerate() {
            if c > 0 {
                assert!(matches!(h, 2 | 4 | 6), "unexpected hop count {h}");
            }
        }
    }

    #[test]
    fn disconnected_pair_infinite() {
        use ft_topo::{DeviceKind, NetworkBuilder};
        let mut b = NetworkBuilder::new("x");
        let sw0 = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        let sw1 = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        let s0 = b.add_server(None);
        let s1 = b.add_server(None);
        b.add_link(s0, sw0).unwrap();
        b.add_link(s1, sw1).unwrap();
        let n = b.build().unwrap();
        assert!(average_server_path_length(&n).is_infinite());
    }
}
