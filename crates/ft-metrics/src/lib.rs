//! The paper's two evaluation metrics (§3.1) and reporting helpers.
//!
//! * [`path_length`] — average path length in hops between server pairs,
//!   network-wide (Figure 5) or restricted to intra-Pod pairs (Figure 6).
//!   Converter switches are physical-layer and contribute no hops, so the
//!   metric is exact BFS distance on the logical switch graph plus the two
//!   server–switch hops.
//! * [`throughput`](mod@throughput) — maximum concurrent flow λ for a server-level traffic
//!   matrix (Figures 7 and 8): demands are aggregated to attachment
//!   switches (server links are uncapacitated, per the paper's relaxation),
//!   switch–switch links get unit capacity per direction, and the rate is
//!   solved exactly (small instances) or with the FPTAS.
//! * [`bisection`] — bisection-bandwidth estimates (an extension: the
//!   classic worst-case capacity summary from the random-graph literature).
//! * [`report`] — fixed-width tables and named series for the experiment
//!   binaries, matching the rows/curves the paper plots.

// Unit tests are exempt from the panic-free policy (see DESIGN.md,
// "Static analysis & error-handling policy").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisection;
pub mod path_length;
pub mod report;
pub mod throughput;

pub use bisection::{pod_bisection_bandwidth, random_bisection_bandwidth};
pub use path_length::{
    average_intra_pod_path_length, average_intra_pod_path_length_with, average_server_path_length,
    average_server_path_length_with, path_length_histogram, SwitchDistances,
};
pub use report::{budget_warning, Series, Table};
pub use throughput::{
    throughput, throughput_all_to_all, throughput_on_commodities_with, SolverKind,
    ThroughputOptions, ThroughputResult,
};
