//! Traffic patterns and workload placement from the paper's evaluation
//! (§3.1, §3.3).
//!
//! Measurement studies the paper cites (DCTCP, Kandula et al., Bodík et
//! al.) identify two pervasive data center traffic patterns, both of which
//! this crate generates:
//!
//! * **broadcast/incast at hot spots** — clusters of ~1000 servers with one
//!   random hot-spot server that sends to and receives from every other
//!   member ([`TrafficPattern::HotSpot`]);
//! * **all-to-all in small clusters** — ~20-server clusters with uniform
//!   all-to-all demands ([`TrafficPattern::AllToAll`]).
//!
//! Placement locality (§3.1): workloads are placed *continuously across
//! servers* ([`Locality::Strong`]), *randomly within Pods* — the worst-case
//! fragmentation simulation ([`Locality::Weak`]), or *randomly across the
//! entire network* ([`Locality::None`]).
//!
//! The output is a server-level [`TrafficMatrix`]; `ft-metrics` aggregates
//! it to switch-level commodities (dropping same-switch pairs, per the
//! paper's relaxation of server bandwidth) before handing it to `ft-mcf`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;

use ft_graph::NodeId;
use ft_topo::Network;
use rand::prelude::*;

/// How clusters are placed onto servers (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum Locality {
    /// Clusters packed continuously across server ids ("locality").
    Strong,
    /// Clusters packed randomly within Pods as long as servers remain — the
    /// paper's worst-case simulation of resource fragmentation
    /// ("weak locality").
    Weak,
    /// Clusters placed uniformly at random across the network
    /// ("no locality").
    None,
}

/// The two pervasive data center traffic patterns (§3.1), plus the
/// classic permutation benchmark from the topology literature.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum TrafficPattern {
    /// One random hot spot per cluster broadcasts to and receives from all
    /// other members (demand 1 per direction per pair).
    HotSpot,
    /// Every ordered pair within a cluster exchanges demand 1.
    AllToAll,
    /// A uniform random permutation within each cluster: every server
    /// sends demand 1 to exactly one other member and receives from
    /// exactly one (derangement-style; the Jellyfish evaluation's standard
    /// workload — an extension beyond the paper's two patterns).
    Permutation,
}

/// A service cluster: the servers co-scheduled into one workload.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Member servers.
    pub servers: Vec<NodeId>,
}

/// A server-level traffic matrix: `(src, dst, demand)` triples.
#[derive(Clone, Debug, Default)]
pub struct TrafficMatrix {
    /// The demands. Src and dst are server node ids of the originating
    /// network, always distinct.
    pub demands: Vec<(NodeId, NodeId, f64)>,
}

impl TrafficMatrix {
    /// Total demand volume.
    pub fn total_demand(&self) -> f64 {
        self.demands.iter().map(|d| d.2).sum()
    }

    /// Number of individual flows.
    pub fn flow_count(&self) -> usize {
        self.demands.len()
    }

    /// Converts to switch-level triples by replacing each server with its
    /// attachment switch. Same-switch pairs are *kept* here (index-level
    /// callers may care); `ft-mcf::aggregate_commodities` drops them.
    pub fn switch_triples(&self, net: &Network) -> Vec<(usize, usize, f64)> {
        self.demands
            .iter()
            .map(|&(s, t, d)| (net.attachment(s).index(), net.attachment(t).index(), d))
            .collect()
    }

    /// Merges another matrix into this one (used by hybrid-mode zones).
    pub fn extend(&mut self, other: &TrafficMatrix) {
        self.demands.extend_from_slice(&other.demands);
    }
}

/// A full workload specification.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSpec {
    /// Traffic pattern within each cluster.
    pub pattern: TrafficPattern,
    /// Servers per cluster. Clamped to the available server count; the
    /// paper uses 1000 for hot-spot and 20 for all-to-all workloads.
    pub cluster_size: usize,
    /// Placement locality.
    pub locality: Locality,
}

impl WorkloadSpec {
    /// The paper's broadcast/incast workload (§3.3): 1000-server clusters.
    pub fn hotspot(locality: Locality) -> Self {
        WorkloadSpec {
            pattern: TrafficPattern::HotSpot,
            cluster_size: 1000,
            locality,
        }
    }

    /// The paper's all-to-all workload (§3.3): 20-server clusters.
    pub fn all_to_all(locality: Locality) -> Self {
        WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 20,
            locality,
        }
    }
}

/// Partitions the given servers into clusters according to the locality.
///
/// Every server joins at most one cluster (paper: "each server being
/// involved in a single cluster"); servers beyond the last full cluster
/// stay idle. A cluster size larger than the server count is clamped so at
/// least one cluster forms.
pub fn place_clusters(
    net: &Network,
    servers: &[NodeId],
    cluster_size: usize,
    locality: Locality,
    rng: &mut StdRng,
) -> Vec<Cluster> {
    assert!(cluster_size > 0, "cluster size must be positive");
    let size = cluster_size.min(servers.len());
    if size == 0 {
        return Vec::new();
    }
    let count = servers.len() / size;
    match locality {
        Locality::Strong => {
            let mut sorted = servers.to_vec();
            sorted.sort();
            sorted
                .chunks_exact(size)
                .take(count)
                .map(|c| Cluster {
                    servers: c.to_vec(),
                })
                .collect()
        }
        Locality::None => {
            let mut shuffled = servers.to_vec();
            shuffled.shuffle(rng);
            shuffled
                .chunks_exact(size)
                .take(count)
                .map(|c| Cluster {
                    servers: c.to_vec(),
                })
                .collect()
        }
        Locality::Weak => place_weak(net, servers, size, count, rng),
    }
}

/// Weak locality: clusters are filled from randomly chosen Pods, each Pod
/// contributing random free servers, spilling into further random Pods only
/// when the current one runs out ("packed randomly in Pods as long as there
/// are remaining servers", §3.3). Networks without Pod annotations (e.g.
/// Jellyfish) are treated as a single Pod, which degenerates to
/// [`Locality::None`] — matching the paper's observation that random graphs
/// are insensitive to placement.
fn place_weak(
    net: &Network,
    servers: &[NodeId],
    size: usize,
    count: usize,
    rng: &mut StdRng,
) -> Vec<Cluster> {
    use std::collections::BTreeMap;
    // free servers per pod (BTreeMap for deterministic iteration order)
    let mut pods: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
    for &s in servers {
        pods.entry(net.pod(s).unwrap_or(0)).or_default().push(s);
    }
    for list in pods.values_mut() {
        list.sort();
        list.shuffle(rng);
    }
    let mut clusters = Vec::with_capacity(count);
    for _ in 0..count {
        let mut members = Vec::with_capacity(size);
        while members.len() < size {
            let nonempty: Vec<u32> = pods
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(&p, _)| p)
                .collect();
            let Some(&pod) = nonempty.choose(rng) else {
                break;
            };
            let list = pods.get_mut(&pod).unwrap();
            while members.len() < size {
                match list.pop() {
                    Some(s) => members.push(s),
                    None => break,
                }
            }
        }
        if members.len() == size {
            clusters.push(Cluster { servers: members });
        }
    }
    clusters
}

/// Generates the traffic matrix for a set of clusters.
pub fn cluster_traffic(
    clusters: &[Cluster],
    pattern: TrafficPattern,
    rng: &mut StdRng,
) -> TrafficMatrix {
    let mut demands = Vec::new();
    for cluster in clusters {
        match pattern {
            TrafficPattern::HotSpot => {
                if cluster.servers.len() < 2 {
                    continue;
                }
                let hot = *cluster.servers.choose(rng).unwrap();
                for &s in &cluster.servers {
                    if s != hot {
                        demands.push((hot, s, 1.0)); // broadcast
                        demands.push((s, hot, 1.0)); // incast
                    }
                }
            }
            TrafficPattern::AllToAll => {
                for &a in &cluster.servers {
                    for &b in &cluster.servers {
                        if a != b {
                            demands.push((a, b, 1.0));
                        }
                    }
                }
            }
            TrafficPattern::Permutation => {
                let n = cluster.servers.len();
                if n < 2 {
                    continue;
                }
                // rotate a shuffled order by one: a fixed-point-free
                // mapping (cyclic derangement)
                let mut order = cluster.servers.clone();
                order.shuffle(rng);
                for i in 0..n {
                    demands.push((order[i], order[(i + 1) % n], 1.0));
                }
            }
        }
    }
    TrafficMatrix { demands }
}

/// End-to-end generation: place clusters over *all* servers of the network
/// and emit the traffic matrix. Deterministic for a given seed.
pub fn generate(net: &Network, spec: &WorkloadSpec, seed: u64) -> TrafficMatrix {
    let servers: Vec<NodeId> = net.servers().collect();
    generate_on(net, &servers, spec, seed)
}

/// Like [`generate`], but restricted to the given servers — used by hybrid
/// mode, where each zone's workload is placed only on that zone's servers.
pub fn generate_on(
    net: &Network,
    servers: &[NodeId],
    spec: &WorkloadSpec,
    seed: u64,
) -> TrafficMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = place_clusters(net, servers, spec.cluster_size, spec.locality, &mut rng);
    cluster_traffic(&clusters, spec.pattern, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_topo::fat_tree;

    fn net() -> Network {
        fat_tree(4).unwrap() // 16 servers, 4 pods
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn strong_placement_contiguous() {
        let n = net();
        let servers: Vec<NodeId> = n.servers().collect();
        let cs = place_clusters(&n, &servers, 4, Locality::Strong, &mut rng());
        assert_eq!(cs.len(), 4);
        for (i, c) in cs.iter().enumerate() {
            assert_eq!(c.servers.len(), 4);
            // contiguous ids
            for (off, s) in c.servers.iter().enumerate() {
                assert_eq!(s.index(), servers[0].index() + i * 4 + off);
            }
        }
    }

    #[test]
    fn none_placement_partitions() {
        let n = net();
        let servers: Vec<NodeId> = n.servers().collect();
        let cs = place_clusters(&n, &servers, 4, Locality::None, &mut rng());
        assert_eq!(cs.len(), 4);
        let mut all: Vec<NodeId> = cs.iter().flat_map(|c| c.servers.clone()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 16, "no server reused");
    }

    #[test]
    fn weak_placement_prefers_single_pod() {
        let n = net();
        let servers: Vec<NodeId> = n.servers().collect();
        // each pod has 4 servers; clusters of 4 must each fit one pod
        let cs = place_clusters(&n, &servers, 4, Locality::Weak, &mut rng());
        assert_eq!(cs.len(), 4);
        for c in &cs {
            let pods: std::collections::HashSet<_> = c.servers.iter().map(|&s| n.pod(s)).collect();
            assert_eq!(pods.len(), 1, "cluster spilled unnecessarily: {c:?}");
        }
    }

    #[test]
    fn weak_placement_spills_when_needed() {
        let n = net();
        let servers: Vec<NodeId> = n.servers().collect();
        // clusters of 6 > pod size 4 must span ≥ 2 pods
        let cs = place_clusters(&n, &servers, 6, Locality::Weak, &mut rng());
        assert_eq!(cs.len(), 2);
        for c in &cs {
            assert_eq!(c.servers.len(), 6);
        }
    }

    #[test]
    fn oversized_cluster_clamped() {
        let n = net();
        let servers: Vec<NodeId> = n.servers().collect();
        let cs = place_clusters(&n, &servers, 1000, Locality::Strong, &mut rng());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].servers.len(), 16);
    }

    #[test]
    fn hotspot_traffic_shape() {
        let n = net();
        let tm = generate(&n, &WorkloadSpec::hotspot(Locality::Strong), 1);
        // one cluster of 16 (clamped) → 15 pairs × 2 directions
        assert_eq!(tm.flow_count(), 30);
        assert_eq!(tm.total_demand(), 30.0);
        // exactly one hot spot: one server appears in every flow
        let mut counts = std::collections::HashMap::new();
        for &(a, b, _) in &tm.demands {
            *counts.entry(a).or_insert(0) += 1;
            *counts.entry(b).or_insert(0) += 1;
        }
        let max = counts.values().max().unwrap();
        assert_eq!(*max, 30, "hot spot participates in every flow");
    }

    #[test]
    fn all_to_all_traffic_shape() {
        let n = net();
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 4,
            locality: Locality::Strong,
        };
        let tm = generate(&n, &spec, 1);
        // 4 clusters × 4·3 ordered pairs
        assert_eq!(tm.flow_count(), 48);
    }

    #[test]
    fn permutation_is_derangement() {
        let n = net();
        let spec = WorkloadSpec {
            pattern: TrafficPattern::Permutation,
            cluster_size: 8,
            locality: Locality::None,
        };
        let tm = generate(&n, &spec, 4);
        // 2 clusters × 8 flows; each server sends once and receives once,
        // never to itself
        assert_eq!(tm.flow_count(), 16);
        let mut sends = std::collections::HashMap::new();
        let mut recvs = std::collections::HashMap::new();
        for &(a, b, d) in &tm.demands {
            assert_ne!(a, b, "permutation must be fixed-point free");
            assert_eq!(d, 1.0);
            *sends.entry(a).or_insert(0) += 1;
            *recvs.entry(b).or_insert(0) += 1;
        }
        assert!(sends.values().all(|&c| c == 1));
        assert!(recvs.values().all(|&c| c == 1));
    }

    #[test]
    fn permutation_tiny_cluster_empty() {
        let n = net();
        let spec = WorkloadSpec {
            pattern: TrafficPattern::Permutation,
            cluster_size: 1,
            locality: Locality::Strong,
        };
        let tm = generate(&n, &spec, 1);
        assert_eq!(tm.flow_count(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let n = net();
        let spec = WorkloadSpec::all_to_all(Locality::None);
        let a = generate(&n, &spec, 5);
        let b = generate(&n, &spec, 5);
        assert_eq!(a.demands, b.demands);
        let c = generate(&n, &spec, 6);
        assert_ne!(a.demands, c.demands);
    }

    #[test]
    fn switch_triples_use_attachments() {
        let n = net();
        let tm = generate(&n, &WorkloadSpec::all_to_all(Locality::Strong), 1);
        for (s, t, d) in tm.switch_triples(&n) {
            assert!(s < n.num_switches());
            assert!(t < n.num_switches());
            assert_eq!(d, 1.0);
        }
    }

    #[test]
    fn generate_on_subset() {
        let n = net();
        let subset: Vec<NodeId> = n.servers().take(8).collect();
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 4,
            locality: Locality::Strong,
        };
        let tm = generate_on(&n, &subset, &spec, 3);
        for &(a, b, _) in &tm.demands {
            assert!(subset.contains(&a) && subset.contains(&b));
        }
    }

    #[test]
    fn matrix_extend() {
        let mut a = TrafficMatrix {
            demands: vec![(NodeId(30), NodeId(31), 1.0)],
        };
        let b = TrafficMatrix {
            demands: vec![(NodeId(32), NodeId(33), 2.0)],
        };
        a.extend(&b);
        assert_eq!(a.flow_count(), 2);
        assert_eq!(a.total_demand(), 3.0);
    }
}
