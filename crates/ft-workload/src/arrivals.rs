//! Seeded arrival-time generators for flow-level simulation.
//!
//! The FCT-vs-load methodology (Jellyfish, DCTCP) replays a demand matrix
//! as repeated flow arrivals whose inter-arrival gaps are exponential —
//! a Poisson process per demand pair. The sampling lives here, next to
//! the traffic patterns, so every simulator frontend (the legacy batch
//! simulator and the ft-des event engine) draws the *same* arrival
//! schedule from the same seed.

use rand::prelude::*;

/// Cumulative arrival times of a Poisson process: `rounds` samples whose
/// gaps are exponential with mean `1/rate`, drawn from `rng` by inverse
/// transform. Strictly increasing, deterministic for a given rng state.
pub fn exponential_starts(rng: &mut StdRng, rate: f64, rounds: usize) -> Vec<f64> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut out = Vec::with_capacity(rounds);
    let mut t = 0.0;
    for _ in 0..rounds {
        // inverse-transform exponential sample; clamp u away from 0 so
        // ln never sees it
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -u.ln() / rate;
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_strictly_increase() {
        let mut rng = StdRng::seed_from_u64(9);
        let starts = exponential_starts(&mut rng, 2.0, 50);
        assert_eq!(starts.len(), 50);
        assert!(starts[0] > 0.0);
        for w in starts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = exponential_starts(&mut StdRng::seed_from_u64(3), 1.0, 16);
        let b = exponential_starts(&mut StdRng::seed_from_u64(3), 1.0, 16);
        assert_eq!(a, b);
        let c = exponential_starts(&mut StdRng::seed_from_u64(4), 1.0, 16);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_gap_tracks_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 4000;
        let starts = exponential_starts(&mut rng, 4.0, n);
        let mean_gap = starts[n - 1] / n as f64;
        assert!(
            (mean_gap - 0.25).abs() < 0.02,
            "mean gap {mean_gap} far from 1/rate"
        );
    }

    #[test]
    fn zero_rounds_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(exponential_starts(&mut rng, 1.0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_rate_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = exponential_starts(&mut rng, 0.0, 4);
    }
}
