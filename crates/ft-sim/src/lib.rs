//! Flow-level network simulator — an extension beyond the paper's
//! LP-based evaluation.
//!
//! The paper measures *optimal-routing* throughput (maximum concurrent
//! flow). A downstream adopter also wants to know what a real dataplane
//! with hashed path selection and TCP-like fair sharing would deliver, and
//! how the network behaves under link failures. This crate simulates
//! exactly that:
//!
//! * flows are routed once (ECMP or k-shortest-paths, per the active mode's
//!   routing from `ft-control`) with deterministic per-flow hashing;
//! * link bandwidth is shared **max-min fairly** among the flows crossing
//!   each directed link (the classic fluid approximation of per-flow
//!   fairness, computed by progressive filling);
//! * the event loop advances from flow completion to flow completion,
//!   recording flow completion times;
//! * scheduled link failures/repairs re-route affected flows mid-run —
//!   modeling the paper's §5 "self-recovery of the topology from failures"
//!   direction;
//! * the [`des`] module rebuilds the simulator on the `ft-des`
//!   discrete-event engine and adds **live zone conversion**: a
//!   `ft-control` reconfiguration plan applied mid-run with modeled
//!   converter latency (drained links, re-routed and re-rated flows).
//!
//! Determinism: identical inputs (network, flows, events) produce identical
//! schedules; there is no hidden RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod flows;
pub mod ratealloc;
pub mod simulator;

pub use des::{ConversionEvent, DesError, DesFlowRecord, DesReport, DesSimulator, TopoEvent};
pub use flows::{flows_from_matrix, flows_with_arrivals};
pub use ratealloc::{max_min_rates, DirectedLink};
pub use simulator::{FlowRecord, FlowSpec, NetworkEvent, RouterPolicy, SimReport, Simulator};
