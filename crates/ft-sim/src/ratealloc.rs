//! Max-min fair rate allocation by progressive filling.
//!
//! Given a set of flows, each pinned to a directed path over network links,
//! and unit capacity per link *direction* (full-duplex links, matching the
//! paper's throughput model), progressive filling raises every flow's rate
//! uniformly, freezes the flows crossing the first saturating link at their
//! fair share, removes that capacity, and repeats — the textbook max-min
//! allocation that per-flow-fair transport (TCP-ish) approximates.

use ft_graph::EdgeId;
use std::collections::BTreeMap;

/// A directed traversal of an undirected link: the edge id plus the
/// direction (`forward` = from the lower node id to the higher).
///
/// Ordered so link maps can be `BTreeMap`s: the progressive-filling loop
/// breaks fair-share ties by iteration order, and that order must not
/// depend on a hash seed (bit-identical rates across runs and
/// `FT_THREADS`, DESIGN.md §10).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DirectedLink {
    /// Underlying undirected edge.
    pub edge: EdgeId,
    /// Traversal direction.
    pub forward: bool,
}

/// Computes max-min fair rates.
///
/// `paths[f]` is the directed-link list of flow `f` (empty = same-switch
/// flow, which gets `f64::INFINITY`). `capacity` is per link direction.
/// Returns one rate per flow.
pub fn max_min_rates(paths: &[Vec<DirectedLink>], capacity: f64) -> Vec<f64> {
    assert!(capacity > 0.0, "capacity must be positive");
    let n = paths.len();
    let mut rate = vec![f64::INFINITY; n];

    // Link occupancy: flows crossing each directed link. BTreeMaps keep
    // the bottleneck scan's tie-break independent of any hash seed.
    let mut link_flows: BTreeMap<DirectedLink, Vec<usize>> = BTreeMap::new();
    for (f, path) in paths.iter().enumerate() {
        for &dl in path {
            link_flows.entry(dl).or_default().push(f);
        }
    }
    let mut remaining_cap: BTreeMap<DirectedLink, f64> =
        link_flows.keys().map(|&l| (l, capacity)).collect();
    let mut frozen = vec![false; n];
    let mut active_on_link: BTreeMap<DirectedLink, usize> =
        link_flows.iter().map(|(&l, fs)| (l, fs.len())).collect();

    loop {
        // Find the bottleneck: the link with the smallest fair share among
        // links still carrying unfrozen flows.
        let mut bottleneck: Option<(DirectedLink, f64)> = None;
        for (&l, &cnt) in &active_on_link {
            if cnt == 0 {
                continue;
            }
            let share = remaining_cap[&l] / cnt as f64;
            if bottleneck.is_none_or(|(_, s)| share < s) {
                bottleneck = Some((l, share));
            }
        }
        let Some((link, share)) = bottleneck else {
            break; // all flows frozen (or only same-switch flows remain)
        };
        // Freeze every unfrozen flow on the bottleneck at `share`, and
        // charge that rate to every other link those flows cross.
        let flows: Vec<usize> = link_flows[&link]
            .iter()
            .copied()
            .filter(|&f| !frozen[f])
            .collect();
        for f in flows {
            frozen[f] = true;
            rate[f] = share;
            for &dl in &paths[f] {
                if let Some(cap) = remaining_cap.get_mut(&dl) {
                    *cap = (*cap - share).max(0.0);
                }
                if let Some(cnt) = active_on_link.get_mut(&dl) {
                    *cnt -= 1;
                }
            }
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn dl(e: u32, forward: bool) -> DirectedLink {
        DirectedLink {
            edge: EdgeId(e),
            forward,
        }
    }

    #[test]
    fn single_flow_full_capacity() {
        let rates = max_min_rates(&[vec![dl(0, true)]], 1.0);
        assert_eq!(rates, vec![1.0]);
    }

    #[test]
    fn two_flows_share_bottleneck() {
        let rates = max_min_rates(&[vec![dl(0, true)], vec![dl(0, true)]], 1.0);
        assert_eq!(rates, vec![0.5, 0.5]);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let rates = max_min_rates(&[vec![dl(0, true)], vec![dl(0, false)]], 1.0);
        assert_eq!(rates, vec![1.0, 1.0]);
    }

    #[test]
    fn classic_max_min_example() {
        // three links A, B, C; flows: f0 over A+B, f1 over B, f2 over C.
        // B is the bottleneck for f0, f1 → 0.5 each; f2 gets all of C → 1.
        let rates = max_min_rates(
            &[
                vec![dl(0, true), dl(1, true)],
                vec![dl(1, true)],
                vec![dl(2, true)],
            ],
            1.0,
        );
        assert_eq!(rates, vec![0.5, 0.5, 1.0]);
    }

    #[test]
    fn freed_capacity_goes_to_survivors() {
        // f0 over A+B, f1 over A only, f2 over B only.
        // A: f0,f1; B: f0,f2 — both links fair share 0.5 → f0 frozen 0.5,
        // then f1 and f2 each get the remaining 0.5 of their links… wait:
        // after freezing all three at the simultaneous bottleneck 0.5, all
        // rates are 0.5? No: f1 only crosses A. After f0 frozen at 0.5, A
        // has 0.5 left for f1 alone → f1 = 0.5? A initially carries f0 and
        // f1 (share 0.5). Both A and B saturate simultaneously → everyone
        // 0.5. Max-min indeed gives (0.5, 0.5, 0.5).
        let rates = max_min_rates(
            &[
                vec![dl(0, true), dl(1, true)],
                vec![dl(0, true)],
                vec![dl(1, true)],
            ],
            1.0,
        );
        assert_eq!(rates, vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn unequal_bottlenecks() {
        // f0 shares link0 with f1 and f2 (3 flows → 1/3 each); f3 alone on
        // link1 gets 1.0.
        let rates = max_min_rates(
            &[
                vec![dl(0, true)],
                vec![dl(0, true)],
                vec![dl(0, true)],
                vec![dl(1, true)],
            ],
            1.0,
        );
        for r in &rates[..3] {
            assert!((r - 1.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(rates[3], 1.0);
    }

    #[test]
    fn long_flow_vs_short_flows() {
        // f0 crosses links 0 and 1; f1 on link 0; f2 on link 1.
        // plus f3 also on link 0. Link0: f0,f1,f3 (share 1/3), link1:
        // f0,f2 (share 1/2). Bottleneck link0 freezes f0,f1,f3 at 1/3;
        // link1 then has 2/3 left for f2 → 2/3.
        let rates = max_min_rates(
            &[
                vec![dl(0, true), dl(1, true)],
                vec![dl(0, true)],
                vec![dl(1, true)],
                vec![dl(0, true)],
            ],
            1.0,
        );
        assert!((rates[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((rates[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((rates[2] - 2.0 / 3.0).abs() < 1e-12);
        assert!((rates[3] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_path_infinite_rate() {
        let rates = max_min_rates(&[vec![], vec![dl(0, true)]], 1.0);
        assert!(rates[0].is_infinite());
        assert_eq!(rates[1], 1.0);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_rates(&[], 1.0).is_empty());
    }

    #[test]
    fn all_paths_empty() {
        // A workload of pure same-switch flows never touches a link: every
        // flow is unconstrained and the filling loop must still terminate.
        let rates = max_min_rates(&[vec![], vec![], vec![]], 1.0);
        assert_eq!(rates.len(), 3);
        assert!(rates.iter().all(|r| r.is_infinite()));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = max_min_rates(&[vec![dl(0, true)]], 0.0);
    }

    #[test]
    fn single_saturated_link_shared_by_all_flows() {
        // Every flow crosses the same directed link: one progressive-filling
        // round freezes all of them at exactly 1/n, the link ends exactly
        // full, and no flow is starved or favored.
        let n = 7;
        let paths: Vec<Vec<DirectedLink>> = (0..n).map(|_| vec![dl(0, true)]).collect();
        let rates = max_min_rates(&paths, 1.0);
        assert_eq!(rates.len(), n);
        for r in &rates {
            assert!((r - 1.0 / n as f64).abs() < 1e-12, "unfair share {r}");
        }
        let total: f64 = rates.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-12,
            "link not exactly saturated: {total}"
        );
    }

    #[test]
    fn capacity_scales_rates() {
        let rates = max_min_rates(&[vec![dl(0, true)], vec![dl(0, true)]], 10.0);
        assert_eq!(rates, vec![5.0, 5.0]);
    }

    #[test]
    fn total_on_each_link_within_capacity() {
        // randomized-ish structural check with overlapping paths
        let paths: Vec<Vec<DirectedLink>> = vec![
            vec![dl(0, true), dl(1, true), dl(2, true)],
            vec![dl(0, true), dl(2, false)],
            vec![dl(1, true)],
            vec![dl(2, true), dl(1, false)],
            vec![dl(0, true)],
        ];
        let rates = max_min_rates(&paths, 1.0);
        let mut load: HashMap<DirectedLink, f64> = HashMap::new();
        for (f, p) in paths.iter().enumerate() {
            for &l in p {
                *load.entry(l).or_insert(0.0) += rates[f];
            }
        }
        for (&l, &total) in &load {
            assert!(total <= 1.0 + 1e-9, "link {l:?} overloaded: {total}");
        }
        // and every flow has a bottleneck: some link on its path is full
        for (f, p) in paths.iter().enumerate() {
            let bottlenecked = p.iter().any(|l| load[l] > 1.0 - 1e-9);
            assert!(bottlenecked, "flow {f} rate {} not maximal", rates[f]);
        }
    }
}
