//! The flow-level event simulator.
//!
//! Time advances from event to event: the next flow completion, flow
//! arrival, or scheduled link failure/repair. Between events, rates are the
//! max-min fair allocation of [`crate::ratealloc`] over each flow's pinned
//! path. Failures re-route the affected flows (and only those — matching
//! how an SDN controller patches forwarding state) and trigger a re-
//! allocation.

use crate::ratealloc::{max_min_rates, DirectedLink};
use ft_control::routing::{EcmpRoutes, KspRoutes, ServerPath};
use ft_graph::{EdgeId, NodeId};
use ft_topo::Network;

/// Which routing discipline the simulator uses (mirrors `ft-control`'s
/// per-mode choice: ECMP for Clos, KSP for random-graph modes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Hash over equal-cost shortest paths.
    Ecmp,
    /// Hash over the k shortest loopless paths.
    Ksp(usize),
}

/// A flow to simulate.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Source server node.
    pub src: NodeId,
    /// Destination server node.
    pub dst: NodeId,
    /// Volume to transfer (in capacity·time units).
    pub size: f64,
    /// Arrival time.
    pub start: f64,
}

/// A scheduled topology event.
#[derive(Clone, Copy, Debug)]
pub enum NetworkEvent {
    /// Link goes down at the given time.
    LinkDown(f64, EdgeId),
    /// Link comes back at the given time.
    LinkUp(f64, EdgeId),
}

impl NetworkEvent {
    fn time(&self) -> f64 {
        match *self {
            NetworkEvent::LinkDown(t, _) | NetworkEvent::LinkUp(t, _) => t,
        }
    }
}

/// Per-flow outcome.
#[derive(Clone, Debug)]
pub struct FlowRecord {
    /// Index into the submitted flow list.
    pub flow: usize,
    /// Completion time (absolute), or `None` if unfinished at the horizon.
    pub completion: Option<f64>,
    /// Times the flow was re-routed by failures/repairs.
    pub reroutes: usize,
}

/// Simulation output.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-flow outcomes, index-aligned with the submitted flows.
    pub flows: Vec<FlowRecord>,
    /// Time of the last completion (or last event processed).
    pub makespan: f64,
    /// Total re-allocations performed (telemetry).
    pub reallocations: usize,
}

impl SimReport {
    /// Mean flow completion time over finished flows (ignoring arrivals);
    /// `NaN` when nothing finished.
    pub fn mean_fct(&self, specs: &[FlowSpec]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in &self.flows {
            if let Some(c) = r.completion {
                sum += c - specs[r.flow].start;
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Number of unfinished flows.
    pub fn unfinished(&self) -> usize {
        self.flows.iter().filter(|r| r.completion.is_none()).count()
    }
}

struct ActiveFlow {
    idx: usize,
    remaining: f64,
    path: Option<Vec<DirectedLink>>, // None = currently unroutable
    hash: u64,
    src_sw: NodeId,
    dst_sw: NodeId,
    reroutes: usize,
}

/// The simulator. Owns a mutable copy of the network (failures edit the
/// graph) and re-derives routing state as the topology changes.
pub struct Simulator {
    net: Network,
    policy: RouterPolicy,
    capacity: f64,
}

enum Router {
    Ecmp(EcmpRoutes),
    Ksp(KspRoutes),
}

impl Router {
    fn build(net: &Network, policy: RouterPolicy) -> Router {
        match policy {
            RouterPolicy::Ecmp => Router::Ecmp(EcmpRoutes::compute(net)),
            RouterPolicy::Ksp(k) => Router::Ksp(KspRoutes::new(net, k)),
        }
    }

    /// Refreshes routing after topology events. Pure link *removals* under
    /// ECMP use the incremental repair (only affected destinations are
    /// recomputed); restorations and KSP caches rebuild from scratch.
    fn refresh(
        self,
        net: &Network,
        policy: RouterPolicy,
        removed: &[ft_graph::EdgeId],
        any_restored: bool,
    ) -> Router {
        match (self, any_restored) {
            (Router::Ecmp(mut routes), false) => {
                routes.repair(&net.switch_graph(), removed);
                Router::Ecmp(routes)
            }
            _ => Router::build(net, policy),
        }
    }

    fn route(&self, src: NodeId, dst: NodeId, hash: u64) -> Option<ServerPath> {
        match self {
            Router::Ecmp(r) => r.path(src, dst, hash),
            Router::Ksp(r) => r.path(src, dst, hash),
        }
    }
}

impl Simulator {
    /// Creates a simulator over (a clone of) the network with unit
    /// capacity per link direction.
    pub fn new(net: &Network, policy: RouterPolicy) -> Self {
        Simulator {
            net: net.clone(),
            policy,
            capacity: 1.0,
        }
    }

    /// Overrides the per-direction link capacity.
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        assert!(capacity > 0.0);
        self.capacity = capacity;
        self
    }

    /// Runs the simulation until all flows finish, all events are
    /// processed and no progress is possible, or `horizon` is reached.
    pub fn run(&mut self, specs: &[FlowSpec], events: &[NetworkEvent], horizon: f64) -> SimReport {
        // total_cmp keeps the sort total (and panic-free) even if a NaN
        // timestamp sneaks in; the ft-des frontend rejects NaN outright.
        let mut events: Vec<NetworkEvent> = events.to_vec();
        events.sort_by(|a, b| a.time().total_cmp(&b.time()));
        let mut next_event = 0usize;

        let mut arrivals: Vec<usize> = (0..specs.len()).collect();
        arrivals.sort_by(|&a, &b| specs[a].start.total_cmp(&specs[b].start));
        let mut next_arrival = 0usize;

        let mut router = Router::build(&self.net, self.policy);
        let mut active: Vec<ActiveFlow> = Vec::new();
        let mut records: Vec<FlowRecord> = (0..specs.len())
            .map(|flow| FlowRecord {
                flow,
                completion: None,
                reroutes: 0,
            })
            .collect();
        let mut now = 0.0f64;
        let mut reallocations = 0usize;

        loop {
            // Admit arrivals at the current time.
            while next_arrival < arrivals.len() && specs[arrivals[next_arrival]].start <= now {
                let idx = arrivals[next_arrival];
                next_arrival += 1;
                let s = &specs[idx];
                let (src_sw, dst_sw) = (self.net.attachment(s.src), self.net.attachment(s.dst));
                let hash = (idx as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03;
                let path = route_links(&router, src_sw, dst_sw, hash);
                active.push(ActiveFlow {
                    idx,
                    remaining: s.size,
                    path,
                    hash,
                    src_sw,
                    dst_sw,
                    reroutes: 0,
                });
            }

            // Allocate rates.
            reallocations += 1;
            let paths: Vec<Vec<DirectedLink>> = active
                .iter()
                .map(|f| f.path.clone().unwrap_or_default())
                .collect();
            let mut rates = max_min_rates(&paths, self.capacity);
            for (f, r) in active.iter().zip(rates.iter_mut()) {
                if f.path.is_none() {
                    *r = 0.0; // unroutable, parked
                }
            }

            // Same-switch (empty-path, routable) flows finish instantly.
            let mut finished_now = Vec::new();
            for (i, f) in active.iter().enumerate() {
                if f.path.as_deref() == Some(&[]) {
                    finished_now.push(i);
                }
            }
            if !finished_now.is_empty() {
                for &i in finished_now.iter().rev() {
                    let f = active.swap_remove(i);
                    records[f.idx].completion = Some(now);
                    records[f.idx].reroutes = f.reroutes;
                }
                continue;
            }

            // Next transition: completion, arrival or event.
            let t_complete = active
                .iter()
                .zip(&rates)
                .filter(|(_, &r)| r > 0.0)
                .map(|(f, &r)| f.remaining / r)
                .fold(f64::INFINITY, f64::min);
            let t_arrival = arrivals
                .get(next_arrival)
                .map(|&i| specs[i].start - now)
                .unwrap_or(f64::INFINITY);
            let t_event = events
                .get(next_event)
                .map(|e| e.time() - now)
                .unwrap_or(f64::INFINITY);
            let dt = t_complete.min(t_arrival).min(t_event);

            if !dt.is_finite() {
                break; // no progress possible: remaining flows are stuck
            }
            if now + dt > horizon {
                now = horizon;
                break;
            }
            now += dt;

            // Progress transfers.
            for (f, &r) in active.iter_mut().zip(&rates) {
                if r > 0.0 && r.is_finite() {
                    f.remaining -= r * dt;
                }
            }
            // Harvest completions.
            let mut i = 0;
            while i < active.len() {
                if active[i].remaining <= 1e-9 {
                    let f = active.swap_remove(i);
                    records[f.idx].completion = Some(now);
                    records[f.idx].reroutes = f.reroutes;
                } else {
                    i += 1;
                }
            }
            // Apply due events.
            let mut removed_now = Vec::new();
            let mut any_restored = false;
            while next_event < events.len() && events[next_event].time() <= now {
                match events[next_event] {
                    NetworkEvent::LinkDown(_, e) => {
                        self.net.graph_mut().remove_edge(e);
                        removed_now.push(e);
                    }
                    NetworkEvent::LinkUp(_, e) => {
                        self.net.graph_mut().restore_edge(e);
                        any_restored = true;
                    }
                }
                next_event += 1;
            }
            if !removed_now.is_empty() || any_restored {
                router = router.refresh(&self.net, self.policy, &removed_now, any_restored);
                for f in active.iter_mut() {
                    let still_valid = f
                        .path
                        .as_ref()
                        .is_some_and(|p| p.iter().all(|dl| self.net.graph().edge_alive(dl.edge)));
                    if !still_valid {
                        f.path = route_links(&router, f.src_sw, f.dst_sw, f.hash);
                        f.reroutes += 1;
                        records[f.idx].reroutes = f.reroutes;
                    }
                }
            }

            if active.is_empty() && next_arrival >= arrivals.len() && next_event >= events.len() {
                break;
            }
        }

        SimReport {
            flows: records,
            makespan: now,
            reallocations,
        }
    }
}

/// Routes and converts a switch-level path into directed links.
fn route_links(router: &Router, src: NodeId, dst: NodeId, hash: u64) -> Option<Vec<DirectedLink>> {
    if src == dst {
        return Some(Vec::new());
    }
    let path = router.route(src, dst, hash)?;
    let mut out = Vec::with_capacity(path.edges.len());
    for (i, &e) in path.edges.iter().enumerate() {
        let (a, b) = (path.switches[i], path.switches[i + 1]);
        out.push(DirectedLink {
            edge: e,
            forward: a.0 < b.0,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::{FlatTree, FlatTreeConfig, Mode};
    use ft_topo::fat_tree;

    fn k4() -> Network {
        fat_tree(4).unwrap()
    }

    fn server(net: &Network, i: usize) -> NodeId {
        net.servers().nth(i).unwrap()
    }

    #[test]
    fn single_flow_fct() {
        let net = k4();
        let mut sim = Simulator::new(&net, RouterPolicy::Ecmp);
        // inter-pod flow of size 2 at unit capacity → FCT 2
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 8),
            size: 2.0,
            start: 0.0,
        }];
        let rep = sim.run(&specs, &[], 1e9);
        assert_eq!(rep.flows[0].completion, Some(2.0));
        assert_eq!(rep.unfinished(), 0);
        assert!((rep.mean_fct(&specs) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn same_switch_flow_instant() {
        let net = k4();
        let mut sim = Simulator::new(&net, RouterPolicy::Ecmp);
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 1), // same edge switch in k=4
            size: 5.0,
            start: 3.0,
        }];
        let rep = sim.run(&specs, &[], 1e9);
        assert_eq!(rep.flows[0].completion, Some(3.0));
    }

    #[test]
    fn contending_flows_share() {
        let net = k4();
        let mut sim = Simulator::new(&net, RouterPolicy::Ecmp);
        // two flows from the same server's edge uplink... same src server
        // to two different pods: they share the single server NIC? No —
        // server links are not modeled; they share switch links only if
        // hashed onto the same path. Use two flows with identical endpoints
        // and same hash-bucket risk: instead test sharing via same switch
        // pair by using both servers of one edge to one destination edge.
        let s_edge0_a = server(&net, 0);
        let s_edge0_b = server(&net, 1);
        let dst_a = server(&net, 8);
        let dst_b = server(&net, 9);
        let specs = [
            FlowSpec {
                src: s_edge0_a,
                dst: dst_a,
                size: 1.0,
                start: 0.0,
            },
            FlowSpec {
                src: s_edge0_b,
                dst: dst_b,
                size: 1.0,
                start: 0.0,
            },
        ];
        let rep = sim.run(&specs, &[], 1e9);
        // regardless of hashing, both finish in [1, 2]
        for r in &rep.flows {
            let c = r.completion.unwrap();
            assert!((1.0..=2.0 + 1e-9).contains(&c), "completion {c}");
        }
    }

    #[test]
    fn staggered_arrivals() {
        let net = k4();
        let mut sim = Simulator::new(&net, RouterPolicy::Ecmp);
        let specs = [
            FlowSpec {
                src: server(&net, 0),
                dst: server(&net, 8),
                size: 1.0,
                start: 0.0,
            },
            FlowSpec {
                src: server(&net, 0),
                dst: server(&net, 8),
                size: 1.0,
                start: 10.0,
            },
        ];
        let rep = sim.run(&specs, &[], 1e9);
        assert_eq!(rep.flows[0].completion, Some(1.0));
        assert_eq!(rep.flows[1].completion, Some(11.0));
    }

    #[test]
    fn horizon_truncates() {
        let net = k4();
        let mut sim = Simulator::new(&net, RouterPolicy::Ecmp);
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 8),
            size: 100.0,
            start: 0.0,
        }];
        let rep = sim.run(&specs, &[], 5.0);
        assert_eq!(rep.unfinished(), 1);
        assert_eq!(rep.makespan, 5.0);
    }

    #[test]
    fn link_failure_reroutes() {
        let net = k4();
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 8),
            size: 10.0,
            start: 0.0,
        }];
        // run once to learn the chosen path, then fail its first switch
        // link mid-transfer
        let mut probe = Simulator::new(&net, RouterPolicy::Ecmp);
        let _ = probe.run(&specs, &[], 1e9);
        // find the edge uplink the flow uses: fail ALL but one core so a
        // reroute must happen. Simpler: fail one specific agg-core edge and
        // check the flow still completes (rerouted or unaffected).
        let some_core_link = net
            .graph()
            .edges()
            .find(|&(_, a, b)| {
                use ft_topo::DeviceKind::*;
                matches!(
                    (net.kind(a), net.kind(b)),
                    (Core, Aggregation) | (Aggregation, Core)
                )
            })
            .map(|(e, _, _)| e)
            .unwrap();
        let mut sim = Simulator::new(&net, RouterPolicy::Ecmp);
        let rep = sim.run(&specs, &[NetworkEvent::LinkDown(5.0, some_core_link)], 1e9);
        assert_eq!(rep.unfinished(), 0, "flow must survive the failure");
        assert!(rep.flows[0].completion.unwrap() >= 10.0);
    }

    #[test]
    fn failure_and_repair_cycle() {
        let net = k4();
        // sever *all* core links of one aggregation switch then restore
        let agg = net
            .switches()
            .find(|&v| net.kind(v) == ft_topo::DeviceKind::Aggregation)
            .unwrap();
        let agg_core: Vec<_> = net
            .graph()
            .edges()
            .filter(|&(_, a, b)| {
                (a == agg && net.kind(b) == ft_topo::DeviceKind::Core)
                    || (b == agg && net.kind(a) == ft_topo::DeviceKind::Core)
            })
            .map(|(e, _, _)| e)
            .collect();
        assert_eq!(agg_core.len(), 2);
        let mut events = Vec::new();
        for &e in &agg_core {
            events.push(NetworkEvent::LinkDown(1.0, e));
        }
        for &e in &agg_core {
            events.push(NetworkEvent::LinkUp(3.0, e));
        }
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 8),
            size: 10.0,
            start: 0.0,
        }];
        let mut sim = Simulator::new(&net, RouterPolicy::Ecmp);
        let rep = sim.run(&specs, &events, 1e9);
        assert_eq!(rep.unfinished(), 0);
    }

    #[test]
    fn ksp_policy_on_flat_tree_global_mode() {
        let ftree = FlatTree::new(FlatTreeConfig::for_fat_tree_k(4).unwrap()).unwrap();
        let net = ftree.materialize(&Mode::GlobalRandom).unwrap();
        let mut sim = Simulator::new(&net, RouterPolicy::Ksp(8));
        let servers: Vec<NodeId> = net.servers().collect();
        let specs: Vec<FlowSpec> = (0..6)
            .map(|i| FlowSpec {
                src: servers[i],
                dst: servers[servers.len() - 1 - i],
                size: 1.0,
                start: 0.0,
            })
            .collect();
        let rep = sim.run(&specs, &[], 1e9);
        assert_eq!(rep.unfinished(), 0);
        assert!(rep.makespan >= 1.0);
    }

    #[test]
    fn deterministic_repeat() {
        let net = k4();
        let servers: Vec<NodeId> = net.servers().collect();
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec {
                src: servers[i],
                dst: servers[(i + 5) % servers.len()],
                size: 1.0 + i as f64,
                start: 0.0,
            })
            .collect();
        let r1 = Simulator::new(&net, RouterPolicy::Ecmp).run(&specs, &[], 1e9);
        let r2 = Simulator::new(&net, RouterPolicy::Ecmp).run(&specs, &[], 1e9);
        for (a, b) in r1.flows.iter().zip(&r2.flows) {
            assert_eq!(a.completion, b.completion);
        }
        assert_eq!(r1.makespan, r2.makespan);
    }
}
