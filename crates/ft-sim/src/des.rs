//! The event-driven simulator: ft-sim rebuilt as a client of the
//! [`ft_des`] engine.
//!
//! The legacy [`crate::simulator::Simulator`] advances time with an
//! inline next-transition loop; this module expresses the same flow
//! dynamics as three [`ft_des::Component`]s — a flow source, a topology
//! driver, and a rate allocator — exchanging events through the
//! deterministic queue. On top of the legacy link failures/repairs it
//! models **live zone conversion** (the paper's Clos↔random-graph
//! transitions): a [`ConversionEvent`] drains the links the
//! [`ft_control::ReconfigPlan`] removes, re-routes the flows riding
//! them, and after the modeled converter reconfiguration latency brings
//! the new links up and re-derives routing under the new policy.
//!
//! Determinism contract (DESIGN.md §14): seeding order is topology
//! events then flow arrivals, so at equal timestamps the queue replays
//! the legacy engine's apply-events-before-admission rule; all
//! follow-up events carry strictly larger sequence numbers, and no
//! handler lets wall-clock time or unordered containers influence the
//! schedule. A fixed scenario therefore produces bit-identical reports
//! and traces regardless of `FT_THREADS`. (The allocator keeps a
//! measurement-only stopwatch around the max-min solve —
//! [`DesReport::solver_ns`] — which never feeds back into events, the
//! checksum, or the deterministic summary.)

use crate::ratealloc::{max_min_rates, DirectedLink};
use crate::simulator::{FlowSpec, RouterPolicy};
use ft_control::routing::{EcmpRoutes, KspRoutes, ServerPath};
use ft_control::ReconfigPlan;
use ft_des::{Component, ComponentId, Context, Engine, ScheduleError};
use ft_graph::{EdgeId, Graph, NodeId};
use ft_topo::Network;
use std::fmt;
use std::fmt::Write as _;

/// A scheduled topology event for the event-driven simulator.
///
/// `LinkDown`/`LinkUp` mirror [`crate::simulator::NetworkEvent`];
/// `Convert` is new: a whole reconfiguration plan applied live.
#[derive(Clone, Debug)]
pub enum TopoEvent {
    /// Link goes down at the given time.
    LinkDown(f64, EdgeId),
    /// Link comes back at the given time.
    LinkUp(f64, EdgeId),
    /// A zone conversion starts at [`ConversionEvent::at`].
    Convert(ConversionEvent),
}

impl TopoEvent {
    /// When the event fires.
    pub fn time(&self) -> f64 {
        match self {
            TopoEvent::LinkDown(t, _) | TopoEvent::LinkUp(t, _) => *t,
            TopoEvent::Convert(c) => c.at,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            TopoEvent::LinkDown(..) => "link_down",
            TopoEvent::LinkUp(..) => "link_up",
            TopoEvent::Convert(_) => "conversion_start",
        }
    }
}

/// A live Clos↔random-graph conversion: the link delta of a
/// [`ReconfigPlan`] plus the modeled converter reconfiguration latency.
///
/// At `at` the removed links are drained (taken down, flows re-routed
/// away); at `at + latency` the added links come up, the routing policy
/// optionally switches, and affected flows re-route again. This is the
/// paper's claim made executable: conversion is a *traffic-visible*
/// transient, not an instantaneous graph swap.
#[derive(Clone, Debug)]
pub struct ConversionEvent {
    /// Conversion start time (drain begins).
    pub at: f64,
    /// Converter reconfiguration latency: delay between drain and the
    /// new links carrying traffic. Must be ≥ 0 and finite.
    pub latency: f64,
    /// Endpoint pairs (normalized, with multiplicity) whose links are
    /// removed, as produced by [`ReconfigPlan::links_removed`].
    pub removed: Vec<(u32, u32)>,
    /// Endpoint pairs whose links are added when the conversion
    /// finishes, as produced by [`ReconfigPlan::links_added`].
    pub added: Vec<(u32, u32)>,
    /// Routing policy to switch to at conversion finish (e.g. ECMP →
    /// KSP when leaving Clos mode); `None` keeps the current policy.
    pub new_policy: Option<RouterPolicy>,
}

impl ConversionEvent {
    /// Builds a conversion event from a reconfiguration plan.
    pub fn from_plan(
        at: f64,
        latency: f64,
        plan: &ReconfigPlan,
        new_policy: Option<RouterPolicy>,
    ) -> Self {
        assert!(
            latency >= 0.0 && latency.is_finite(),
            "latency must be finite and >= 0"
        );
        ConversionEvent {
            at,
            latency,
            removed: plan.links_removed.clone(),
            added: plan.links_added.clone(),
            new_policy,
        }
    }
}

/// Per-flow outcome from the event-driven simulator.
#[derive(Clone, Debug)]
pub struct DesFlowRecord {
    /// Index into the submitted flow list.
    pub flow: usize,
    /// Completion time (absolute), or `None` if unfinished at the
    /// horizon.
    pub completion: Option<f64>,
    /// Times the flow was re-routed, for any reason.
    pub reroutes: usize,
    /// Subset of `reroutes` caused by zone conversions (drain or
    /// finish).
    pub conversion_reroutes: usize,
    /// Total time the flow spent unroutable (parked at rate 0).
    pub parked_time: f64,
}

/// Why a simulation run failed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DesError {
    /// A seeded flow arrival or topology event had an invalid
    /// timestamp.
    Seed(ScheduleError),
    /// A handler scheduled an invalid follow-up event mid-run
    /// (indicates a simulator bug; surfaced rather than swallowed).
    Schedule(ScheduleError),
}

impl fmt::Display for DesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesError::Seed(e) => write!(f, "invalid seeded event: {e}"),
            DesError::Schedule(e) => write!(f, "invalid follow-up event: {e}"),
        }
    }
}

impl std::error::Error for DesError {}

/// Simulation output of the event-driven engine.
#[derive(Clone, Debug)]
pub struct DesReport {
    /// Per-flow outcomes, index-aligned with the submitted flows.
    pub flows: Vec<DesFlowRecord>,
    /// Horizon if truncated, else the time of the last event processed.
    pub makespan: f64,
    /// Rate re-allocations performed.
    pub reallocations: usize,
    /// Events dispatched by the engine.
    pub events: u64,
    /// Follow-up events scheduled by handlers.
    pub scheduled: u64,
    /// True when the run stopped at the horizon with events pending.
    pub truncated: bool,
    /// Total re-routes across all flows.
    pub reroutes: usize,
    /// Total conversion-caused re-routes across all flows.
    pub conversion_reroutes: usize,
    /// Conversions completed.
    pub conversions: usize,
    /// Physical links taken down (failures plus conversion drains).
    pub links_removed: usize,
    /// Physical links added by conversion finishes.
    pub links_added: usize,
    /// Conversion-plan link removals that matched no live link (plan
    /// drift; should be 0 in a consistent scenario).
    pub missing_links: usize,
    /// Wall-clock nanoseconds spent inside the max-min rate solver
    /// across all re-allocations. Measurement only: timing-dependent,
    /// excluded from [`DesReport::completion_checksum`] and from the
    /// deterministic `ft-des-sim/1` summary, so byte-comparison gates
    /// are unaffected. Lets benchmarks separate event-loop throughput
    /// from solver cost (the solver dominates at large k).
    pub solver_ns: u64,
    /// JSONL trace lines (one per dispatched event) when the run was
    /// traced, else `None`.
    pub trace: Option<Vec<String>>,
}

impl DesReport {
    /// Mean flow completion time over finished flows; `NaN` when
    /// nothing finished.
    pub fn mean_fct(&self, specs: &[FlowSpec]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in &self.flows {
            if let Some(c) = r.completion {
                sum += c - specs[r.flow].start;
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Number of unfinished flows.
    pub fn unfinished(&self) -> usize {
        self.flows.iter().filter(|r| r.completion.is_none()).count()
    }

    /// FNV-style digest of every flow's completion bits and re-route
    /// counters. Two runs of the same scenario must agree bit-for-bit;
    /// used by the determinism tests and the `ftctl bench` gate.
    pub fn completion_checksum(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(PRIME);
        };
        for r in &self.flows {
            mix(&mut h, r.flow as u64);
            mix(&mut h, r.completion.map_or(u64::MAX, f64::to_bits));
            mix(&mut h, r.reroutes as u64);
            mix(&mut h, r.conversion_reroutes as u64);
        }
        h
    }
}

/// Event payload dispatched through the ft-des queue. Indices refer to
/// the run's spec/topology slices, kept in [`World`].
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Flow `specs[i]` arrives.
    Arrival(usize),
    /// Recompute the max-min allocation (coalesced via `World::dirty`).
    Reallocate,
    /// Check for completions under the allocation of the given epoch.
    Harvest(u64),
    /// Apply topology event `topo[i]` (failure, repair, or conversion
    /// drain).
    Topo(usize),
    /// Conversion `topo[i]` finishes: new links up, policy switch.
    TopoFinish(usize),
}

struct Active {
    idx: usize,
    remaining: f64,
    path: Option<Vec<DirectedLink>>, // None = currently unroutable
    hash: u64,
    ends: Option<(NodeId, NodeId)>, // attachment switches when routable
}

/// Which part of a conversion's disruption window a timeline point
/// belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConvPhase {
    /// Removed links are down, the converter latency is running.
    Drain,
    /// New links are live and the post-finish re-route has happened.
    Post,
}

/// Telemetry state for the conversion currently being profiled: while
/// set, every reallocation emits one `des.timeline` span (tracing on)
/// so `ftctl trace` can render the disruption profile per epoch.
#[derive(Clone, Copy, Debug)]
struct ConvObs {
    phase: ConvPhase,
    /// Links the plan removes in total (drain-progress denominator).
    links_planned: u64,
    /// Links this conversion has actually taken down.
    links_removed: u64,
}

enum DesRouter {
    Ecmp(EcmpRoutes),
    Ksp(KspRoutes),
}

impl DesRouter {
    /// Builds routing state over the switch view (id-preserving, so
    /// path edge ids index the full graph's liveness table directly).
    fn build(view: &Graph, policy: RouterPolicy) -> DesRouter {
        match policy {
            RouterPolicy::Ecmp => DesRouter::Ecmp(EcmpRoutes::compute_on(view)),
            RouterPolicy::Ksp(k) => DesRouter::Ksp(KspRoutes::new_on(view.clone(), k)),
        }
    }

    fn route(&self, src: NodeId, dst: NodeId, hash: u64) -> Option<ServerPath> {
        match self {
            DesRouter::Ecmp(r) => r.path(src, dst, hash),
            DesRouter::Ksp(r) => r.path(src, dst, hash),
        }
    }
}

/// Shared simulation state mutated by the three components.
struct World {
    net: Network,
    view: Graph,
    policy: RouterPolicy,
    capacity: f64,
    router: DesRouter,
    specs: Vec<FlowSpec>,
    topo: Vec<TopoEvent>,
    active: Vec<Active>,
    rates: Vec<f64>, // index-aligned with `active`
    records: Vec<DesFlowRecord>,
    /// Time up to which flow progress has been applied.
    last: f64,
    /// A `Reallocate` is pending for the current timestamp.
    dirty: bool,
    /// Bumped per allocation; stale `Harvest` events carry old epochs.
    epoch: u64,
    reallocations: usize,
    /// Accumulated wall-clock time inside `max_min_rates` (measurement
    /// only; see [`DesReport::solver_ns`]).
    solver_ns: u64,
    /// Reused per-reallocation path scratch: inner `Vec`s keep their
    /// allocations across solves instead of being rebuilt each time.
    path_buf: Vec<Vec<DirectedLink>>,
    conversions: usize,
    links_removed: usize,
    links_added: usize,
    missing_links: usize,
    /// Set while a conversion's disruption window is being profiled.
    conv_obs: Option<ConvObs>,
    topo_id: ComponentId,
    alloc_id: ComponentId,
    error: Option<ScheduleError>,
}

impl World {
    /// Schedules a follow-up event, recording (not panicking on) the
    /// first failure; the run surfaces it as [`DesError::Schedule`].
    fn sched(&mut self, ctx: &mut Context<'_, Ev>, at: f64, target: ComponentId, ev: Ev) {
        if self.error.is_none() {
            if let Err(e) = ctx.schedule(at, target, ev) {
                self.error = Some(e);
            }
        }
    }

    /// Applies flow progress (and parked-time accounting) from `last`
    /// up to `now`. Every handler calls this first, so rates in effect
    /// over `[last, now)` are the ones that were current then.
    fn advance_to(&mut self, now: f64) {
        let dt = now - self.last;
        if dt <= 0.0 {
            self.last = now;
            return;
        }
        for (f, &r) in self.active.iter_mut().zip(&self.rates) {
            if f.path.is_none() {
                self.records[f.idx].parked_time += dt;
            } else if r > 0.0 && r.is_finite() {
                f.remaining -= r * dt;
            }
        }
        self.last = now;
    }

    fn resolve_ends(&self, idx: usize) -> Option<(NodeId, NodeId)> {
        let s = self.specs[idx];
        match (
            self.net.try_attachment(s.src),
            self.net.try_attachment(s.dst),
        ) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    fn admit(&mut self, idx: usize, ctx: &mut Context<'_, Ev>) {
        self.advance_to(ctx.now());
        let hash = flow_hash(idx);
        let ends = self.resolve_ends(idx);
        let path = ends.and_then(|(a, b)| route_links(&self.router, a, b, hash));
        if path.as_deref().is_some_and(|p| p.is_empty()) {
            // same-switch flow: finishes instantly, never contends
            self.records[idx].completion = Some(ctx.now());
            return;
        }
        self.active.push(Active {
            idx,
            remaining: self.specs[idx].size,
            path,
            hash,
            ends,
        });
        self.rates.push(0.0);
        self.request_realloc(ctx);
    }

    /// Coalesces re-allocation requests: at most one `Reallocate` is
    /// pending per timestamp, scheduled behind every already-queued
    /// event at `now` (larger seq), so it sees all of them applied.
    fn request_realloc(&mut self, ctx: &mut Context<'_, Ev>) {
        if !self.dirty {
            self.dirty = true;
            let at = ctx.now();
            self.sched(ctx, at, self.alloc_id, Ev::Reallocate);
        }
    }

    fn finish_flow(&mut self, i: usize, now: f64) {
        let f = self.active.swap_remove(i);
        self.rates.swap_remove(i);
        self.records[f.idx].completion = Some(now);
    }

    fn reallocate(&mut self, ctx: &mut Context<'_, Ev>) {
        self.advance_to(ctx.now());
        if !self.dirty {
            return;
        }
        self.dirty = false;
        self.reallocations += 1;
        // Re-routes can land a flow on an empty (same-switch) path;
        // those finish instantly, like at admission.
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].path.as_deref().is_some_and(|p| p.is_empty()) {
                self.finish_flow(i, ctx.now());
            } else {
                i += 1;
            }
        }
        self.path_buf.truncate(self.active.len());
        self.path_buf.resize_with(self.active.len(), Vec::new);
        for (buf, f) in self.path_buf.iter_mut().zip(&self.active) {
            buf.clear();
            if let Some(p) = f.path.as_deref() {
                buf.extend_from_slice(p);
            }
        }
        let t0 = std::time::Instant::now();
        self.rates = max_min_rates(&self.path_buf, self.capacity);
        self.solver_ns = self
            .solver_ns
            .saturating_add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        for (f, r) in self.active.iter().zip(self.rates.iter_mut()) {
            if f.path.is_none() {
                *r = 0.0; // unroutable, parked
            }
        }
        self.epoch += 1;
        self.arm_harvest(ctx);
        self.emit_timeline(ctx);
    }

    /// Emits one `des.timeline` span for the conversion window being
    /// profiled: a point per re-allocation covering the drain (links
    /// down, converter latency running) and one `post` point after the
    /// finish, which closes the window. No-op outside a window; the
    /// field sums are only computed while tracing is on. Telemetry
    /// only — it reads state, never schedules or mutates flows, so the
    /// deterministic summary and event trace are unaffected.
    fn emit_timeline(&mut self, ctx: &Context<'_, Ev>) {
        let Some(obs) = self.conv_obs else { return };
        if obs.phase == ConvPhase::Post {
            self.conv_obs = None; // the post-finish point is the last one
        }
        if !ft_obs::enabled() {
            return;
        }
        let parked = self.active.iter().filter(|f| f.path.is_none()).count();
        let reroutes: usize = self.records.iter().map(|r| r.reroutes).sum();
        let conversion_reroutes: usize = self.records.iter().map(|r| r.conversion_reroutes).sum();
        let _g = ft_obs::span!(
            "des.timeline",
            epoch = self.epoch,
            t = ctx.now(),
            phase = match obs.phase {
                ConvPhase::Drain => "drain",
                ConvPhase::Post => "post",
            },
            active = self.active.len(),
            parked = parked,
            queue = ctx.pending(),
            scheduled = ctx.scheduled_so_far(),
            reroutes = reroutes,
            conversion_reroutes = conversion_reroutes,
            links_removed = obs.links_removed,
            links_planned = obs.links_planned,
        );
    }

    /// Schedules the next completion check under the current rates.
    fn arm_harvest(&mut self, ctx: &mut Context<'_, Ev>) {
        let mut dt = f64::INFINITY;
        for (f, &r) in self.active.iter().zip(&self.rates) {
            if r > 0.0 && r.is_finite() {
                let t = f.remaining / r;
                if t < dt {
                    dt = t;
                }
            }
        }
        if dt.is_finite() {
            let at = ctx.now() + dt.max(0.0);
            let ep = self.epoch;
            self.sched(ctx, at, self.alloc_id, Ev::Harvest(ep));
        }
    }

    fn harvest(&mut self, ep: u64, ctx: &mut Context<'_, Ev>) {
        if ep != self.epoch {
            return; // superseded by a later allocation
        }
        self.advance_to(ctx.now());
        let mut finished = false;
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].remaining <= 1e-9 {
                self.finish_flow(i, ctx.now());
                finished = true;
            } else {
                i += 1;
            }
        }
        if finished {
            self.request_realloc(ctx);
        } else {
            // float drift: the predicted completion fell short; re-arm
            self.arm_harvest(ctx);
        }
    }

    fn topo_event(&mut self, i: usize, ctx: &mut Context<'_, Ev>) {
        self.advance_to(ctx.now());
        match self.topo[i].clone() {
            TopoEvent::LinkDown(_, e) => {
                if self.net.graph_mut().remove_edge(e) {
                    self.links_removed += 1;
                }
                if self.view.remove_edge(e) {
                    self.refresh_router_removed(&[e]);
                }
                self.reroute_stale(false);
                self.request_realloc(ctx);
            }
            TopoEvent::LinkUp(_, e) => {
                self.net.graph_mut().restore_edge(e);
                if self.view.restore_edge(e) {
                    self.router = DesRouter::build(&self.view, self.policy);
                }
                self.reroute_stale(false);
                self.request_realloc(ctx);
            }
            TopoEvent::Convert(ev) => {
                // Drain: take down every link the plan removes. Pairs
                // may be server uplinks (4-port conversions rewire
                // attachments); those don't exist in the switch view.
                let mut obs_span = ft_obs::span!("des.conversion_drain", t = ctx.now());
                let removed_before = self.links_removed;
                let mut view_removed = Vec::new();
                for &(a, b) in &ev.removed {
                    let (a, b) = (NodeId(a), NodeId(b));
                    let e = self
                        .net
                        .graph()
                        .neighbors(a)
                        .filter(|&(n, _)| n == b)
                        .map(|(_, e)| e)
                        .min();
                    let Some(e) = e else {
                        self.missing_links += 1;
                        continue;
                    };
                    self.net.graph_mut().remove_edge(e);
                    self.links_removed += 1;
                    if self.view.remove_edge(e) {
                        view_removed.push(e);
                    }
                }
                if !view_removed.is_empty() {
                    self.refresh_router_removed(&view_removed);
                }
                let drained = self.links_removed - removed_before;
                self.conv_obs = Some(ConvObs {
                    phase: ConvPhase::Drain,
                    links_planned: ev.removed.len() as u64,
                    links_removed: drained as u64,
                });
                if let Some(s) = obs_span.as_mut() {
                    s.field("links_planned", ev.removed.len());
                    s.field("links_removed", drained);
                }
                self.reroute_stale(true);
                self.request_realloc(ctx);
                let at = ctx.now() + ev.latency;
                self.sched(ctx, at, self.topo_id, Ev::TopoFinish(i));
            }
        }
    }

    fn topo_finish(&mut self, i: usize, ctx: &mut Context<'_, Ev>) {
        self.advance_to(ctx.now());
        let TopoEvent::Convert(ev) = self.topo[i].clone() else {
            return; // only conversions schedule a finish
        };
        let _obs_span = ft_obs::span!(
            "des.conversion_finish",
            t = ctx.now(),
            links_added = ev.added.len(),
        );
        for &(a, b) in &ev.added {
            self.net.graph_mut().add_edge(NodeId(a), NodeId(b));
            self.links_added += 1;
        }
        if let Some(p) = ev.new_policy {
            self.policy = p;
        }
        // New edge ids extend the shared id space; rebuild the view so
        // the router sees them.
        self.view = self.net.switch_view();
        self.router = DesRouter::build(&self.view, self.policy);
        self.conversions += 1;
        if let Some(obs) = self.conv_obs.as_mut() {
            obs.phase = ConvPhase::Post;
        }
        self.reroute_stale(true);
        self.request_realloc(ctx);
    }

    /// Incremental ECMP repair after pure removals; everything else
    /// rebuilds from scratch.
    fn refresh_router_removed(&mut self, removed: &[EdgeId]) {
        if let DesRouter::Ecmp(r) = &mut self.router {
            r.repair(&self.view, removed);
        } else {
            self.router = DesRouter::build(&self.view, self.policy);
        }
    }

    /// Re-resolves every active flow whose attachment drifted or whose
    /// path crosses a dead link, counting the re-route (even when the
    /// flow stays unroutable, matching the legacy simulator).
    fn reroute_stale(&mut self, conversion: bool) {
        for fi in 0..self.active.len() {
            let (idx, hash, old_ends) = {
                let f = &self.active[fi];
                (f.idx, f.hash, f.ends)
            };
            let ends = self.resolve_ends(idx);
            let path_ok = ends.is_some()
                && old_ends == ends
                && self.active[fi]
                    .path
                    .as_ref()
                    .is_some_and(|p| p.iter().all(|dl| self.view.edge_alive(dl.edge)));
            if path_ok {
                continue;
            }
            let new_path = ends.and_then(|(a, b)| route_links(&self.router, a, b, hash));
            let f = &mut self.active[fi];
            f.ends = ends;
            f.path = new_path;
            let rec = &mut self.records[idx];
            rec.reroutes += 1;
            if conversion {
                rec.conversion_reroutes += 1;
            }
        }
    }
}

struct FlowSource;

impl Component<World, Ev> for FlowSource {
    fn name(&self) -> &'static str {
        "flows"
    }

    fn on_event(&mut self, event: &Ev, w: &mut World, ctx: &mut Context<'_, Ev>) {
        if let Ev::Arrival(idx) = *event {
            w.admit(idx, ctx);
        }
    }
}

struct TopologyDriver;

impl Component<World, Ev> for TopologyDriver {
    fn name(&self) -> &'static str {
        "topology"
    }

    fn on_event(&mut self, event: &Ev, w: &mut World, ctx: &mut Context<'_, Ev>) {
        match *event {
            Ev::Topo(i) => w.topo_event(i, ctx),
            Ev::TopoFinish(i) => w.topo_finish(i, ctx),
            _ => {}
        }
    }
}

struct RateAllocator;

impl Component<World, Ev> for RateAllocator {
    fn name(&self) -> &'static str {
        "ratealloc"
    }

    fn on_event(&mut self, event: &Ev, w: &mut World, ctx: &mut Context<'_, Ev>) {
        match *event {
            Ev::Reallocate => w.reallocate(ctx),
            Ev::Harvest(ep) => w.harvest(ep, ctx),
            _ => {}
        }
    }
}

/// The event-driven simulator. Owns a pristine copy of the network;
/// each run clones it, so one simulator can replay many scenarios.
pub struct DesSimulator {
    net: Network,
    policy: RouterPolicy,
    capacity: f64,
}

impl DesSimulator {
    /// Creates a simulator over (a clone of) the network with unit
    /// capacity per link direction.
    pub fn new(net: &Network, policy: RouterPolicy) -> Self {
        DesSimulator {
            net: net.clone(),
            policy,
            capacity: 1.0,
        }
    }

    /// Overrides the per-direction link capacity.
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        assert!(capacity > 0.0);
        self.capacity = capacity;
        self
    }

    /// Runs the scenario to completion or `horizon`, whichever comes
    /// first.
    pub fn run(
        &self,
        specs: &[FlowSpec],
        topo: &[TopoEvent],
        horizon: f64,
    ) -> Result<DesReport, DesError> {
        self.run_inner(specs, topo, horizon, false)
    }

    /// [`DesSimulator::run`] with a JSONL trace: one line per
    /// dispatched event, in dispatch order, in
    /// [`DesReport::trace`].
    pub fn run_traced(
        &self,
        specs: &[FlowSpec],
        topo: &[TopoEvent],
        horizon: f64,
    ) -> Result<DesReport, DesError> {
        self.run_inner(specs, topo, horizon, true)
    }

    fn run_inner(
        &self,
        specs: &[FlowSpec],
        topo: &[TopoEvent],
        horizon: f64,
        traced: bool,
    ) -> Result<DesReport, DesError> {
        let mut span = ft_obs::span!("sim.des", flows = specs.len(), topo = topo.len());
        let net = self.net.clone();
        let view = net.switch_view();
        let router = DesRouter::build(&view, self.policy);

        let mut engine: Engine<World, Ev> = Engine::new();
        let flow_id = engine.register(Box::new(FlowSource));
        let topo_id = engine.register(Box::new(TopologyDriver));
        let alloc_id = engine.register(Box::new(RateAllocator));

        // Seeding order is part of the determinism contract: topology
        // events first, then arrivals, so at equal timestamps the
        // queue replays the legacy apply-events-before-admission rule.
        for (i, ev) in topo.iter().enumerate() {
            engine
                .schedule(ev.time(), topo_id, Ev::Topo(i))
                .map_err(DesError::Seed)?;
        }
        for (i, s) in specs.iter().enumerate() {
            engine
                .schedule(s.start, flow_id, Ev::Arrival(i))
                .map_err(DesError::Seed)?;
        }

        let mut world = World {
            net,
            view,
            policy: self.policy,
            capacity: self.capacity,
            router,
            specs: specs.to_vec(),
            topo: topo.to_vec(),
            active: Vec::new(),
            rates: Vec::new(),
            records: (0..specs.len())
                .map(|flow| DesFlowRecord {
                    flow,
                    completion: None,
                    reroutes: 0,
                    conversion_reroutes: 0,
                    parked_time: 0.0,
                })
                .collect(),
            last: 0.0,
            dirty: false,
            epoch: 0,
            reallocations: 0,
            solver_ns: 0,
            path_buf: Vec::new(),
            conversions: 0,
            links_removed: 0,
            links_added: 0,
            missing_links: 0,
            conv_obs: None,
            topo_id,
            alloc_id,
            error: None,
        };

        let mut trace: Option<Vec<String>> = if traced { Some(Vec::new()) } else { None };
        let stats = match trace.as_mut() {
            Some(lines) => {
                let kinds: Vec<&'static str> = topo.iter().map(TopoEvent::kind).collect();
                engine.run_observed(&mut world, horizon, |key, component, ev| {
                    lines.push(trace_line(&key, component, ev, &kinds));
                })
            }
            None => engine.run(&mut world, horizon),
        };
        if let Some(e) = world.error {
            return Err(DesError::Schedule(e));
        }

        let mut makespan = engine.now();
        if stats.truncated && horizon.is_finite() {
            // account parked time / partial progress up to the cut
            world.advance_to(horizon);
            makespan = horizon;
        }

        let report = DesReport {
            reroutes: world.records.iter().map(|r| r.reroutes).sum(),
            conversion_reroutes: world.records.iter().map(|r| r.conversion_reroutes).sum(),
            flows: world.records,
            makespan,
            reallocations: world.reallocations,
            events: stats.processed,
            scheduled: stats.scheduled,
            truncated: stats.truncated,
            conversions: world.conversions,
            links_removed: world.links_removed,
            links_added: world.links_added,
            missing_links: world.missing_links,
            solver_ns: world.solver_ns,
            trace,
        };
        if let Some(s) = span.as_mut() {
            s.field("events", report.events);
            s.field("reroutes", report.reroutes as u64);
            s.field("conversions", report.conversions as u64);
        }
        Ok(report)
    }
}

fn flow_hash(idx: usize) -> u64 {
    // same mixing as the legacy simulator: path choice is identical
    (idx as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03
}

/// Routes and converts a switch-level path into directed links.
fn route_links(
    router: &DesRouter,
    src: NodeId,
    dst: NodeId,
    hash: u64,
) -> Option<Vec<DirectedLink>> {
    if src == dst {
        return Some(Vec::new());
    }
    let path = router.route(src, dst, hash)?;
    let mut out = Vec::with_capacity(path.edges.len());
    for (i, &e) in path.edges.iter().enumerate() {
        let (a, b) = (path.switches[i], path.switches[i + 1]);
        out.push(DirectedLink {
            edge: e,
            forward: a.0 < b.0,
        });
    }
    Some(out)
}

/// One JSONL trace line. `f64` `Display` never prints exponent
/// notation, so `t` is always a valid JSON number.
fn trace_line(
    key: &ft_des::EventKey,
    component: &'static str,
    ev: &Ev,
    kinds: &[&'static str],
) -> String {
    let t = key.time.value();
    let seq = key.seq;
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"t\":{t},\"seq\":{seq},\"component\":\"{component}\","
    );
    match *ev {
        Ev::Arrival(i) => {
            let _ = write!(line, "\"kind\":\"arrival\",\"flow\":{i}}}");
        }
        Ev::Reallocate => line.push_str("\"kind\":\"reallocate\"}"),
        Ev::Harvest(ep) => {
            let _ = write!(line, "\"kind\":\"harvest\",\"epoch\":{ep}}}");
        }
        Ev::Topo(i) => {
            let kind = kinds.get(i).copied().unwrap_or("topo");
            let _ = write!(line, "\"kind\":\"{kind}\",\"event\":{i}}}");
        }
        Ev::TopoFinish(i) => {
            let _ = write!(line, "\"kind\":\"conversion_finish\",\"event\":{i}}}");
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{NetworkEvent, Simulator};
    use ft_core::{FlatTree, FlatTreeConfig, Mode};
    use ft_topo::fat_tree;

    fn k4() -> Network {
        fat_tree(4).unwrap()
    }

    fn server(net: &Network, i: usize) -> NodeId {
        net.servers().nth(i).unwrap()
    }

    #[test]
    fn single_flow_fct_matches_legacy() {
        let net = k4();
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 8),
            size: 2.0,
            start: 0.0,
        }];
        let rep = DesSimulator::new(&net, RouterPolicy::Ecmp)
            .run(&specs, &[], 1e9)
            .unwrap();
        assert_eq!(rep.flows[0].completion, Some(2.0));
        assert_eq!(rep.unfinished(), 0);
        assert!((rep.mean_fct(&specs) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn same_switch_flow_instant() {
        let net = k4();
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 1),
            size: 5.0,
            start: 3.0,
        }];
        let rep = DesSimulator::new(&net, RouterPolicy::Ecmp)
            .run(&specs, &[], 1e9)
            .unwrap();
        assert_eq!(rep.flows[0].completion, Some(3.0));
        assert_eq!(rep.events, 1); // one arrival, no realloc needed
    }

    #[test]
    fn matches_legacy_on_event_free_workload() {
        let net = k4();
        let servers: Vec<NodeId> = net.servers().collect();
        let specs: Vec<FlowSpec> = (0..12)
            .map(|i| FlowSpec {
                src: servers[i],
                dst: servers[(i + 5) % servers.len()],
                size: 1.0 + i as f64 * 0.5,
                start: (i % 3) as f64 * 0.25,
            })
            .collect();
        let legacy = Simulator::new(&net, RouterPolicy::Ecmp).run(&specs, &[], 1e9);
        let des = DesSimulator::new(&net, RouterPolicy::Ecmp)
            .run(&specs, &[], 1e9)
            .unwrap();
        for (a, b) in legacy.flows.iter().zip(&des.flows) {
            let (ca, cb) = (a.completion.unwrap(), b.completion.unwrap());
            assert!((ca - cb).abs() < 1e-9, "flow {}: {ca} vs {cb}", a.flow);
        }
        assert!((legacy.makespan - des.makespan).abs() < 1e-9);
    }

    #[test]
    fn matches_legacy_on_link_failures() {
        let net = k4();
        let agg_core: Vec<EdgeId> = net
            .graph()
            .edges()
            .filter(|&(_, a, b)| {
                use ft_topo::DeviceKind::*;
                matches!(
                    (net.kind(a), net.kind(b)),
                    (Core, Aggregation) | (Aggregation, Core)
                )
            })
            .map(|(e, _, _)| e)
            .collect();
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 8),
            size: 10.0,
            start: 0.0,
        }];
        let events = [
            NetworkEvent::LinkDown(2.0, agg_core[0]),
            NetworkEvent::LinkDown(2.0, agg_core[1]),
            NetworkEvent::LinkUp(4.0, agg_core[0]),
        ];
        let topo = [
            TopoEvent::LinkDown(2.0, agg_core[0]),
            TopoEvent::LinkDown(2.0, agg_core[1]),
            TopoEvent::LinkUp(4.0, agg_core[0]),
        ];
        let legacy = Simulator::new(&net, RouterPolicy::Ecmp).run(&specs, &events, 1e9);
        let des = DesSimulator::new(&net, RouterPolicy::Ecmp)
            .run(&specs, &topo, 1e9)
            .unwrap();
        let (ca, cb) = (
            legacy.flows[0].completion.unwrap(),
            des.flows[0].completion.unwrap(),
        );
        assert!((ca - cb).abs() < 1e-9, "{ca} vs {cb}");
    }

    #[test]
    fn uplink_failure_parks_flow() {
        let net = k4();
        let src = server(&net, 0);
        // the server's single uplink
        let uplink = net.graph().neighbors(src).next().unwrap().1;
        let specs = [FlowSpec {
            src,
            dst: server(&net, 8),
            size: 10.0,
            start: 0.0,
        }];
        let topo = [
            TopoEvent::LinkDown(2.0, uplink),
            TopoEvent::LinkUp(5.0, uplink),
        ];
        let rep = DesSimulator::new(&net, RouterPolicy::Ecmp)
            .run(&specs, &topo, 1e9)
            .unwrap();
        let r = &rep.flows[0];
        assert_eq!(rep.unfinished(), 0);
        // 2s of transfer, 3s parked, 8 more seconds of transfer
        assert!((r.completion.unwrap() - 13.0).abs() < 1e-9, "{r:?}");
        assert!((r.parked_time - 3.0).abs() < 1e-9, "{r:?}");
        assert!(r.reroutes >= 1);
    }

    /// Builds a k=4 flat-tree, plans Clos → global random graph, and
    /// returns (network, conversion event).
    fn conversion_fixture(latency: f64) -> (Network, ConversionEvent) {
        let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(4).unwrap()).unwrap();
        let net = ft.materialize(&Mode::Clos).unwrap();
        let from = ft.resolve(&Mode::Clos).unwrap();
        let to = ft.resolve(&Mode::GlobalRandom).unwrap();
        let plan = ft_control::plan_transition(&ft, &from, &to).unwrap();
        let ev = ConversionEvent::from_plan(3.0, latency, &plan, Some(RouterPolicy::Ksp(4)));
        (net, ev)
    }

    #[test]
    fn conversion_reroutes_flows_and_completes() {
        let (net, ev) = conversion_fixture(0.5);
        let servers: Vec<NodeId> = net.servers().collect();
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec {
                src: servers[i],
                dst: servers[(i + servers.len() / 2) % servers.len()],
                size: 8.0,
                start: 0.0,
            })
            .collect();
        let rep = DesSimulator::new(&net, RouterPolicy::Ecmp)
            .run(&specs, &[TopoEvent::Convert(ev)], 1e9)
            .unwrap();
        assert_eq!(rep.conversions, 1);
        assert!(rep.links_removed > 0, "{rep:?}");
        assert!(rep.links_added > 0, "{rep:?}");
        assert_eq!(rep.missing_links, 0);
        assert!(rep.conversion_reroutes > 0, "conversion must touch flows");
        assert_eq!(rep.unfinished(), 0, "flows must survive the conversion");
    }

    #[test]
    fn conversion_latency_delays_completion() {
        let (net, fast) = conversion_fixture(0.1);
        let (_, slow) = conversion_fixture(10.0);
        let servers: Vec<NodeId> = net.servers().collect();
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec {
                src: servers[i],
                dst: servers[(i + servers.len() / 2) % servers.len()],
                size: 8.0,
                start: 0.0,
            })
            .collect();
        let sim = DesSimulator::new(&net, RouterPolicy::Ecmp);
        let rep_fast = sim.run(&specs, &[TopoEvent::Convert(fast)], 1e9).unwrap();
        let rep_slow = sim.run(&specs, &[TopoEvent::Convert(slow)], 1e9).unwrap();
        assert!(
            rep_slow.makespan >= rep_fast.makespan,
            "slower converters cannot finish earlier: {} vs {}",
            rep_slow.makespan,
            rep_fast.makespan
        );
    }

    #[test]
    fn deterministic_repeat_with_conversion() {
        let (net, ev) = conversion_fixture(0.5);
        let servers: Vec<NodeId> = net.servers().collect();
        let specs: Vec<FlowSpec> = (0..10)
            .map(|i| FlowSpec {
                src: servers[i],
                dst: servers[(i + 7) % servers.len()],
                size: 2.0 + i as f64,
                start: 0.5 * i as f64,
            })
            .collect();
        let sim = DesSimulator::new(&net, RouterPolicy::Ecmp);
        let topo = [TopoEvent::Convert(ev)];
        let r1 = sim.run_traced(&specs, &topo, 1e9).unwrap();
        let r2 = sim.run_traced(&specs, &topo, 1e9).unwrap();
        assert_eq!(r1.completion_checksum(), r2.completion_checksum());
        assert_eq!(r1.trace, r2.trace);
        for (a, b) in r1.flows.iter().zip(&r2.flows) {
            assert_eq!(
                a.completion.map(f64::to_bits),
                b.completion.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn trace_lines_are_json_objects() {
        let net = k4();
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 8),
            size: 1.0,
            start: 0.0,
        }];
        let rep = DesSimulator::new(&net, RouterPolicy::Ecmp)
            .run_traced(&specs, &[], 1e9)
            .unwrap();
        let trace = rep.trace.unwrap();
        assert!(!trace.is_empty());
        for line in &trace {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":"), "{line}");
        }
    }

    #[test]
    fn horizon_truncates() {
        let net = k4();
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 8),
            size: 100.0,
            start: 0.0,
        }];
        let rep = DesSimulator::new(&net, RouterPolicy::Ecmp)
            .run(&specs, &[], 5.0)
            .unwrap();
        assert_eq!(rep.unfinished(), 1);
        assert!(rep.truncated);
        assert_eq!(rep.makespan, 5.0);
    }

    #[test]
    fn nan_seed_rejected() {
        let net = k4();
        let specs = [FlowSpec {
            src: server(&net, 0),
            dst: server(&net, 8),
            size: 1.0,
            start: f64::NAN,
        }];
        let err = DesSimulator::new(&net, RouterPolicy::Ecmp)
            .run(&specs, &[], 1e9)
            .unwrap_err();
        assert_eq!(err, DesError::Seed(ScheduleError::NotANumber));
    }
}
