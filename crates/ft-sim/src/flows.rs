//! Converting workload traffic matrices into simulator flow lists.
//!
//! The paper's workloads (`ft-workload`) are demand matrices; the
//! simulator wants sized, timed flows. These helpers cover the two common
//! shapes: one batch of fixed-size flows ("run this workload once"), and a
//! load sweep where the same matrix arrives repeatedly at a configurable
//! rate (the classic FCT-vs-load methodology).

use crate::simulator::FlowSpec;
use ft_workload::TrafficMatrix;
use rand::prelude::*;

/// One flow per demand entry, all starting at `start`, each carrying
/// `size_per_unit × demand` volume.
pub fn flows_from_matrix(tm: &TrafficMatrix, size_per_unit: f64, start: f64) -> Vec<FlowSpec> {
    assert!(size_per_unit > 0.0, "flow size must be positive");
    tm.demands
        .iter()
        .map(|&(src, dst, d)| FlowSpec {
            src,
            dst,
            size: size_per_unit * d,
            start,
        })
        .collect()
}

/// Poisson-ish arrival schedule: each demand entry spawns `rounds` flows
/// whose inter-arrival gaps are exponential with mean `1/rate` (per flow),
/// deterministic for a given seed. Used by load sweeps.
///
/// Sampling is delegated to `ft_workload::arrivals::exponential_starts`
/// so the legacy simulator and the ft-des engine replay identical
/// schedules; one `StdRng` is shared across demands in matrix order, so
/// the output is bit-identical to the pre-refactor inline loop.
pub fn flows_with_arrivals(
    tm: &TrafficMatrix,
    size_per_unit: f64,
    rate: f64,
    rounds: usize,
    seed: u64,
) -> Vec<FlowSpec> {
    assert!(size_per_unit > 0.0 && rate > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows = Vec::with_capacity(tm.demands.len() * rounds);
    for &(src, dst, d) in &tm.demands {
        for t in ft_workload::arrivals::exponential_starts(&mut rng, rate, rounds) {
            flows.push(FlowSpec {
                src,
                dst,
                size: size_per_unit * d,
                start: t,
            });
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::NodeId;

    fn tm() -> TrafficMatrix {
        TrafficMatrix {
            demands: vec![(NodeId(10), NodeId(11), 1.0), (NodeId(12), NodeId(13), 2.5)],
        }
    }

    #[test]
    fn batch_conversion() {
        let flows = flows_from_matrix(&tm(), 4.0, 1.5);
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].size, 4.0);
        assert_eq!(flows[1].size, 10.0);
        assert!(flows.iter().all(|f| f.start == 1.5));
    }

    #[test]
    fn arrivals_are_increasing_per_demand() {
        let flows = flows_with_arrivals(&tm(), 1.0, 2.0, 5, 3);
        assert_eq!(flows.len(), 10);
        // per-demand arrival times strictly increase
        for chunk in flows.chunks(5) {
            for w in chunk.windows(2) {
                assert!(w[1].start > w[0].start);
            }
        }
    }

    #[test]
    fn arrivals_deterministic() {
        let a = flows_with_arrivals(&tm(), 1.0, 1.0, 4, 7);
        let b = flows_with_arrivals(&tm(), 1.0, 1.0, 4, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.start, y.start);
        }
    }

    #[test]
    fn higher_rate_arrives_sooner() {
        let slow = flows_with_arrivals(&tm(), 1.0, 0.5, 8, 1);
        let fast = flows_with_arrivals(&tm(), 1.0, 5.0, 8, 1);
        let mean = |v: &[FlowSpec]| v.iter().map(|f| f.start).sum::<f64>() / v.len() as f64;
        assert!(mean(&fast) < mean(&slow));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = flows_from_matrix(&tm(), 0.0, 0.0);
    }
}
