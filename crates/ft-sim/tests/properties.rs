//! Property-based tests for the max-min rate allocator: the two defining
//! properties of a max-min fair allocation must hold for arbitrary path
//! sets.

use ft_graph::EdgeId;
use ft_sim::{max_min_rates, DirectedLink};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_paths() -> impl Strategy<Value = Vec<Vec<DirectedLink>>> {
    // up to 12 flows, each crossing up to 5 of 8 directed links
    proptest::collection::vec(
        proptest::collection::vec((0u32..8, any::<bool>()), 1..5),
        1..12,
    )
    .prop_map(|flows| {
        flows
            .into_iter()
            .map(|links| {
                let mut seen = std::collections::HashSet::new();
                links
                    .into_iter()
                    .map(|(e, forward)| DirectedLink {
                        edge: EdgeId(e),
                        forward,
                    })
                    .filter(|dl| seen.insert(*dl)) // a path crosses a link once
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Feasibility: no directed link carries more than its capacity.
    #[test]
    fn allocation_is_feasible(paths in arb_paths(), cap in 0.5..4.0f64) {
        let rates = max_min_rates(&paths, cap);
        let mut load: HashMap<DirectedLink, f64> = HashMap::new();
        for (f, p) in paths.iter().enumerate() {
            for &l in p {
                *load.entry(l).or_insert(0.0) += rates[f];
            }
        }
        for (&l, &total) in &load {
            prop_assert!(total <= cap + 1e-9, "{l:?} overloaded: {total} > {cap}");
        }
    }

    /// Max-min optimality certificate: every flow is bottlenecked — some
    /// link on its path is saturated AND the flow's rate is maximal among
    /// the flows crossing that link (otherwise its rate could be raised by
    /// lowering a faster flow's, contradicting max-min fairness).
    #[test]
    fn every_flow_is_bottlenecked(paths in arb_paths()) {
        let cap = 1.0;
        let rates = max_min_rates(&paths, cap);
        let mut load: HashMap<DirectedLink, f64> = HashMap::new();
        let mut max_rate_on: HashMap<DirectedLink, f64> = HashMap::new();
        for (f, p) in paths.iter().enumerate() {
            for &l in p {
                *load.entry(l).or_insert(0.0) += rates[f];
                let m = max_rate_on.entry(l).or_insert(0.0);
                *m = m.max(rates[f]);
            }
        }
        for (f, p) in paths.iter().enumerate() {
            if p.is_empty() {
                prop_assert!(rates[f].is_infinite());
                continue;
            }
            let bottlenecked = p.iter().any(|l| {
                load[l] >= cap - 1e-9 && rates[f] >= max_rate_on[l] - 1e-9
            });
            prop_assert!(
                bottlenecked,
                "flow {f} (rate {}) has no bottleneck on {p:?}",
                rates[f]
            );
        }
    }

    /// Scaling capacity scales every rate linearly.
    #[test]
    fn rates_scale_with_capacity(paths in arb_paths(), scale in 1.5..5.0f64) {
        let base = max_min_rates(&paths, 1.0);
        let scaled = max_min_rates(&paths, scale);
        for (a, b) in base.iter().zip(&scaled) {
            if a.is_finite() {
                prop_assert!((b - a * scale).abs() < 1e-9);
            } else {
                prop_assert!(b.is_infinite());
            }
        }
    }
}
