//! Cross-check between the simulator's max-min fair allocation and the
//! FPTAS throughput certificate.
//!
//! The simulator pins each flow to ONE path and shares links max-min
//! fairly; the FPTAS splits flow over ALL paths optimally. Scaling every
//! flow down to the worst-served ratio `λ' = min_f rate_f / demand_f`
//! turns the max-min allocation into a feasible *concurrent* flow, so λ'
//! can never exceed the true optimum — and the FPTAS certificate λ is
//! ≥ (1 − 3ε)·OPT at convergence. The chain that must hold:
//!
//! ```text
//! λ' ≤ OPT ≤ λ / (1 − 3ε)
//! ```
//!
//! A batching or termination bug that inflated λ's certificate would not
//! trip the ft-mcf unit tests on instances where the solvers agree by
//! accident; this pins the batched solver against a *completely
//! independent* allocation model on real topologies.

use ft_control::routing::{EcmpRoutes, KspRoutes, ServerPath};
use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_mcf::{aggregate_commodities, max_concurrent_flow, CapGraph, FptasOptions};
use ft_sim::{max_min_rates, DirectedLink};
use ft_topo::{fat_tree, Network};
use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};

/// Mirrors the simulator's ServerPath → directed-link conversion (and its
/// per-flow hash), so the pinned paths are exactly what `Simulator::run`
/// would use.
fn directed_links(path: &ServerPath) -> Vec<DirectedLink> {
    path.edges
        .iter()
        .enumerate()
        .map(|(i, &e)| DirectedLink {
            edge: e,
            forward: path.switches[i].0 < path.switches[i + 1].0,
        })
        .collect()
}

fn flow_hash(idx: usize) -> u64 {
    (idx as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03
}

enum Router {
    Ecmp(EcmpRoutes),
    Ksp(KspRoutes),
}

/// λ' of the max-min allocation over single-path routed flows: the worst
/// `rate / demand` ratio. Same-switch demands are unconstrained and skip.
fn max_min_lambda(router: &Router, demands: &[(usize, usize, f64)]) -> f64 {
    let mut paths = Vec::new();
    let mut demand_of = Vec::new();
    for (idx, &(src_sw, dst_sw, d)) in demands.iter().enumerate() {
        if src_sw == dst_sw {
            continue;
        }
        let (s, t) = (
            ft_graph::NodeId(src_sw as u32),
            ft_graph::NodeId(dst_sw as u32),
        );
        let sp = match router {
            Router::Ecmp(r) => r.path(s, t, flow_hash(idx)),
            Router::Ksp(r) => r.path(s, t, flow_hash(idx)),
        }
        .expect("bench topologies are connected");
        paths.push(directed_links(&sp));
        demand_of.push(d);
    }
    let rates = max_min_rates(&paths, 1.0);
    rates
        .iter()
        .zip(&demand_of)
        .map(|(&r, &d)| r / d)
        .fold(f64::INFINITY, f64::min)
}

fn crosscheck(net: &Network, router: &Router, label: &str) {
    let tm = generate(
        net,
        &WorkloadSpec {
            pattern: TrafficPattern::HotSpot,
            cluster_size: 64,
            locality: Locality::None,
        },
        7,
    );
    let demands = tm.switch_triples(net);
    assert!(!demands.is_empty(), "{label}: workload produced no demands");
    let lambda_sim = max_min_lambda(router, &demands);
    assert!(
        lambda_sim.is_finite() && lambda_sim > 0.0,
        "{label}: degenerate max-min λ' = {lambda_sim}"
    );

    let eps = 0.1;
    let cg = CapGraph::from_graph(&net.switch_graph(), 1.0);
    let commodities = aggregate_commodities(demands.iter().copied());
    let sol = max_concurrent_flow(&cg, &commodities, FptasOptions::with_epsilon(eps)).unwrap();
    assert!(!sol.budget_exhausted, "{label}: unlimited run exhausted");
    assert!(sol.lambda > 0.0, "{label}: FPTAS certified λ = 0");

    // Single-path max-min is a feasible concurrent flow → λ' ≤ OPT, and
    // OPT ≤ λ/(1 − 3ε) at convergence. Small float slack only.
    assert!(
        lambda_sim <= sol.lambda / (1.0 - 3.0 * eps) + 1e-9,
        "{label}: max-min λ' = {lambda_sim} exceeds FPTAS bound {} (λ = {})",
        sol.lambda / (1.0 - 3.0 * eps),
        sol.lambda
    );
}

#[test]
fn fat_tree_ecmp_max_min_below_fptas_bound() {
    let net = fat_tree(4).unwrap();
    let router = Router::Ecmp(EcmpRoutes::compute(&net));
    crosscheck(&net, &router, "fat-tree k=4 ECMP");
}

#[test]
fn flat_tree_global_rg_ksp_max_min_below_fptas_bound() {
    let net = FlatTree::new(FlatTreeConfig::for_fat_tree_k(6).unwrap())
        .unwrap()
        .materialize(&Mode::GlobalRandom)
        .unwrap();
    let router = Router::Ksp(KspRoutes::new(&net, 4));
    crosscheck(&net, &router, "flat-tree k=6 global-rg KSP");
}
