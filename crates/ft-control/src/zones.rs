//! Zone management for hybrid operation (§3.4).
//!
//! Hybrid flat-tree organizes the network into functionally separate zones
//! — contiguous runs of Pods each running a different topology — so that
//! heterogeneous workloads can each get the topology that suits them while
//! sharing the network core.

use ft_core::{Mode, PodMode};
use ft_graph::NodeId;
use ft_topo::Network;
use std::fmt;
use std::ops::Range;

/// A named zone: a contiguous Pod range with an operating mode.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Zone {
    /// Human-readable label (e.g. `"analytics"`).
    pub name: String,
    /// Pod indices covered (half-open).
    pub pods: Range<usize>,
    /// The topology this zone runs.
    pub mode: PodMode,
}

impl Zone {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, pods: Range<usize>, mode: PodMode) -> Self {
        Zone {
            name: name.into(),
            pods,
            mode,
        }
    }
}

/// Errors from zone layout validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZoneError {
    /// Two zones claim the same Pod.
    Overlap {
        /// First zone name.
        a: String,
        /// Second zone name.
        b: String,
        /// The contested Pod.
        pod: usize,
    },
    /// A zone references Pods beyond the network.
    OutOfRange {
        /// The zone name.
        zone: String,
        /// Pods in the network.
        pods: usize,
    },
    /// A zone covers no Pods.
    Empty {
        /// The zone name.
        zone: String,
    },
}

impl fmt::Display for ZoneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneError::Overlap { a, b, pod } => {
                write!(f, "zones {a:?} and {b:?} both claim Pod {pod}")
            }
            ZoneError::OutOfRange { zone, pods } => {
                write!(f, "zone {zone:?} exceeds the network's {pods} Pods")
            }
            ZoneError::Empty { zone } => write!(f, "zone {zone:?} covers no Pods"),
        }
    }
}

impl std::error::Error for ZoneError {}

/// Converts a zone layout into a hybrid [`Mode`]. Pods not claimed by any
/// zone stay in Clos mode (the conservative default — full ECMP
/// redundancy).
pub fn zones_to_mode(zones: &[Zone], pods: usize) -> Result<Mode, ZoneError> {
    let mut owner: Vec<Option<usize>> = vec![None; pods];
    for (zi, z) in zones.iter().enumerate() {
        if z.pods.is_empty() {
            return Err(ZoneError::Empty {
                zone: z.name.clone(),
            });
        }
        if z.pods.end > pods {
            return Err(ZoneError::OutOfRange {
                zone: z.name.clone(),
                pods,
            });
        }
        for p in z.pods.clone() {
            if let Some(prev) = owner[p] {
                return Err(ZoneError::Overlap {
                    a: zones[prev].name.clone(),
                    b: z.name.clone(),
                    pod: p,
                });
            }
            owner[p] = Some(zi);
        }
    }
    let modes: Vec<PodMode> = owner
        .iter()
        .map(|o| o.map(|zi| zones[zi].mode).unwrap_or(PodMode::Clos))
        .collect();
    Ok(Mode::Hybrid(modes))
}

/// The servers living in a zone of a materialized network (selected by Pod
/// annotation).
pub fn servers_in_zone(net: &Network, zone: &Zone) -> Vec<NodeId> {
    net.servers()
        .filter(|&s| {
            net.pod(s)
                .is_some_and(|p| zone.pods.contains(&(p as usize)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::{FlatTree, FlatTreeConfig};

    #[test]
    fn zones_compose_hybrid_mode() {
        let zones = [
            Zone::new("big-data", 0..2, PodMode::GlobalRandom),
            Zone::new("web", 2..5, PodMode::LocalRandom),
        ];
        let mode = zones_to_mode(&zones, 6).unwrap();
        let v = mode.pod_modes(6).unwrap();
        assert_eq!(v[0], PodMode::GlobalRandom);
        assert_eq!(v[1], PodMode::GlobalRandom);
        assert_eq!(v[2], PodMode::LocalRandom);
        assert_eq!(v[4], PodMode::LocalRandom);
        assert_eq!(v[5], PodMode::Clos, "unclaimed pod defaults to Clos");
    }

    #[test]
    fn overlap_detected() {
        let zones = [
            Zone::new("a", 0..3, PodMode::Clos),
            Zone::new("b", 2..4, PodMode::LocalRandom),
        ];
        assert_eq!(
            zones_to_mode(&zones, 4),
            Err(ZoneError::Overlap {
                a: "a".into(),
                b: "b".into(),
                pod: 2
            })
        );
    }

    #[test]
    fn out_of_range_detected() {
        let zones = [Zone::new("a", 0..5, PodMode::Clos)];
        assert!(matches!(
            zones_to_mode(&zones, 4),
            Err(ZoneError::OutOfRange { .. })
        ));
    }

    #[test]
    fn empty_zone_detected() {
        let zones = [Zone::new("a", 2..2, PodMode::Clos)];
        assert!(matches!(
            zones_to_mode(&zones, 4),
            Err(ZoneError::Empty { .. })
        ));
    }

    #[test]
    fn servers_in_zone_by_pod() {
        let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(4).unwrap()).unwrap();
        let net = ft.materialize(&Mode::Clos).unwrap();
        let z = Zone::new("z", 1..3, PodMode::GlobalRandom);
        let servers = servers_in_zone(&net, &z);
        // pods 1 and 2, k²/4 = 4 servers each
        assert_eq!(servers.len(), 8);
        for s in servers {
            let p = net.pod(s).unwrap() as usize;
            assert!((1..3).contains(&p));
        }
    }

    #[test]
    fn error_display() {
        let e = ZoneError::Overlap {
            a: "x".into(),
            b: "y".into(),
            pod: 3,
        };
        assert!(e.to_string().contains("Pod 3"));
    }
}
