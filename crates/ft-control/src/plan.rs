//! Reconfiguration planning: what changes when the controller converts the
//! topology.
//!
//! A conversion flips a subset of converter switches; each flip logically
//! removes and adds links "as if they were unplugged and replugged
//! manually" (§1). [`plan_transition`] computes both views: the converter
//! configuration deltas to push to hardware, and the logical link churn —
//! which the controller uses to pre-compute routes for the target topology
//! before cutting over.

use crate::zones::{zones_to_mode, Zone, ZoneError};
use ft_core::{ConverterStates, FlatTree, FlatTreeError, FourPortConfig, SixPortConfig};
use std::collections::HashMap;
use std::fmt;

/// A planned topology conversion.
#[derive(Clone, Debug, Default)]
pub struct ReconfigPlan {
    /// 4-port converters to reprogram: `(index, from, to)`.
    pub four_changes: Vec<(usize, FourPortConfig, FourPortConfig)>,
    /// 6-port converters to reprogram: `(index, from, to)`.
    pub six_changes: Vec<(usize, SixPortConfig, SixPortConfig)>,
    /// Logical links that disappear, as normalized node-id pairs
    /// (with multiplicity — parallel links appear once per instance).
    pub links_removed: Vec<(u32, u32)>,
    /// Logical links that appear.
    pub links_added: Vec<(u32, u32)>,
}

impl ReconfigPlan {
    /// Total converter reprogramming operations.
    pub fn converter_ops(&self) -> usize {
        self.four_changes.len() + self.six_changes.len()
    }

    /// Whether the plan is a no-op.
    pub fn is_noop(&self) -> bool {
        self.converter_ops() == 0
    }
}

/// Plans the transition between two converter states of the same flat-tree.
///
/// # Errors
/// Propagates materialization errors (incompatible side pairs in either
/// state).
pub fn plan_transition(
    ft: &FlatTree,
    from: &ConverterStates,
    to: &ConverterStates,
) -> Result<ReconfigPlan, FlatTreeError> {
    let mut plan = ReconfigPlan::default();
    for (idx, (&a, &b)) in from.four.iter().zip(&to.four).enumerate() {
        if a != b {
            plan.four_changes.push((idx, a, b));
        }
    }
    for (idx, (&a, &b)) in from.six.iter().zip(&to.six).enumerate() {
        if a != b {
            plan.six_changes.push((idx, a, b));
        }
    }
    // Link churn via multiset difference of the materialized edge lists.
    let before = ft.materialize_states(from)?;
    let after = ft.materialize_states(to)?;
    let count = |edges: Vec<(u32, u32)>| -> HashMap<(u32, u32), i64> {
        let mut m = HashMap::new();
        for e in edges {
            *m.entry(e).or_insert(0) += 1;
        }
        m
    };
    let b = count(before.graph().canonical_edges());
    let a = count(after.graph().canonical_edges());
    for (&e, &nb) in &b {
        let na = a.get(&e).copied().unwrap_or(0);
        for _ in na..nb {
            plan.links_removed.push(e);
        }
    }
    for (&e, &na) in &a {
        let nb = b.get(&e).copied().unwrap_or(0);
        for _ in nb..na {
            plan.links_added.push(e);
        }
    }
    plan.links_removed.sort_unstable();
    plan.links_added.sort_unstable();
    Ok(plan)
}

/// Errors from [`plan_zone_transition`]: either zone layout is invalid, or
/// a resolved mode fails to materialize.
#[derive(Clone, Debug, PartialEq)]
pub enum ZonePlanError {
    /// A zone layout failed validation.
    Zone(ZoneError),
    /// Mode resolution/materialization failed.
    FlatTree(FlatTreeError),
}

impl fmt::Display for ZonePlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZonePlanError::Zone(e) => write!(f, "zone layout: {e}"),
            ZonePlanError::FlatTree(e) => write!(f, "flat-tree: {e}"),
        }
    }
}

impl std::error::Error for ZonePlanError {}

impl From<ZoneError> for ZonePlanError {
    fn from(e: ZoneError) -> Self {
        ZonePlanError::Zone(e)
    }
}

impl From<FlatTreeError> for ZonePlanError {
    fn from(e: FlatTreeError) -> Self {
        ZonePlanError::FlatTree(e)
    }
}

/// Plans the transition between two **zone layouts** of the same
/// flat-tree: each layout is converted to a hybrid [`ft_core::Mode`]
/// (unclaimed Pods stay Clos), resolved to converter states, and diffed
/// with [`plan_transition`]. This is the controller-facing entry the DES
/// simulator uses to source conversion edge-deltas from zone definitions
/// (§3.4 hybrid operation).
pub fn plan_zone_transition(
    ft: &FlatTree,
    from_zones: &[Zone],
    to_zones: &[Zone],
) -> Result<ReconfigPlan, ZonePlanError> {
    let pods = ft.geometry().pods;
    let from = ft.resolve(&zones_to_mode(from_zones, pods)?)?;
    let to = ft.resolve(&zones_to_mode(to_zones, pods)?)?;
    Ok(plan_transition(ft, &from, &to)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::{FlatTreeConfig, Mode, PodMode};

    fn ft() -> FlatTree {
        FlatTree::new(FlatTreeConfig::for_fat_tree_k(8).unwrap()).unwrap()
    }

    #[test]
    fn noop_plan() {
        let f = ft();
        let s = f.resolve(&Mode::Clos).unwrap();
        let p = plan_transition(&f, &s, &s).unwrap();
        assert!(p.is_noop());
        assert!(p.links_added.is_empty() && p.links_removed.is_empty());
    }

    #[test]
    fn clos_to_local_flips_four_ports_only() {
        let f = ft();
        let from = f.resolve(&Mode::Clos).unwrap();
        let to = f.resolve(&Mode::LocalRandom).unwrap();
        let p = plan_transition(&f, &from, &to).unwrap();
        assert_eq!(p.four_changes.len(), f.geometry().four_count());
        assert!(p.six_changes.is_empty());
        // each 4-port flip removes S–E and A–C, adds S–A and E–C
        assert_eq!(p.links_removed.len(), 2 * f.geometry().four_count());
        assert_eq!(p.links_added.len(), 2 * f.geometry().four_count());
    }

    #[test]
    fn link_churn_balances() {
        // equipment is conserved, so added == removed in count
        let f = ft();
        let from = f.resolve(&Mode::Clos).unwrap();
        let to = f.resolve(&Mode::GlobalRandom).unwrap();
        let p = plan_transition(&f, &from, &to).unwrap();
        assert_eq!(p.links_added.len(), p.links_removed.len());
        assert!(p.converter_ops() > 0);
    }

    #[test]
    fn plan_matches_diff_count() {
        let f = ft();
        let from = f.resolve(&Mode::LocalRandom).unwrap();
        let to = f.resolve(&Mode::GlobalRandom).unwrap();
        let p = plan_transition(&f, &from, &to).unwrap();
        assert_eq!(p.converter_ops(), from.diff_count(&to));
        // local → global keeps 4-ports (both local): only 6-ports flip
        assert!(p.four_changes.is_empty());
        assert_eq!(p.six_changes.len(), f.geometry().six_count());
    }

    #[test]
    fn zone_plan_matches_mode_plan() {
        // whole-fabric zone layouts reduce to the plain mode transition
        let f = ft();
        let pods = f.geometry().pods;
        let from_zones = []; // unclaimed = all-Clos
        let to_zones = [Zone::new("all", 0..pods, PodMode::GlobalRandom)];
        let p = plan_zone_transition(&f, &from_zones, &to_zones).unwrap();
        let expect = plan_transition(
            &f,
            &f.resolve(&Mode::Clos).unwrap(),
            &f.resolve(&Mode::Hybrid(vec![PodMode::GlobalRandom; pods]))
                .unwrap(),
        )
        .unwrap();
        assert_eq!(p.links_removed, expect.links_removed);
        assert_eq!(p.links_added, expect.links_added);
        assert_eq!(p.converter_ops(), expect.converter_ops());
        assert!(!p.is_noop());
    }

    #[test]
    fn zone_plan_partial_layout() {
        // converting only half the pods flips fewer converters than the
        // full conversion and still balances link churn
        let f = ft();
        let pods = f.geometry().pods;
        let to_zones = [Zone::new("half", 0..pods / 2, PodMode::LocalRandom)];
        let p = plan_zone_transition(&f, &[], &to_zones).unwrap();
        let full =
            plan_zone_transition(&f, &[], &[Zone::new("all", 0..pods, PodMode::LocalRandom)])
                .unwrap();
        assert!(p.converter_ops() > 0);
        assert!(p.converter_ops() < full.converter_ops());
        assert_eq!(p.links_added.len(), p.links_removed.len());
    }

    #[test]
    fn zone_plan_rejects_bad_layout() {
        let f = ft();
        let bad = [Zone::new("broken", 0..999, PodMode::Clos)];
        let err = plan_zone_transition(&f, &[], &bad).unwrap_err();
        assert!(matches!(err, ZonePlanError::Zone(_)));
        assert!(err.to_string().contains("zone layout"));
    }

    #[test]
    fn changes_record_from_to() {
        let f = ft();
        let from = f.resolve(&Mode::Clos).unwrap();
        let to = f.resolve(&Mode::LocalRandom).unwrap();
        let p = plan_transition(&f, &from, &to).unwrap();
        for &(_, a, b) in &p.four_changes {
            assert_eq!(a, FourPortConfig::Default);
            assert_eq!(b, FourPortConfig::Local);
        }
    }
}
