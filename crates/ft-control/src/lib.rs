//! The flat-tree control plane (§2.6).
//!
//! Data centers are administered by a single authority, so the paper adopts
//! a centralized controller that (1) selects among the pre-known operation
//! modes — explicitly, zone by zone, or adaptively from traffic
//! measurements — (2) reconfigures the converter switches to change the
//! topology, and (3) installs routing appropriate to the active topology:
//! ECMP for Clos, k-shortest-paths for the approximated random graphs
//! (following Jellyfish).
//!
//! * [`controller`] — the [`Controller`] façade tying everything together.
//! * [`plan`] — reconfiguration planning: which converters flip, which
//!   logical links appear/disappear (the physical-layer "rewiring").
//! * [`routing`] — ECMP next-hop tables and cached k-shortest-path sets,
//!   plus deterministic flow-level path selection.
//! * [`rules`] — SDN-style per-switch forwarding rule compilation
//!   ("program the routing decisions via SDN", §2.6).
//! * [`zones`] — named Pod ranges with per-zone modes (§3.4 hybrid
//!   operation).
//! * [`advisor`] — measurement-driven mode recommendation ("in an adaptive
//!   manner through network measurement", §2.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod controller;
pub mod plan;
pub mod routing;
pub mod rules;
pub mod zones;

pub use advisor::{recommend_mode, TrafficSummary};
pub use controller::Controller;
pub use plan::{plan_transition, plan_zone_transition, ReconfigPlan, ZonePlanError};
pub use routing::{EcmpRoutes, KspRoutes, ServerPath};
pub use rules::{compile_rules, RuleTable};
pub use zones::{zones_to_mode, Zone, ZoneError};
