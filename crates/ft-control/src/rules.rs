//! SDN rule compilation (§2.6).
//!
//! Because flat-tree "maintains structures when approximating random
//! graphs, … it is possible to have prior knowledge of the shortest paths
//! and program the routing decisions via SDN". This module compiles the
//! routers of [`crate::routing`] into per-switch forwarding tables: for
//! every (switch, destination switch), the set of output links a flow may
//! take. The flow-level simulator and the examples forward through these
//! tables exactly as a match-action dataplane would.

use crate::routing::EcmpRoutes;
use ft_graph::{EdgeId, NodeId};
use ft_topo::Network;

/// A per-switch forwarding table: `out[dst]` = candidate output links
/// (with next-hop switch) for traffic to destination switch `dst`.
#[derive(Clone, Debug)]
pub struct RuleTable {
    /// The switch this table is installed on.
    pub switch: NodeId,
    /// Indexed by destination switch id.
    pub out: Vec<Vec<(NodeId, EdgeId)>>,
}

impl RuleTable {
    /// Number of non-empty rules.
    pub fn rule_count(&self) -> usize {
        self.out.iter().filter(|v| !v.is_empty()).count()
    }
}

/// Compiles ECMP next-hop tables into one [`RuleTable`] per switch.
pub fn compile_rules(net: &Network, routes: &EcmpRoutes) -> Vec<RuleTable> {
    let s = net.num_switches();
    (0..s)
        .map(|v| {
            let sw = NodeId(v as u32);
            let out: Vec<Vec<(NodeId, EdgeId)>> = (0..s)
                .map(|dst| routes.next_hops(sw, NodeId(dst as u32)).to_vec())
                .collect();
            RuleTable { switch: sw, out }
        })
        .collect()
}

/// Forwards a packet through compiled rules from `src` to `dst` switch,
/// hashing over candidates per hop. Returns the switch path, or `None` if
/// a table miss occurs (disconnected destination).
pub fn forward(
    tables: &[RuleTable],
    src: NodeId,
    dst: NodeId,
    flow_hash: u64,
) -> Option<Vec<NodeId>> {
    let mut path = vec![src];
    let mut v = src;
    let mut h = flow_hash.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut ttl = tables.len() + 1;
    while v != dst {
        if ttl == 0 {
            return None; // routing loop guard; cannot happen with ECMP tables
        }
        ttl -= 1;
        let candidates = &tables[v.index()].out[dst.index()];
        if candidates.is_empty() {
            return None;
        }
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        let (u, _) = candidates[(h % candidates.len() as u64) as usize];
        path.push(u);
        v = u;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::EcmpRoutes;
    use ft_topo::fat_tree;

    #[test]
    fn compiled_rules_cover_all_destinations() {
        let net = fat_tree(4).unwrap();
        let routes = EcmpRoutes::compute(&net);
        let tables = compile_rules(&net, &routes);
        assert_eq!(tables.len(), net.num_switches());
        for t in &tables {
            // every other switch is reachable → non-empty rule
            assert_eq!(t.rule_count(), net.num_switches() - 1);
        }
    }

    #[test]
    fn forwarding_reaches_destination_shortest() {
        let net = fat_tree(4).unwrap();
        let routes = EcmpRoutes::compute(&net);
        let tables = compile_rules(&net, &routes);
        for hash in 0..8u64 {
            let p = forward(&tables, NodeId(4), NodeId(16), hash).unwrap();
            assert_eq!(p.first(), Some(&NodeId(4)));
            assert_eq!(p.last(), Some(&NodeId(16)));
            assert_eq!(
                (p.len() - 1) as u32,
                routes.distance(NodeId(4), NodeId(16)),
                "forwarding must follow shortest paths"
            );
        }
    }

    #[test]
    fn forward_to_self_trivial() {
        let net = fat_tree(4).unwrap();
        let routes = EcmpRoutes::compute(&net);
        let tables = compile_rules(&net, &routes);
        assert_eq!(
            forward(&tables, NodeId(3), NodeId(3), 0).unwrap(),
            vec![NodeId(3)]
        );
    }

    #[test]
    fn forward_miss_returns_none() {
        use ft_topo::{DeviceKind, NetworkBuilder};
        let mut b = NetworkBuilder::new("x");
        let s0 = b.add_switch(DeviceKind::Generic, 2, None).unwrap();
        let s1 = b.add_switch(DeviceKind::Generic, 2, None).unwrap();
        let h0 = b.add_server(None);
        let h1 = b.add_server(None);
        b.add_link(h0, s0).unwrap();
        b.add_link(h1, s1).unwrap();
        let net = b.build().unwrap();
        let tables = compile_rules(&net, &EcmpRoutes::compute(&net));
        assert!(forward(&tables, NodeId(0), NodeId(1), 0).is_none());
    }
}
