//! Routing for the flat-tree operation modes (§2.6).
//!
//! * Clos mode routes with **ECMP** over the rich equal-cost shortest
//!   paths of the tree.
//! * Random-graph modes route with **k-shortest paths** (the paper follows
//!   Jellyfish, which uses 8 paths), because random graphs have few
//!   equal-cost paths but many near-shortest ones.
//!
//! Both routers work on the switch graph; server endpoints are resolved
//! through their attachment switches. All state is precomputed or cached
//! so the flow-level simulator can query paths in hot loops.

use ft_graph::{bfs_distances, k_shortest_paths, EdgeId, Graph, NodeId, UNREACHABLE};
use ft_topo::Network;
use parking_lot::RwLock;
use std::collections::HashMap;

/// A server-to-server path: attachment hops plus the switch-level route.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerPath {
    /// Switch sequence from the source's attachment to the destination's.
    pub switches: Vec<NodeId>,
    /// Switch-graph edges along `switches` (empty for same-switch pairs).
    pub edges: Vec<EdgeId>,
}

impl ServerPath {
    /// End-to-end hop count including the two server–switch links.
    pub fn hops(&self) -> usize {
        self.edges.len() + 2
    }
}

/// ECMP next-hop tables: for every (switch, destination switch), the set of
/// neighbors strictly closer to the destination.
#[derive(Clone, Debug)]
pub struct EcmpRoutes {
    /// `next[dst][v]` = equal-cost next hops of `v` toward `dst`.
    next: Vec<Vec<Vec<(NodeId, EdgeId)>>>,
    /// `dist[dst][v]` = hop distance.
    dist: Vec<Vec<u32>>,
}

impl EcmpRoutes {
    /// Computes full next-hop tables on the network's switch graph.
    ///
    /// O(S · (S + L)); fine for the evaluation sizes (k ≤ 16 interactive,
    /// k = 32 still < 1 s in release builds).
    pub fn compute(net: &Network) -> Self {
        let sg = net.switch_graph();
        Self::compute_on(&sg)
    }

    /// Computes tables on an explicit switch graph.
    pub fn compute_on(sg: &Graph) -> Self {
        let s = sg.node_count();
        let mut next = Vec::with_capacity(s);
        let mut dist = Vec::with_capacity(s);
        for dstv in sg.nodes() {
            let d = bfs_distances(sg, dstv);
            let mut per_v = vec![Vec::new(); s];
            for v in sg.nodes() {
                if d[v.index()] == UNREACHABLE || v == dstv {
                    continue;
                }
                for (u, e) in sg.neighbors(v) {
                    if d[u.index()] + 1 == d[v.index()] {
                        per_v[v.index()].push((u, e));
                    }
                }
            }
            next.push(per_v);
            dist.push(d);
        }
        EcmpRoutes { next, dist }
    }

    /// Equal-cost next hops of switch `v` toward destination switch `dst`.
    pub fn next_hops(&self, v: NodeId, dst: NodeId) -> &[(NodeId, EdgeId)] {
        &self.next[dst.index()][v.index()]
    }

    /// Hop distance between switches.
    pub fn distance(&self, v: NodeId, dst: NodeId) -> u32 {
        self.dist[dst.index()][v.index()]
    }

    /// Walks one deterministic ECMP path selected by `flow_hash` (models
    /// per-flow hashing: the same hash always picks the same path).
    /// Returns `None` when `dst` is unreachable from `src`.
    pub fn path(&self, src: NodeId, dst: NodeId, flow_hash: u64) -> Option<ServerPath> {
        if src != dst && self.dist[dst.index()][src.index()] == UNREACHABLE {
            return None;
        }
        let mut switches = vec![src];
        let mut edges = Vec::new();
        let mut v = src;
        let mut h = flow_hash;
        while v != dst {
            let hops = self.next_hops(v, dst);
            debug_assert!(!hops.is_empty(), "distance finite but no next hop");
            // xorshift step for per-hop variation while staying
            // deterministic per flow
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            let (u, e) = hops[(h % hops.len() as u64) as usize];
            switches.push(u);
            edges.push(e);
            v = u;
        }
        Some(ServerPath { switches, edges })
    }

    /// Destinations whose next-hop tables reference any of the given
    /// (failed) edges — exactly the rows that can change when those edges
    /// disappear.
    ///
    /// Correctness: `e` appears in some next-hop entry toward `dst` iff
    /// some shortest path to `dst` traverses `e`. If no shortest path used
    /// `e`, removing `e` deletes only non-shortest paths, so neither the
    /// distances nor the equal-cost sets toward `dst` change.
    pub fn affected_destinations(&self, removed: &[EdgeId]) -> Vec<NodeId> {
        let set: std::collections::HashSet<EdgeId> = removed.iter().copied().collect();
        let mut out = Vec::new();
        for (dst, per_v) in self.next.iter().enumerate() {
            let touched = per_v
                .iter()
                .any(|hops| hops.iter().any(|&(_, e)| set.contains(&e)));
            if touched {
                out.push(NodeId(dst as u32));
            }
        }
        out
    }

    /// Incrementally repairs the tables after the given edges were removed
    /// from `sg` (the *already-updated* switch graph): only the affected
    /// destinations' rows are recomputed. Equivalent to a full
    /// [`EcmpRoutes::compute_on`] at a fraction of the cost when failures
    /// are localized.
    pub fn repair(&mut self, sg: &Graph, removed: &[EdgeId]) {
        for dst in self.affected_destinations(removed) {
            let d = bfs_distances(sg, dst);
            let mut per_v = vec![Vec::new(); sg.node_count()];
            for v in sg.nodes() {
                if d[v.index()] == UNREACHABLE || v == dst {
                    continue;
                }
                for (u, e) in sg.neighbors(v) {
                    if d[u.index()] != UNREACHABLE && d[u.index()] + 1 == d[v.index()] {
                        per_v[v.index()].push((u, e));
                    }
                }
            }
            self.next[dst.index()] = per_v;
            self.dist[dst.index()] = d;
        }
    }

    /// All equal-cost shortest paths between two switches (enumerated; use
    /// for tests and small fabrics — path counts explode on large Clos).
    pub fn all_paths(&self, src: NodeId, dst: NodeId) -> Vec<ServerPath> {
        let mut out = Vec::new();
        if src != dst && self.dist[dst.index()][src.index()] == UNREACHABLE {
            return out;
        }
        let mut stack = vec![(src, vec![src], Vec::new())];
        while let Some((v, switches, edges)) = stack.pop() {
            if v == dst {
                out.push(ServerPath { switches, edges });
                continue;
            }
            for &(u, e) in self.next_hops(v, dst) {
                let mut sw = switches.clone();
                sw.push(u);
                let mut ed = edges.clone();
                ed.push(e);
                stack.push((u, sw, ed));
            }
        }
        out
    }
}

/// Lazily computed, cached k-shortest-path sets (Yen) per switch pair.
pub struct KspRoutes {
    sg: Graph,
    k: usize,
    lengths: Vec<f64>,
    cache: RwLock<HashMap<(u32, u32), Vec<ServerPath>>>,
}

impl KspRoutes {
    /// Creates a router over the network's switch graph keeping `k` paths
    /// per pair (the paper/Jellyfish use 8).
    pub fn new(net: &Network, k: usize) -> Self {
        let sg = net.switch_graph();
        let lengths = vec![1.0; sg.edge_id_bound()];
        KspRoutes {
            sg,
            k,
            lengths,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Creates a router over an explicit switch graph — e.g. the
    /// id-preserving `Network::switch_view()` used by the DES simulator,
    /// where path edge ids must name the network's own edges.
    pub fn new_on(sg: Graph, k: usize) -> Self {
        let lengths = vec![1.0; sg.edge_id_bound()];
        KspRoutes {
            sg,
            k,
            lengths,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Number of paths kept per pair.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The k shortest loopless switch-level paths between two switches,
    /// computed on first use and cached.
    pub fn paths(&self, src: NodeId, dst: NodeId) -> Vec<ServerPath> {
        if let Some(hit) = self.cache.read().get(&(src.0, dst.0)) {
            return hit.clone();
        }
        let paths = k_shortest_paths(&self.sg, src, dst, self.k, &self.lengths);
        let out: Vec<ServerPath> = paths
            .into_iter()
            .map(|p| ServerPath {
                switches: p.nodes,
                edges: p.edges,
            })
            .collect();
        self.cache.write().insert((src.0, dst.0), out.clone());
        out
    }

    /// Deterministic per-flow path selection among the k paths.
    pub fn path(&self, src: NodeId, dst: NodeId, flow_hash: u64) -> Option<ServerPath> {
        let paths = self.paths(src, dst);
        if paths.is_empty() {
            return None;
        }
        Some(paths[(flow_hash % paths.len() as u64) as usize].clone())
    }

    /// Cached pair count (for memory instrumentation).
    pub fn cached_pairs(&self) -> usize {
        self.cache.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::{FlatTree, FlatTreeConfig, Mode};
    use ft_topo::fat_tree;

    fn k4() -> Network {
        fat_tree(4).unwrap()
    }

    #[test]
    fn ecmp_distances_match_bfs() {
        let net = k4();
        let r = EcmpRoutes::compute(&net);
        let sg = net.switch_graph();
        for v in sg.nodes() {
            let d = bfs_distances(&sg, v);
            for u in sg.nodes() {
                assert_eq!(r.distance(u, v), d[u.index()]);
            }
        }
    }

    #[test]
    fn ecmp_path_is_shortest_and_valid() {
        let net = k4();
        let r = EcmpRoutes::compute(&net);
        let sg = net.switch_graph();
        for hash in 0..10u64 {
            // edge switch pod 0 (id 4) to edge switch pod 1 (id 8)
            let p = r.path(NodeId(4), NodeId(8), hash).unwrap();
            assert_eq!(p.edges.len() as u32, r.distance(NodeId(4), NodeId(8)));
            for w in p.switches.windows(2) {
                assert!(sg.has_edge(w[0], w[1]));
            }
            assert_eq!(p.hops(), p.edges.len() + 2);
        }
    }

    #[test]
    fn ecmp_same_hash_same_path() {
        let net = k4();
        let r = EcmpRoutes::compute(&net);
        let a = r.path(NodeId(4), NodeId(12), 77).unwrap();
        let b = r.path(NodeId(4), NodeId(12), 77).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ecmp_fat_tree_k4_has_4_paths_interpod() {
        // between edge switches in different pods, fat-tree k=4 offers
        // k²/4 = 4 equal-cost 4-hop paths
        let net = k4();
        let r = EcmpRoutes::compute(&net);
        let paths = r.all_paths(NodeId(4), NodeId(8));
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p.edges.len(), 4);
        }
    }

    #[test]
    fn ecmp_spreads_over_hashes() {
        let net = k4();
        let r = EcmpRoutes::compute(&net);
        let mut distinct = std::collections::HashSet::new();
        for hash in 0..64u64 {
            distinct.insert(r.path(NodeId(4), NodeId(8), hash).unwrap().switches);
        }
        assert!(distinct.len() >= 2, "hashing never spreads load");
    }

    #[test]
    fn repair_matches_full_recompute() {
        let net = fat_tree(4).unwrap();
        let mut sg = net.switch_graph();
        let mut routes = EcmpRoutes::compute_on(&sg);
        // fail three assorted links
        let victims: Vec<_> = sg.edges().map(|(e, _, _)| e).step_by(7).take(3).collect();
        for &e in &victims {
            sg.remove_edge(e);
        }
        let affected = routes.affected_destinations(&victims);
        assert!(!affected.is_empty());
        routes.repair(&sg, &victims);
        let fresh = EcmpRoutes::compute_on(&sg);
        for dst in sg.nodes() {
            for v in sg.nodes() {
                assert_eq!(
                    routes.distance(v, dst),
                    fresh.distance(v, dst),
                    "distance mismatch {v:?}→{dst:?}"
                );
                let mut a = routes.next_hops(v, dst).to_vec();
                let mut b = fresh.next_hops(v, dst).to_vec();
                a.sort_by_key(|&(n, e)| (n.0, e.0));
                b.sort_by_key(|&(n, e)| (n.0, e.0));
                assert_eq!(a, b, "next hops mismatch {v:?}→{dst:?}");
            }
        }
    }

    #[test]
    fn unaffected_destinations_not_listed() {
        // triangle 0-1-2 with a pendant 3 on node 2: the edge 0-1 lies on
        // shortest paths only toward destinations 0 and 1 (everything
        // toward 2 and 3 routes around the triangle's other sides)
        use ft_graph::Graph;
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let routes = EcmpRoutes::compute_on(&g);
        let mut affected = routes.affected_destinations(&[ft_graph::EdgeId(0)]);
        affected.sort();
        assert_eq!(affected, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn repair_handles_disconnection() {
        use ft_graph::Graph;
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut routes = EcmpRoutes::compute_on(&g);
        let (e, _, _) = g.edges().next().unwrap();
        g.remove_edge(e);
        routes.repair(&g, &[e]);
        assert!(routes.path(NodeId(0), NodeId(2), 1).is_none());
        assert!(routes.path(NodeId(1), NodeId(2), 1).is_some());
    }

    #[test]
    fn ksp_paths_sorted_loopless() {
        let cfg = FlatTreeConfig::for_fat_tree_k(4).unwrap();
        let net = FlatTree::new(cfg)
            .unwrap()
            .materialize(&Mode::GlobalRandom)
            .unwrap();
        let r = KspRoutes::new(&net, 8);
        let paths = r.paths(NodeId(4), NodeId(12));
        assert!(!paths.is_empty() && paths.len() <= 8);
        for w in paths.windows(2) {
            assert!(w[0].edges.len() <= w[1].edges.len());
        }
        for p in &paths {
            let mut seen = std::collections::HashSet::new();
            for s in &p.switches {
                assert!(seen.insert(*s), "loop in KSP path");
            }
        }
        // cache hit returns the same answer
        assert_eq!(r.paths(NodeId(4), NodeId(12)), paths);
        assert_eq!(r.cached_pairs(), 1);
    }

    #[test]
    fn ksp_flow_hash_selects_within_k() {
        let net = k4();
        let r = KspRoutes::new(&net, 4);
        for h in 0..16u64 {
            let p = r.path(NodeId(0), NodeId(10), h).unwrap();
            assert!(!p.switches.is_empty());
        }
    }

    #[test]
    fn unreachable_returns_none() {
        use ft_topo::{DeviceKind, NetworkBuilder};
        let mut b = NetworkBuilder::new("x");
        let s0 = b.add_switch(DeviceKind::Generic, 2, None).unwrap();
        let s1 = b.add_switch(DeviceKind::Generic, 2, None).unwrap();
        let h0 = b.add_server(None);
        let h1 = b.add_server(None);
        b.add_link(h0, s0).unwrap();
        b.add_link(h1, s1).unwrap();
        let net = b.build().unwrap();
        let r = EcmpRoutes::compute(&net);
        assert!(r.path(NodeId(0), NodeId(1), 0).is_none());
        let kr = KspRoutes::new(&net, 4);
        assert!(kr.path(NodeId(0), NodeId(1), 0).is_none());
    }
}
