//! The centralized network controller (§2.6).
//!
//! Owns a [`FlatTree`] plus its current converter state, and exposes the
//! operations a data center operator performs:
//!
//! * **convert** to a target [`Mode`] (planning first, then applying),
//! * **organize zones** and convert to the induced hybrid mode,
//! * **query routing** appropriate to the active topology — ECMP in Clos
//!   mode, k-shortest paths otherwise,
//! * **consult the advisor** with traffic measurements.
//!
//! The controller is a state machine over *logical* topologies; pushing
//! configurations to physical converter hardware is represented by the
//! [`ReconfigPlan`]s it returns (realization technology is out of scope,
//! as in the paper).

use crate::plan::{plan_transition, ReconfigPlan};
use crate::routing::{EcmpRoutes, KspRoutes};
use crate::zones::{zones_to_mode, Zone, ZoneError};
use ft_core::{ConverterStates, FlatTree, FlatTreeConfig, FlatTreeError, Mode};
use ft_topo::Network;

/// Routing appropriate for the active mode.
pub enum ActiveRouting {
    /// ECMP over the Clos equal-cost paths.
    Ecmp(EcmpRoutes),
    /// k-shortest paths (k = 8, following Jellyfish) for random-graph
    /// modes.
    Ksp(KspRoutes),
}

/// Errors surfaced by controller operations.
#[derive(Debug)]
pub enum ControlError {
    /// Underlying flat-tree error.
    FlatTree(FlatTreeError),
    /// Zone layout error.
    Zone(ZoneError),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::FlatTree(e) => write!(f, "{e}"),
            ControlError::Zone(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<FlatTreeError> for ControlError {
    fn from(e: FlatTreeError) -> Self {
        ControlError::FlatTree(e)
    }
}

impl From<ZoneError> for ControlError {
    fn from(e: ZoneError) -> Self {
        ControlError::Zone(e)
    }
}

/// The centralized flat-tree controller.
pub struct Controller {
    ft: FlatTree,
    mode: Mode,
    states: ConverterStates,
    network: Network,
    /// Conversions applied since construction (telemetry).
    conversions: usize,
}

impl Controller {
    /// Boots a controller over a new flat-tree, starting in Clos mode (the
    /// deployment state: a flat-tree is physically built as a Clos network
    /// and converted from there).
    pub fn new(cfg: FlatTreeConfig) -> Result<Self, ControlError> {
        let ft = FlatTree::new(cfg)?;
        let mode = Mode::Clos;
        let states = ft.resolve(&mode)?;
        let network = ft.materialize_states(&states)?;
        Ok(Controller {
            ft,
            mode,
            states,
            network,
            conversions: 0,
        })
    }

    /// The architecture under control.
    pub fn flat_tree(&self) -> &FlatTree {
        &self.ft
    }

    /// The active mode.
    pub fn mode(&self) -> &Mode {
        &self.mode
    }

    /// The active converter states.
    pub fn states(&self) -> &ConverterStates {
        &self.states
    }

    /// The current logical topology.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Conversions applied so far.
    pub fn conversions(&self) -> usize {
        self.conversions
    }

    /// Plans (without applying) the conversion to a target mode.
    pub fn plan(&self, to: &Mode) -> Result<ReconfigPlan, ControlError> {
        let target = self.ft.resolve(to)?;
        Ok(plan_transition(&self.ft, &self.states, &target)?)
    }

    /// Converts to the target mode: plans, applies, re-materializes.
    /// Returns the executed plan.
    pub fn convert(&mut self, to: Mode) -> Result<ReconfigPlan, ControlError> {
        let target = self.ft.resolve(&to)?;
        let plan = plan_transition(&self.ft, &self.states, &target)?;
        self.network = self.ft.materialize(&to)?;
        self.states = target;
        self.mode = to;
        if !plan.is_noop() {
            self.conversions += 1;
        }
        Ok(plan)
    }

    /// Organizes the network into zones and converts to the induced hybrid
    /// mode.
    pub fn organize_zones(&mut self, zones: &[Zone]) -> Result<ReconfigPlan, ControlError> {
        let mode = zones_to_mode(zones, self.ft.config().clos.pods)?;
        self.convert(mode)
    }

    /// Routing for the current topology: ECMP in Clos mode, 8-shortest
    /// paths otherwise (§2.6).
    pub fn routing(&self) -> ActiveRouting {
        match self.mode {
            Mode::Clos => ActiveRouting::Ecmp(EcmpRoutes::compute(&self.network)),
            _ => ActiveRouting::Ksp(KspRoutes::new(&self.network, 8)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::PodMode;
    use ft_topo::fat_tree;

    fn controller() -> Controller {
        Controller::new(FlatTreeConfig::for_fat_tree_k(8).unwrap()).unwrap()
    }

    #[test]
    fn boots_in_clos_mode() {
        let c = controller();
        assert_eq!(c.mode(), &Mode::Clos);
        assert_eq!(
            c.network().graph().canonical_edges(),
            fat_tree(8).unwrap().graph().canonical_edges()
        );
        assert_eq!(c.conversions(), 0);
    }

    #[test]
    fn convert_roundtrip_restores_topology() {
        let mut c = controller();
        let before = c.network().graph().canonical_edges();
        let p1 = c.convert(Mode::GlobalRandom).unwrap();
        assert!(!p1.is_noop());
        assert_ne!(c.network().graph().canonical_edges(), before);
        let p2 = c.convert(Mode::Clos).unwrap();
        assert_eq!(c.network().graph().canonical_edges(), before);
        assert_eq!(c.conversions(), 2);
        // the reverse plan mirrors the forward plan
        assert_eq!(p1.links_added, p2.links_removed);
        assert_eq!(p1.links_removed, p2.links_added);
    }

    #[test]
    fn noop_conversion_not_counted() {
        let mut c = controller();
        let p = c.convert(Mode::Clos).unwrap();
        assert!(p.is_noop());
        assert_eq!(c.conversions(), 0);
    }

    #[test]
    fn plan_does_not_mutate() {
        let c = controller();
        let _ = c.plan(&Mode::LocalRandom).unwrap();
        assert_eq!(c.mode(), &Mode::Clos);
    }

    #[test]
    fn organize_zones_applies_hybrid() {
        let mut c = controller();
        let zones = [
            Zone::new("batch", 0..3, PodMode::GlobalRandom),
            Zone::new("web", 3..8, PodMode::LocalRandom),
        ];
        let plan = c.organize_zones(&zones).unwrap();
        assert!(!plan.is_noop());
        match c.mode() {
            Mode::Hybrid(v) => {
                assert_eq!(v[0], PodMode::GlobalRandom);
                assert_eq!(v[7], PodMode::LocalRandom);
            }
            other => panic!("expected hybrid, got {other:?}"),
        }
        c.network().validate().unwrap();
    }

    #[test]
    fn routing_kind_follows_mode() {
        let mut c = controller();
        assert!(matches!(c.routing(), ActiveRouting::Ecmp(_)));
        c.convert(Mode::GlobalRandom).unwrap();
        assert!(matches!(c.routing(), ActiveRouting::Ksp(_)));
    }

    #[test]
    fn zone_error_propagates() {
        let mut c = controller();
        let zones = [Zone::new("a", 0..20, PodMode::Clos)];
        assert!(matches!(
            c.organize_zones(&zones),
            Err(ControlError::Zone(_))
        ));
        assert_eq!(c.mode(), &Mode::Clos, "failed op must not change state");
    }
}
