//! Measurement-driven mode recommendation (§2.6: the controller may change
//! modes "in an adaptive manner through network measurement").
//!
//! The heuristic follows the paper's evaluation findings directly:
//!
//! * small clusters whose traffic stays inside Pods benefit from the
//!   approximated *local* random graphs (Figure 8);
//! * large clusters with heavy cross-Pod traffic benefit from the
//!   approximated *global* random graph (Figure 7);
//! * mixtures split into zones (hybrid mode, §3.4) — zone construction is
//!   the operator's call, so the advisor reports the split rather than
//!   inventing a layout.

use ft_core::Mode;
use ft_topo::Network;
use ft_workload::TrafficMatrix;

/// Aggregate measurements of a traffic matrix against a topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficSummary {
    /// Fraction of demand whose endpoints share a Pod.
    pub intra_pod_fraction: f64,
    /// Fraction of demand touching the single busiest server (hot-spot
    /// concentration; 2/flows ≈ uniform, → 1.0 for a pure hot spot).
    pub hotspot_concentration: f64,
    /// Total demand volume.
    pub total_demand: f64,
}

/// Measures a traffic matrix.
pub fn summarize(net: &Network, tm: &TrafficMatrix) -> TrafficSummary {
    let mut total = 0.0;
    let mut intra = 0.0;
    let mut per_server: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for &(a, b, d) in &tm.demands {
        total += d;
        if let (Some(pa), Some(pb)) = (net.pod(a), net.pod(b)) {
            if pa == pb {
                intra += d;
            }
        }
        *per_server.entry(a.0).or_insert(0.0) += d;
        *per_server.entry(b.0).or_insert(0.0) += d;
    }
    let hottest = per_server.values().copied().fold(0.0f64, f64::max);
    TrafficSummary {
        intra_pod_fraction: if total > 0.0 { intra / total } else { 0.0 },
        hotspot_concentration: if total > 0.0 { hottest / total } else { 0.0 },
        total_demand: total,
    }
}

/// Recommends an operation mode for the measured traffic.
///
/// Thresholds: ≥ 60% intra-Pod demand → local random graphs; ≤ 40% →
/// global random graph; in between the traffic is mixed and the function
/// recommends Clos (the safe all-rounder) — operators with workload
/// placement control should split zones instead.
pub fn recommend_mode(summary: &TrafficSummary) -> Mode {
    // "no measurable demand" — epsilon rather than exact equality, since
    // the total is a float accumulation
    if summary.total_demand.abs() < 1e-12 {
        return Mode::Clos;
    }
    if summary.intra_pod_fraction >= 0.6 {
        Mode::LocalRandom
    } else if summary.intra_pod_fraction <= 0.4 {
        Mode::GlobalRandom
    } else {
        Mode::Clos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::{FlatTree, FlatTreeConfig};
    use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};

    fn net() -> Network {
        FlatTree::new(FlatTreeConfig::for_fat_tree_k(8).unwrap())
            .unwrap()
            .materialize(&Mode::Clos)
            .unwrap()
    }

    #[test]
    fn local_clusters_recommend_local_mode() {
        let n = net();
        // 4-server clusters packed contiguously stay within edge switches
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 4,
            locality: Locality::Strong,
        };
        let tm = generate(&n, &spec, 1);
        let s = summarize(&n, &tm);
        assert!(s.intra_pod_fraction > 0.9, "{s:?}");
        assert_eq!(recommend_mode(&s), Mode::LocalRandom);
    }

    #[test]
    fn global_clusters_recommend_global_mode() {
        let n = net();
        // one network-spanning hot-spot cluster
        let tm = generate(&n, &WorkloadSpec::hotspot(Locality::None), 1);
        let s = summarize(&n, &tm);
        assert!(s.intra_pod_fraction < 0.4, "{s:?}");
        assert!(s.hotspot_concentration > 0.4, "{s:?}");
        assert_eq!(recommend_mode(&s), Mode::GlobalRandom);
    }

    #[test]
    fn empty_traffic_recommends_clos() {
        let s = TrafficSummary {
            intra_pod_fraction: 0.0,
            hotspot_concentration: 0.0,
            total_demand: 0.0,
        };
        assert_eq!(recommend_mode(&s), Mode::Clos);
    }

    #[test]
    fn summary_totals() {
        let n = net();
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 4,
            locality: Locality::Strong,
        };
        let tm = generate(&n, &spec, 1);
        let s = summarize(&n, &tm);
        assert_eq!(s.total_demand, tm.total_demand());
    }
}
