//! Wiring-property validation (§2.3, Properties 1 and 2).
//!
//! The paper claims its Pod-core wiring patterns give every core switch
//! (Property 1) a near-uniform share of relocated servers and (Property 2)
//! an equal number of links of each type. Because flat-tree keeps regular
//! structure, exact uniformity only holds when the rotation step and group
//! size are coprime-compatible; this module measures the *actual*
//! distribution so tests and experiments can assert tight bounds and so
//! [`crate::config::WiringPattern`] choices can be compared empirically.

use ft_graph::NodeId;
use ft_topo::{DeviceKind, Network};

/// Per-core distribution of servers and link types in a materialized
/// network.
#[derive(Clone, Debug)]
pub struct CoreDistribution {
    /// Servers attached to each core switch.
    pub servers: Vec<u32>,
    /// Links from each core to edge switches.
    pub edge_links: Vec<u32>,
    /// Links from each core to aggregation switches.
    pub agg_links: Vec<u32>,
}

impl CoreDistribution {
    /// Max − min of a distribution (0 = perfectly uniform).
    fn spread(v: &[u32]) -> u32 {
        match (v.iter().max(), v.iter().min()) {
            (Some(&max), Some(&min)) => max - min,
            _ => 0,
        }
    }

    /// Property 1 spread: how far server placement is from uniform.
    pub fn server_spread(&self) -> u32 {
        Self::spread(&self.servers)
    }

    /// Property 2 spread for core–edge links.
    pub fn edge_link_spread(&self) -> u32 {
        Self::spread(&self.edge_links)
    }

    /// Property 2 spread for core–aggregation links.
    pub fn agg_link_spread(&self) -> u32 {
        Self::spread(&self.agg_links)
    }
}

/// Measures the per-core distribution of a materialized network.
pub fn core_distribution(net: &Network) -> CoreDistribution {
    let cores: Vec<NodeId> = net
        .switches()
        .filter(|&v| net.kind(v) == DeviceKind::Core)
        .collect();
    let index_of = |v: NodeId| -> Option<usize> {
        // cores are the first switches in the flat-tree layout, so this is
        // O(1) in practice; fall back to a scan for other layouts
        if (v.index()) < cores.len() && cores[v.index()] == v {
            Some(v.index())
        } else {
            cores.iter().position(|&c| c == v)
        }
    };
    let mut servers = vec![0u32; cores.len()];
    let mut edge_links = vec![0u32; cores.len()];
    let mut agg_links = vec![0u32; cores.len()];
    for (_, a, b) in net.graph().edges() {
        for (x, y) in [(a, b), (b, a)] {
            if net.kind(x) == DeviceKind::Core {
                if let Some(ci) = index_of(x) {
                    match net.kind(y) {
                        DeviceKind::Server => servers[ci] += 1,
                        DeviceKind::Edge => edge_links[ci] += 1,
                        DeviceKind::Aggregation => agg_links[ci] += 1,
                        _ => {}
                    }
                }
            }
        }
    }
    CoreDistribution {
        servers,
        edge_links,
        agg_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlatTreeConfig, WiringPattern};
    use crate::flattree::FlatTree;
    use crate::mode::Mode;

    fn dist(k: usize, pattern: WiringPattern, mode: &Mode) -> CoreDistribution {
        let mut cfg = FlatTreeConfig::for_fat_tree_k(k).unwrap();
        cfg.wiring = pattern;
        core_distribution(&FlatTree::new(cfg).unwrap().materialize(mode).unwrap())
    }

    #[test]
    fn clos_mode_all_agg_links() {
        let d = dist(8, WiringPattern::Pattern1, &Mode::Clos);
        assert!(d.servers.iter().all(|&s| s == 0));
        assert!(d.edge_links.iter().all(|&e| e == 0));
        // every core: one agg link per pod
        assert!(d.agg_links.iter().all(|&a| a == 8));
    }

    #[test]
    fn property1_pattern1_uniform_when_divisible() {
        // k = 8: g = 4, m = 1, k pods → pattern 1 rotation covers every
        // position equally → exactly uniform server placement
        let d = dist(8, WiringPattern::Pattern1, &Mode::GlobalRandom);
        assert_eq!(d.server_spread(), 0, "servers per core: {:?}", d.servers);
        // total relocated servers = m · d · pods = 1·4·8 = 32 over 16 cores
        let total: u32 = d.servers.iter().sum();
        assert_eq!(total, 32);
        assert_eq!(d.servers[0], 2);
    }

    #[test]
    fn property2_pattern1_uniform_links() {
        let d = dist(8, WiringPattern::Pattern1, &Mode::GlobalRandom);
        assert_eq!(d.edge_link_spread(), 0, "edge links: {:?}", d.edge_links);
        assert_eq!(d.agg_link_spread(), 0, "agg links: {:?}", d.agg_links);
    }

    #[test]
    fn properties_bounded_for_auto_rule() {
        // Auto pattern selection keeps distributions near-uniform across
        // k; allow a small spread where exact uniformity is arithmetically
        // impossible
        for k in [4, 6, 8, 10, 12] {
            let cfg = FlatTreeConfig::for_fat_tree_k(k).unwrap();
            let d = dist(k, cfg.wiring, &Mode::GlobalRandom);
            let m = cfg.m as u32;
            assert!(
                d.server_spread() <= 2 * m,
                "k = {k}: server spread {} too large ({:?})",
                d.server_spread(),
                d.servers
            );
            assert!(
                d.edge_link_spread() <= 2 * cfg.n as u32,
                "k = {k}: edge-link spread {} too large",
                d.edge_link_spread()
            );
        }
    }

    #[test]
    fn local_mode_keeps_cores_serverless() {
        let d = dist(8, WiringPattern::Pattern2, &Mode::LocalRandom);
        assert!(d.servers.iter().all(|&s| s == 0));
        // cores see edge links through the local 4-port configuration
        let total_edge: u32 = d.edge_links.iter().sum();
        // n 4-port per edge pair × d × pods
        assert_eq!(total_edge as usize, 2 * 4 * 8);
    }

    #[test]
    fn total_core_links_conserved() {
        // per-core totals must equal the pod count in every mode
        for mode in [Mode::Clos, Mode::GlobalRandom, Mode::LocalRandom] {
            let d = dist(8, WiringPattern::Pattern2, &mode);
            for c in 0..d.servers.len() {
                assert_eq!(
                    d.servers[c] + d.edge_links[c] + d.agg_links[c],
                    8,
                    "core {c} in {mode:?}"
                );
            }
        }
    }
}
