//! Inter-Pod side wiring (§2.5).
//!
//! The 6-port converters on the left blade B of Pod `p+1` are cabled to
//! those on the right blade B of Pod `p` through their double side
//! connectors, using the paper's shifting pattern: converter `⟨i, j⟩` on
//! the left of Pod `p+1` pairs with converter
//! `⟨i, (w − 1 − j + i) mod w⟩` on the right of Pod `p` (`w = ⌊d/2⌋`,
//! row-local column indices) — the mirrored column shifted by the row
//! index, so that a column's converters fan out to `m` *different* columns
//! of the neighbor Pod.
//!
//! Row parity selects the pair's global-random-graph configuration: even
//! rows take *side* (peer-wise links E–E′, A–A′), odd rows take *cross*
//! (E–A′, A–E′), giving both peer-wise and edge–aggregation inter-Pod
//! links (§2.5).
//!
//! The Pod chain closes into a ring by default (`InterPodWiring::Ring`);
//! with `Path`, Pod 0's left blade and the last Pod's right blade stay
//! unpaired and their converters cannot take side/cross configurations.

use crate::config::InterPodWiring;
use crate::geometry::PodGeometry;

/// One side-connected converter pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SidePair {
    /// Flattened 6-port index of the right-blade member (in Pod `p`).
    pub right: usize,
    /// Flattened 6-port index of the left-blade member (in Pod `p+1`,
    /// modulo the ring).
    pub left: usize,
    /// The shared row; even → side, odd → cross in global-RG mode.
    pub row: usize,
}

/// Enumerates all side pairs under the given chaining.
pub fn side_pairs(geom: &PodGeometry, chaining: InterPodWiring) -> Vec<SidePair> {
    let w = geom.side_width();
    if w == 0 || geom.pods < 2 {
        return Vec::new();
    }
    let last_right_pod = match chaining {
        InterPodWiring::Ring => geom.pods, // pod pods-1 pairs with pod 0
        InterPodWiring::Path => geom.pods - 1, // open chain
    };
    let mut pairs = Vec::with_capacity(last_right_pod * w * geom.m);
    for p in 0..last_right_pod {
        let left_pod = (p + 1) % geom.pods;
        for i in 0..geom.m {
            for jl in 0..w {
                let jr_local = (w - 1 - jl + i) % w;
                pairs.push(SidePair {
                    right: geom.six_index(p, geom.right_global(jr_local), i),
                    left: geom.six_index(left_pod, jl, i),
                    row: i,
                });
            }
        }
    }
    pairs
}

/// Per-converter peer map: `peer[six_index] = Some(peer_six_index)` for
/// side-connected converters, `None` for middle columns and open-chain
/// boundaries.
pub fn peer_map(geom: &PodGeometry, chaining: InterPodWiring) -> Vec<Option<usize>> {
    let mut peer = vec![None; geom.six_count()];
    for pair in side_pairs(geom, chaining) {
        debug_assert!(peer[pair.right].is_none(), "double-paired converter");
        debug_assert!(peer[pair.left].is_none(), "double-paired converter");
        peer[pair.right] = Some(pair.left);
        peer[pair.left] = Some(pair.right);
    }
    peer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlatTreeConfig;
    use crate::geometry::BladeSide;

    fn geom(k: usize) -> PodGeometry {
        PodGeometry::new(&FlatTreeConfig::for_fat_tree_k(k).unwrap())
    }

    #[test]
    fn ring_pairs_every_side_converter() {
        let g = geom(8); // d = 4, w = 2, m = 1
        let peers = peer_map(&g, InterPodWiring::Ring);
        #[allow(clippy::needless_range_loop)] // idx is the converter id
        for idx in 0..g.six_count() {
            let (_, j, _) = g.six_site(idx);
            match g.side_of_column(j) {
                BladeSide::Middle => assert!(peers[idx].is_none()),
                _ => assert!(peers[idx].is_some(), "converter {idx} unpaired"),
            }
        }
    }

    #[test]
    fn peer_map_involutive() {
        let g = geom(8);
        let peers = peer_map(&g, InterPodWiring::Ring);
        for (idx, &p) in peers.iter().enumerate() {
            if let Some(p) = p {
                assert_eq!(peers[p], Some(idx), "peer map must be symmetric");
                assert_ne!(p, idx);
            }
        }
    }

    #[test]
    fn pairs_connect_adjacent_pods_same_row() {
        let g = geom(8);
        for pair in side_pairs(&g, InterPodWiring::Ring) {
            let (pr, jr, ir) = g.six_site(pair.right);
            let (pl, jl, il) = g.six_site(pair.left);
            assert_eq!((pr + 1) % g.pods, pl, "pods must be adjacent");
            assert_eq!(ir, il, "rows must match");
            assert_eq!(ir, pair.row);
            assert_eq!(g.side_of_column(jr), BladeSide::Right);
            assert_eq!(g.side_of_column(jl), BladeSide::Left);
        }
    }

    #[test]
    fn path_leaves_boundary_unpaired() {
        let g = geom(8);
        let peers = peer_map(&g, InterPodWiring::Path);
        // pod 0 left blade unpaired
        for jl in 0..g.side_width() {
            for i in 0..g.m {
                assert!(peers[g.six_index(0, jl, i)].is_none());
            }
        }
        // last pod right blade unpaired
        let last = g.pods - 1;
        for jr in 0..g.side_width() {
            for i in 0..g.m {
                assert!(peers[g.six_index(last, g.right_global(jr), i)].is_none());
            }
        }
    }

    #[test]
    fn shifting_pattern_fans_out_columns() {
        // a single right column's converters (varying row) must connect to
        // different left columns — the §2.5 goal. Use k = 16 (m = 2, w = 4).
        let g = geom(16);
        let pairs = side_pairs(&g, InterPodWiring::Ring);
        // collect, for right column j of pod 0, the left columns it reaches
        use std::collections::{HashMap, HashSet};
        let mut reach: HashMap<usize, HashSet<usize>> = HashMap::new();
        for pr in &pairs {
            let (p, jr, _) = g.six_site(pr.right);
            if p == 0 {
                let (_, jl, _) = g.six_site(pr.left);
                reach.entry(jr).or_default().insert(jl);
            }
        }
        for (jr, lefts) in reach {
            assert_eq!(
                lefts.len(),
                g.m,
                "right column {jr} should reach {} distinct left columns",
                g.m
            );
        }
    }

    #[test]
    fn mirrored_formula_matches_paper() {
        // spot-check the formula ⟨i, (w−1−j+i) mod w⟩ directly: k=16,
        // w=4: left ⟨0, 0⟩ ↔ right local col 3; left ⟨1, 0⟩ ↔ right local 0
        let g = geom(16);
        let pairs = side_pairs(&g, InterPodWiring::Ring);
        let find = |left_pod: usize, jl: usize, i: usize| -> usize {
            let li = g.six_index(left_pod, jl, i);
            let p = pairs.iter().find(|pr| pr.left == li).unwrap();
            let (_, jr, _) = g.six_site(p.right);
            g.right_local(jr)
        };
        assert_eq!(find(1, 0, 0), 3); // (4-1-0+0) % 4
        assert_eq!(find(1, 0, 1), 0); // (4-1-0+1) % 4
        assert_eq!(find(1, 2, 1), 2); // (4-1-2+1) % 4
    }

    #[test]
    fn single_pod_or_zero_width_no_pairs() {
        use ft_topo::ClosParams;
        let cfg = FlatTreeConfig {
            clos: ClosParams {
                pods: 1,
                d: 4,
                r: 1,
                h: 4,
                servers_per_edge: 4,
            },
            m: 1,
            n: 1,
            wiring: crate::config::WiringPattern::Pattern1,
            inter_pod: InterPodWiring::Ring,
        };
        let g = PodGeometry::new(&cfg);
        assert!(side_pairs(&g, InterPodWiring::Ring).is_empty());
    }

    #[test]
    fn two_pod_ring_has_both_directions() {
        use ft_topo::ClosParams;
        let cfg = FlatTreeConfig {
            clos: ClosParams {
                pods: 2,
                d: 4,
                r: 1,
                h: 4,
                servers_per_edge: 4,
            },
            m: 1,
            n: 1,
            wiring: crate::config::WiringPattern::Pattern1,
            inter_pod: InterPodWiring::Ring,
        };
        let g = PodGeometry::new(&cfg);
        let pairs = side_pairs(&g, InterPodWiring::Ring);
        // pod0-right ↔ pod1-left and pod1-right ↔ pod0-left
        assert_eq!(pairs.len(), 2 * g.side_width() * g.m);
        let peers = peer_map(&g, InterPodWiring::Ring);
        assert!(peers.iter().all(|p| p.is_some()));
    }
}
