//! The assembled flat-tree: construction and mode materialization.
//!
//! [`FlatTree::new`] precomputes everything static — converter sites, the
//! Pod-core wiring assignment, the inter-Pod peer map — and
//! [`FlatTree::materialize`] turns any [`Mode`] into a logical
//! `ft_topo::Network`. Materialization never allocates new hardware: every
//! mode uses exactly the switches, servers and cable plant of the Clos
//! network it was built from (asserted by the `Network` builder's port
//! budgets and verified again by tests).

use crate::config::{FlatTreeConfig, FlatTreeError, WiringPattern};
use crate::converter::{FourPortConfig, Port, SixPortConfig};
use crate::geometry::PodGeometry;
use crate::interpod::peer_map;
use crate::mode::{Mode, PodMode};
use crate::wiring::group_wiring;
use ft_graph::NodeId;
use ft_topo::{FatTreeLayout, Network, NetworkBuilder};

/// A full converter-state assignment: one configuration per converter.
///
/// Produced by [`FlatTree::resolve`]; the difference between two states is
/// what the control plane (`ft-control`) pushes to the hardware during a
/// conversion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConverterStates {
    /// Per 4-port converter (indexed by `PodGeometry::four_index`).
    pub four: Vec<FourPortConfig>,
    /// Per 6-port converter (indexed by `PodGeometry::six_index`).
    pub six: Vec<SixPortConfig>,
}

impl ConverterStates {
    /// Number of converters whose configuration differs from `other` — the
    /// size of a reconfiguration.
    pub fn diff_count(&self, other: &ConverterStates) -> usize {
        let f = self
            .four
            .iter()
            .zip(&other.four)
            .filter(|(a, b)| a != b)
            .count();
        let s = self
            .six
            .iter()
            .zip(&other.six)
            .filter(|(a, b)| a != b)
            .count();
        f + s
    }
}

/// A flat-tree network: the paper's architecture, ready to materialize any
/// operation mode.
#[derive(Clone, Debug)]
pub struct FlatTree {
    cfg: FlatTreeConfig,
    geom: PodGeometry,
    layout: FatTreeLayout,
    pattern: WiringPattern,
    /// absolute core index wired to each 4-port converter
    four_core: Vec<usize>,
    /// absolute core index wired to each 6-port converter
    six_core: Vec<usize>,
    /// plain aggregation connectors: (pod, edge index, core)
    agg_connectors: Vec<(usize, usize, usize)>,
    /// side peer of each 6-port converter
    peer: Vec<Option<usize>>,
}

impl FlatTree {
    /// Builds the static structures for a validated configuration.
    pub fn new(cfg: FlatTreeConfig) -> Result<Self, FlatTreeError> {
        cfg.validate()?;
        let geom = PodGeometry::new(&cfg);
        let layout =
            FatTreeLayout::new(cfg.clos).map_err(|e| FlatTreeError::BadClos(e.to_string()))?;
        let pattern = cfg.resolved_pattern();
        let mut four_core = vec![usize::MAX; geom.four_count()];
        let mut six_core = vec![usize::MAX; geom.six_count()];
        let mut agg_connectors = Vec::new();
        for p in 0..cfg.clos.pods {
            for j in 0..cfg.clos.d {
                let gw = group_wiring(&cfg, pattern, p, j)?;
                for (i, &core) in gw.six_core.iter().enumerate() {
                    six_core[geom.six_index(p, j, i)] = core;
                }
                for (i, &core) in gw.four_core.iter().enumerate() {
                    four_core[geom.four_index(p, j, i)] = core;
                }
                for &core in &gw.agg_cores {
                    agg_connectors.push((p, j, core));
                }
            }
        }
        let peer = peer_map(&geom, cfg.inter_pod);
        Ok(FlatTree {
            cfg,
            geom,
            layout,
            pattern,
            four_core,
            six_core,
            agg_connectors,
            peer,
        })
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &FlatTreeConfig {
        &self.cfg
    }

    /// Converter site index math.
    pub fn geometry(&self) -> &PodGeometry {
        &self.geom
    }

    /// Node-id layout (shared with `ft_topo::fat_tree`).
    pub fn layout(&self) -> &FatTreeLayout {
        &self.layout
    }

    /// The wiring pattern in effect (PaperRule resolved).
    pub fn pattern(&self) -> WiringPattern {
        self.pattern
    }

    /// Core switch wired to 4-port converter `idx`.
    pub fn four_core(&self, idx: usize) -> usize {
        self.four_core[idx]
    }

    /// Core switch wired to 6-port converter `idx`.
    pub fn six_core(&self, idx: usize) -> usize {
        self.six_core[idx]
    }

    /// Side peer of 6-port converter `idx`, if wired.
    pub fn peer(&self, idx: usize) -> Option<usize> {
        self.peer[idx]
    }

    /// Resolves a [`Mode`] into per-converter configurations.
    ///
    /// Global-random Pods use side (even rows) / cross (odd rows) for
    /// 6-port converters whose peer Pod is also global-random; 6-port
    /// converters without such a peer (middle columns, open-chain
    /// boundaries, zone boundaries in hybrid mode) fall back to *local* —
    /// the server still relocates (to the aggregation switch) and an
    /// edge–core link still appears, so no port dangles. This boundary
    /// behaviour is a design decision documented in DESIGN.md; the paper
    /// leaves it unspecified.
    pub fn resolve(&self, mode: &Mode) -> Result<ConverterStates, FlatTreeError> {
        let modes = mode.pod_modes(self.cfg.clos.pods)?;
        let mut four = vec![FourPortConfig::Default; self.geom.four_count()];
        let mut six = vec![SixPortConfig::Default; self.geom.six_count()];
        #[allow(clippy::needless_range_loop)] // idx is the converter id, not a position
        for idx in 0..self.geom.four_count() {
            let (p, _, _) = self.geom.four_site(idx);
            four[idx] = match modes[p] {
                PodMode::Clos => FourPortConfig::Default,
                PodMode::LocalRandom | PodMode::GlobalRandom => FourPortConfig::Local,
            };
        }
        #[allow(clippy::needless_range_loop)] // idx is the converter id, not a position
        for idx in 0..self.geom.six_count() {
            let (p, _, i) = self.geom.six_site(idx);
            six[idx] = match modes[p] {
                PodMode::Clos | PodMode::LocalRandom => SixPortConfig::Default,
                PodMode::GlobalRandom => {
                    let peer_global = self.peer[idx].is_some_and(|peer| {
                        let (pp, _, _) = self.geom.six_site(peer);
                        modes[pp] == PodMode::GlobalRandom
                    });
                    if peer_global {
                        if i % 2 == 0 {
                            SixPortConfig::Side
                        } else {
                            SixPortConfig::Cross
                        }
                    } else {
                        SixPortConfig::Local
                    }
                }
            };
        }
        Ok(ConverterStates { four, six })
    }

    /// Materializes an operation mode into a logical network.
    ///
    /// For a [`FlatTree`] built through [`FlatTree::new`] with a valid mode
    /// this cannot fail — internal wiring invariants guarantee the builder
    /// succeeds. Invalid hybrid mode lengths surface as
    /// [`FlatTreeError::BadModeLength`]; builder-level invariant violations
    /// (which would indicate a bug in the wiring math) surface as
    /// [`FlatTreeError::Internal`] instead of aborting the process.
    pub fn materialize(&self, mode: &Mode) -> Result<Network, FlatTreeError> {
        let states = self.resolve(mode)?;
        let mut net = self.materialize_states(&states)?;
        net.set_name(format!(
            "flat-tree(pods={}, d={}, m={}, n={}, mode={})",
            self.cfg.clos.pods,
            self.cfg.clos.d,
            self.cfg.m,
            self.cfg.n,
            mode.label()
        ));
        Ok(net)
    }

    /// Materializes an explicit converter-state assignment (power-user
    /// API; the control plane uses it to realize custom conversions).
    ///
    /// Validates side-pair compatibility: a converter in side/cross must
    /// have a peer holding the *same* configuration.
    pub fn materialize_states(&self, states: &ConverterStates) -> Result<Network, FlatTreeError> {
        assert_eq!(states.four.len(), self.geom.four_count());
        assert_eq!(states.six.len(), self.geom.six_count());
        // Pair validation.
        for idx in 0..self.geom.six_count() {
            if states.six[idx].uses_side() {
                match self.peer[idx] {
                    None => return Err(FlatTreeError::UnpairedSide { six_index: idx }),
                    Some(peer) => {
                        if states.six[peer] != states.six[idx] {
                            return Err(FlatTreeError::IncompatiblePair { six_index: idx });
                        }
                    }
                }
            }
        }

        let pr = &self.cfg.clos;
        let mut b = NetworkBuilder::new("flat-tree");
        // Builder failures indicate internal invariant violations (the
        // device and port budgets are static), so they map to `Internal`.
        let build_err =
            |e| FlatTreeError::Internal(format!("materialization violated port budgets: {e}"));
        self.layout.add_devices(&mut b).map_err(build_err)?;
        self.layout.add_edge_agg_mesh(&mut b).map_err(build_err)?;

        // Directly cabled servers.
        for p in 0..pr.pods {
            for j in 0..pr.d {
                for slot in self.geom.direct_slots() {
                    b.add_link(self.layout.server(p, j, slot), self.layout.edge(p, j))
                        .map_err(build_err)?;
                }
            }
        }
        // Plain aggregation connectors.
        for &(p, j, core) in &self.agg_connectors {
            b.add_link(self.layout.agg_of_edge(p, j), self.layout.core(core))
                .map_err(build_err)?;
        }
        // 4-port converters.
        for idx in 0..self.geom.four_count() {
            let (p, j, i) = self.geom.four_site(idx);
            let node = |port: Port| {
                self.port_node(port, p, j, self.geom.four_slot(i), self.four_core[idx])
            };
            for (a, z) in states.four[idx].links() {
                b.add_link(node(a), node(z)).map_err(build_err)?;
            }
        }
        // 6-port converters: local links, then pair links once per pair.
        for idx in 0..self.geom.six_count() {
            let (p, j, i) = self.geom.six_site(idx);
            let node =
                |port: Port| self.port_node(port, p, j, self.geom.six_slot(i), self.six_core[idx]);
            for &(a, z) in states.six[idx].local_links() {
                b.add_link(node(a), node(z)).map_err(build_err)?;
            }
            if states.six[idx].uses_side() {
                // Pair validation above guarantees a peer exists.
                let Some(peer) = self.peer[idx] else {
                    return Err(FlatTreeError::UnpairedSide { six_index: idx });
                };
                if idx < peer {
                    let (pp, pj, pi) = self.geom.six_site(peer);
                    let pnode = |port: Port| {
                        self.port_node(port, pp, pj, self.geom.six_slot(pi), self.six_core[peer])
                    };
                    for (a, z) in states.six[idx].pair_links().into_iter().flatten() {
                        b.add_link(node(a), pnode(z)).map_err(build_err)?;
                    }
                }
            }
        }
        b.build()
            .map_err(|e| FlatTreeError::Internal(format!("a server was left unattached: {e}")))
    }

    /// Maps a converter-local port to the concrete node it splices.
    fn port_node(&self, port: Port, p: usize, j: usize, slot: usize, core: usize) -> NodeId {
        match port {
            Port::Server => self.layout.server(p, j, slot),
            Port::Edge => self.layout.edge(p, j),
            Port::Aggregation => self.layout.agg_of_edge(p, j),
            Port::Core => self.layout.core(core),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_topo::fat_tree;

    fn ft(k: usize) -> FlatTree {
        FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap()
    }

    #[test]
    fn clos_mode_reproduces_fat_tree_exactly() {
        for k in [4, 6, 8, 10] {
            let flat = ft(k).materialize(&Mode::Clos).unwrap();
            let reference = fat_tree(k).unwrap();
            assert_eq!(
                flat.graph().canonical_edges(),
                reference.graph().canonical_edges(),
                "k = {k}: flat-tree Clos mode must be link-identical to fat-tree"
            );
        }
    }

    #[test]
    fn all_modes_same_equipment() {
        let f = ft(8);
        let reference = fat_tree(8).unwrap().equipment();
        for mode in [Mode::Clos, Mode::GlobalRandom, Mode::LocalRandom] {
            let net = f.materialize(&mode).unwrap();
            assert_eq!(net.equipment(), reference, "mode {mode:?}");
            net.validate().unwrap();
        }
    }

    #[test]
    fn all_modes_connected() {
        use ft_graph::stats::is_connected;
        let f = ft(8);
        for mode in [Mode::Clos, Mode::GlobalRandom, Mode::LocalRandom] {
            assert!(
                is_connected(f.materialize(&mode).unwrap().graph()),
                "mode {mode:?} disconnected"
            );
        }
    }

    #[test]
    fn all_switch_ports_used_in_every_mode() {
        let f = ft(8);
        for mode in [Mode::Clos, Mode::GlobalRandom, Mode::LocalRandom] {
            let net = f.materialize(&mode).unwrap();
            for sw in net.switches() {
                assert_eq!(
                    net.graph().degree(sw),
                    8,
                    "mode {mode:?}: switch {sw:?} must use all k ports"
                );
            }
        }
    }

    #[test]
    fn global_mode_relocates_servers() {
        let k = 8;
        let f = ft(k);
        let net = f.materialize(&Mode::GlobalRandom).unwrap();
        let counts = net.server_counts();
        let cores = k * k / 4;
        let servers_on_core: u32 = counts[..cores].iter().sum();
        // every 6-port converter parks its server on a core, except ones
        // that fell back to local (none for even d and ring wiring)
        assert_eq!(servers_on_core as usize, f.geometry().six_count());
        // 4-port converters put servers on aggregation switches
        let mut agg_servers = 0u32;
        for sw in net.switches() {
            if net.kind(sw) == ft_topo::DeviceKind::Aggregation {
                agg_servers += counts[sw.index()];
            }
        }
        assert_eq!(agg_servers as usize, f.geometry().four_count());
    }

    #[test]
    fn local_mode_splits_servers_edge_agg() {
        let k = 8;
        let f = ft(k);
        let net = f.materialize(&Mode::LocalRandom).unwrap();
        let counts = net.server_counts();
        let cores = k * k / 4;
        assert!(
            counts[..cores].iter().all(|&c| c == 0),
            "no servers on cores"
        );
        let mut edge = 0u32;
        let mut agg = 0u32;
        for sw in net.switches() {
            match net.kind(sw) {
                ft_topo::DeviceKind::Edge => edge += counts[sw.index()],
                ft_topo::DeviceKind::Aggregation => agg += counts[sw.index()],
                _ => {}
            }
        }
        // n of spe servers per edge moved to agg
        let spe = k / 2;
        let expect_agg = (f.config().n * k * k / 2) as u32; // n per edge × d×pods edges
        assert_eq!(agg, expect_agg);
        assert_eq!(edge + agg, (spe * k * k / 2) as u32);
    }

    #[test]
    fn global_mode_has_interpod_side_links() {
        let f = ft(8);
        let net = f.materialize(&Mode::GlobalRandom).unwrap();
        // count switch-switch links between different pods that skip cores
        let mut side_links = 0;
        for (_, a, b) in net.graph().edges() {
            if a.index() < net.num_switches() && b.index() < net.num_switches() {
                if let (Some(pa), Some(pb)) = (net.pod(a), net.pod(b)) {
                    if pa != pb {
                        side_links += 1;
                    }
                }
            }
        }
        // each side pair contributes 2 links; ring over 8 pods, w = 2, m = 1
        let pairs = 8 * 2;
        assert_eq!(side_links, 2 * pairs);
    }

    #[test]
    fn hybrid_boundary_falls_back_to_local() {
        let k = 8;
        let f = ft(k);
        // pods 0..4 global, 4..8 local
        let mode = Mode::two_zone(k, 4);
        let states = f.resolve(&mode).unwrap();
        let g = f.geometry();
        // right blade of pod 3 faces pod 4 (local) → its six-ports fall
        // back to Local
        for jr in 0..g.side_width() {
            for i in 0..g.m {
                let idx = g.six_index(3, g.right_global(jr), i);
                assert_eq!(states.six[idx], SixPortConfig::Local);
            }
        }
        // interior pair (pod 1 right ↔ pod 2 left) stays side/cross
        let idx = g.six_index(1, g.right_global(0), 0);
        assert!(states.six[idx].uses_side());
        // and materialization must succeed with full port usage
        let net = f.materialize(&mode).unwrap();
        net.validate().unwrap();
        assert_eq!(net.equipment(), fat_tree(k).unwrap().equipment());
    }

    #[test]
    fn row_parity_side_cross() {
        let f = ft(16); // m = 2 → rows 0 (side) and 1 (cross)
        let states = f.resolve(&Mode::GlobalRandom).unwrap();
        let g = f.geometry();
        for idx in 0..g.six_count() {
            let (_, j, i) = g.six_site(idx);
            if g.side_of_column(j) != crate::geometry::BladeSide::Middle {
                let expect = if i % 2 == 0 {
                    SixPortConfig::Side
                } else {
                    SixPortConfig::Cross
                };
                assert_eq!(states.six[idx], expect);
            }
        }
    }

    #[test]
    fn custom_states_pair_validation() {
        let f = ft(8);
        let mut states = f.resolve(&Mode::Clos).unwrap();
        // set one paired converter to Side without its peer
        let g = f.geometry();
        let idx = g.six_index(0, g.right_global(0), 0);
        states.six[idx] = SixPortConfig::Side;
        assert!(matches!(
            f.materialize_states(&states),
            Err(FlatTreeError::IncompatiblePair { .. })
        ));
        // fixing the peer makes it valid
        let peer = f.peer(idx).unwrap();
        states.six[peer] = SixPortConfig::Side;
        assert!(f.materialize_states(&states).is_ok());
    }

    #[test]
    fn unpaired_side_rejected() {
        // k = 6 has a middle column whose six-ports are unpaired
        let f = ft(6);
        let g = f.geometry();
        let mut states = f.resolve(&Mode::Clos).unwrap();
        let middle = g.six_index(0, 1, 0); // d = 3 → column 1 is middle
        assert!(f.peer(middle).is_none());
        states.six[middle] = SixPortConfig::Cross;
        assert!(matches!(
            f.materialize_states(&states),
            Err(FlatTreeError::UnpairedSide { .. })
        ));
    }

    #[test]
    fn odd_d_global_mode_works() {
        // k = 6: d = 3 (odd) — middle column falls back to Local
        let f = ft(6);
        let net = f.materialize(&Mode::GlobalRandom).unwrap();
        net.validate().unwrap();
        assert_eq!(net.equipment(), fat_tree(6).unwrap().equipment());
        let states = f.resolve(&Mode::GlobalRandom).unwrap();
        let g = f.geometry();
        let middle = g.six_index(2, 1, 0);
        assert_eq!(states.six[middle], SixPortConfig::Local);
    }

    #[test]
    fn diff_count_between_modes() {
        let f = ft(8);
        let clos = f.resolve(&Mode::Clos).unwrap();
        let global = f.resolve(&Mode::GlobalRandom).unwrap();
        let local = f.resolve(&Mode::LocalRandom).unwrap();
        assert_eq!(clos.diff_count(&clos), 0);
        // Clos → LocalRandom flips exactly every 4-port converter
        assert_eq!(clos.diff_count(&local), f.geometry().four_count());
        // Clos → GlobalRandom flips everything (all 4-ports + all 6-ports)
        assert_eq!(
            clos.diff_count(&global),
            f.geometry().four_count() + f.geometry().six_count()
        );
    }

    /// Flat-tree targets *generic* Clos networks, "especially
    /// oversubscribed" ones (§3.1). Exercise an r = 2, oversubscribed
    /// layout: 6 Pods of 4 edge / 2 aggregation switches, 6 servers per
    /// edge (3:2 oversubscription at the edge layer).
    fn oversubscribed() -> FlatTree {
        use ft_topo::ClosParams;
        let cfg = FlatTreeConfig {
            clos: ClosParams {
                pods: 6,
                d: 4,
                r: 2,
                h: 4,
                servers_per_edge: 6,
            },
            m: 1,
            n: 1,
            wiring: crate::config::WiringPattern::Auto,
            inter_pod: crate::config::InterPodWiring::Ring,
        };
        FlatTree::new(cfg).unwrap()
    }

    #[test]
    fn oversubscribed_clos_all_modes_valid() {
        use ft_graph::stats::is_connected;
        let f = oversubscribed();
        let reference = f.materialize(&Mode::Clos).unwrap();
        reference.validate().unwrap();
        for mode in [Mode::Clos, Mode::GlobalRandom, Mode::LocalRandom] {
            let net = f.materialize(&mode).unwrap();
            net.validate().unwrap();
            assert!(is_connected(net.graph()), "{mode:?}");
            assert_eq!(net.equipment(), reference.equipment(), "{mode:?}");
        }
    }

    #[test]
    fn oversubscribed_clos_mode_matches_generic_clos_structure() {
        use ft_topo::clos;
        let f = oversubscribed();
        let flat = f.materialize(&Mode::Clos).unwrap();
        let generic = clos(f.config().clos).unwrap();
        // For r > 1 the flat-tree core grouping (by edge index) differs
        // from classic Clos grouping (by aggregation index), so the edge
        // sets are not identical — but the networks must agree on
        // equipment and per-kind degree structure.
        assert_eq!(flat.equipment(), generic.equipment());
        let degrees = |net: &ft_topo::Network| {
            let mut v: Vec<(ft_topo::DeviceKind, usize)> = net
                .switches()
                .map(|s| (net.kind(s), net.graph().degree(s)))
                .collect();
            v.sort_by_key(|&(k, d)| (format!("{k:?}"), d));
            v
        };
        assert_eq!(degrees(&flat), degrees(&generic));
    }

    #[test]
    fn oversubscribed_flattening_shortens_paths() {
        use ft_metrics::path_length::average_server_path_length;
        let f = oversubscribed();
        let clos = average_server_path_length(&f.materialize(&Mode::Clos).unwrap());
        let flat = average_server_path_length(&f.materialize(&Mode::GlobalRandom).unwrap());
        assert!(flat < clos, "flat {flat} vs clos {clos}");
    }

    #[test]
    fn oversubscribed_r2_shares_agg_across_edges() {
        // with r = 2, edges 0,1 share agg 0: its converter-driven links
        // must respect the agg port budget (validated by the builder), and
        // agg_of_edge must pair correctly
        let f = oversubscribed();
        let l = f.layout();
        assert_eq!(l.agg_of_edge(0, 0), l.agg_of_edge(0, 1));
        assert_ne!(l.agg_of_edge(0, 1), l.agg_of_edge(0, 2));
    }

    #[test]
    fn flattens_path_length() {
        use ft_metrics::path_length::average_server_path_length;
        let f = ft(8);
        let clos = average_server_path_length(&f.materialize(&Mode::Clos).unwrap());
        let flat = average_server_path_length(&f.materialize(&Mode::GlobalRandom).unwrap());
        assert!(
            flat < clos,
            "global-RG APL {flat} must beat Clos APL {clos}"
        );
    }
}
