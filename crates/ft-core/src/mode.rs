//! Operation modes: per-Pod topology selection (§2.1, §3.4).

use crate::config::FlatTreeError;

/// The topology a single Pod participates in.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum PodMode {
    /// Original Clos connections (all converters default).
    Clos,
    /// Approximated local random graph inside the Pod (Figure 2d): 4-port
    /// local, 6-port default — half the servers move to aggregation
    /// switches, edge–core links appear, Pod-core wiring stays Clos-like.
    LocalRandom,
    /// Part of the approximated global random graph (Figure 2c): 4-port
    /// local, 6-port side/cross by row parity — servers spread over edge,
    /// aggregation *and* core switches, Pods interconnect directly.
    GlobalRandom,
}

/// A whole-network operation mode.
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum Mode {
    /// Every Pod in [`PodMode::Clos`]: reproduces the fat-tree exactly.
    Clos,
    /// Every Pod in [`PodMode::GlobalRandom`].
    GlobalRandom,
    /// Every Pod in [`PodMode::LocalRandom`].
    LocalRandom,
    /// Arbitrary per-Pod assignment (the §3.4 hybrid operation; zones are
    /// contiguous runs of Pods sharing a mode).
    Hybrid(Vec<PodMode>),
}

impl Mode {
    /// Expands to one [`PodMode`] per Pod.
    pub fn pod_modes(&self, pods: usize) -> Result<Vec<PodMode>, FlatTreeError> {
        match self {
            Mode::Clos => Ok(vec![PodMode::Clos; pods]),
            Mode::GlobalRandom => Ok(vec![PodMode::GlobalRandom; pods]),
            Mode::LocalRandom => Ok(vec![PodMode::LocalRandom; pods]),
            Mode::Hybrid(v) => {
                if v.len() != pods {
                    Err(FlatTreeError::BadModeLength {
                        got: v.len(),
                        want: pods,
                    })
                } else {
                    Ok(v.clone())
                }
            }
        }
    }

    /// A two-zone hybrid: the first `global_pods` Pods run global-random,
    /// the rest local-random (the §3.4 evaluation setup).
    pub fn two_zone(pods: usize, global_pods: usize) -> Mode {
        assert!(global_pods <= pods, "zone larger than network");
        let mut v = vec![PodMode::GlobalRandom; global_pods];
        v.extend(vec![PodMode::LocalRandom; pods - global_pods]);
        Mode::Hybrid(v)
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Mode::Clos => "clos".into(),
            Mode::GlobalRandom => "global-rg".into(),
            Mode::LocalRandom => "local-rg".into(),
            Mode::Hybrid(v) => {
                let g = v.iter().filter(|&&m| m == PodMode::GlobalRandom).count();
                let l = v.iter().filter(|&&m| m == PodMode::LocalRandom).count();
                let c = v.len() - g - l;
                format!("hybrid(g={g},l={l},c={c})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_modes_expand() {
        assert_eq!(Mode::Clos.pod_modes(3).unwrap(), vec![PodMode::Clos; 3]);
        assert_eq!(
            Mode::GlobalRandom.pod_modes(2).unwrap(),
            vec![PodMode::GlobalRandom; 2]
        );
    }

    #[test]
    fn hybrid_length_checked() {
        let m = Mode::Hybrid(vec![PodMode::Clos, PodMode::LocalRandom]);
        assert!(m.pod_modes(2).is_ok());
        assert!(matches!(
            m.pod_modes(3),
            Err(FlatTreeError::BadModeLength { got: 2, want: 3 })
        ));
    }

    #[test]
    fn two_zone_layout() {
        let m = Mode::two_zone(5, 2);
        let v = m.pod_modes(5).unwrap();
        assert_eq!(&v[..2], &[PodMode::GlobalRandom; 2]);
        assert_eq!(&v[2..], &[PodMode::LocalRandom; 3]);
    }

    #[test]
    fn labels() {
        assert_eq!(Mode::Clos.label(), "clos");
        assert_eq!(Mode::two_zone(4, 1).label(), "hybrid(g=1,l=3,c=0)");
    }

    #[test]
    #[should_panic(expected = "zone larger")]
    fn two_zone_bounds() {
        let _ = Mode::two_zone(2, 3);
    }
}
