//! Flat-tree configuration and validation.

use ft_topo::ClosParams;
use std::fmt;

/// The Pod-core wiring pattern (§2.3, Figure 4).
///
/// Per edge index `j`, each Pod's `h/r` connectors (m blade-B, then n
/// blade-A, then aggregation connectors) are mapped to the group of `h/r`
/// core switches starting at a per-Pod rotation offset, wrapping within the
/// group.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum WiringPattern {
    /// Pattern 1: blade-B blocks packed continuously Pod by Pod — Pod `p`
    /// starts at offset `p·m`.
    Pattern1,
    /// Pattern 2: one extra core switch of advance per Pod — Pod `p` starts
    /// at offset `p·(m+1)`.
    Pattern2,
    /// The paper's §3.2 rule: Pattern 2 when the fat-tree parameter is a
    /// multiple of 4 (where Pattern 1's rotation repeats quickly and
    /// reduces wiring diversity), else Pattern 1. Resolved against the
    /// group size at build time.
    PaperRule,
    /// Pick the pattern that best preserves Property 1 (uniform server
    /// distribution over cores), breaking ties toward more distinct per-Pod
    /// offsets (the paper's diversity argument). The literal Pattern 2
    /// rotation degenerates when `(m+1)` divides the group size — every Pod
    /// lands on the same offset and some cores receive only servers, which
    /// can even disconnect the fabric — so `Auto` is the default for
    /// library-constructed configurations (deviation documented in
    /// DESIGN.md).
    Auto,
}

impl WiringPattern {
    /// Rotation offset of Pod `p` within a core group of size `g` for
    /// blade-B width `m`.
    ///
    /// Returns `None` for `PaperRule` and `Auto`: they are selection
    /// policies, not concrete rotations — resolve them with
    /// [`FlatTreeConfig::resolved_pattern`] first.
    pub fn offset(self, p: usize, m: usize, g: usize) -> Option<usize> {
        debug_assert!(g > 0);
        match self {
            WiringPattern::Pattern1 => Some((p * m) % g),
            WiringPattern::Pattern2 => Some((p * (m + 1)) % g),
            WiringPattern::PaperRule | WiringPattern::Auto => None,
        }
    }

    /// Blade-B coverage statistics of a concrete pattern: how many Pods'
    /// blade-B connectors land on each group position, summarized as
    /// `(max − min, distinct offsets)`.
    ///
    /// Selection policies (`PaperRule`, `Auto`) have no rotation of their
    /// own and report the degenerate `(usize::MAX, 0)`.
    pub fn coverage(self, m: usize, g: usize, pods: usize) -> (usize, usize) {
        let mut counts = vec![0usize; g];
        let mut offsets = std::collections::HashSet::new();
        for p in 0..pods {
            let Some(off) = self.offset(p, m, g) else {
                return (usize::MAX, 0);
            };
            offsets.insert(off);
            for t in 0..m.min(g) {
                // bounds: the % g keeps the slot inside counts (len g)
                counts[(off + t) % g] += 1;
            }
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        (max - min, offsets.len())
    }
}

/// How adjacent Pods' side connectors are chained (§2.5).
///
/// The paper wires the left blade B of Pod `p+1` to the right blade B of
/// Pod `p` but leaves the boundary unspecified; a ring keeps every Pod
/// symmetric (Pod 0's left blade pairs with the last Pod's right blade).
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum InterPodWiring {
    /// Close the Pod chain into a ring (default; requires ≥ 2 Pods for any
    /// pairing to exist).
    Ring,
    /// Leave the chain open: the first Pod's left blade and the last Pod's
    /// right blade stay unpaired (their 6-port converters cannot take
    /// side/cross configurations).
    Path,
}

/// Errors from flat-tree construction and conversion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlatTreeError {
    /// The underlying Clos parameters are invalid.
    BadClos(String),
    /// `m + n` exceeds what the Pod geometry supports.
    TooManyConverters {
        /// Requested 6-port converters per edge/agg pair.
        m: usize,
        /// Requested 4-port converters per edge/agg pair.
        n: usize,
        /// The binding limit: `min(servers_per_edge, h/r)`.
        limit: usize,
    },
    /// A custom conversion assigned incompatible configurations to a
    /// side-connected converter pair.
    IncompatiblePair {
        /// Flattened 6-port converter index of the offending converter.
        six_index: usize,
    },
    /// A side/cross configuration was requested for a 6-port converter that
    /// has no peer (middle column, or chain boundary under
    /// [`InterPodWiring::Path`]).
    UnpairedSide {
        /// Flattened 6-port converter index.
        six_index: usize,
    },
    /// A per-Pod mode list had the wrong length.
    BadModeLength {
        /// Modes supplied.
        got: usize,
        /// Pods in the network.
        want: usize,
    },
    /// A wiring computation received an unresolved pattern policy
    /// (`PaperRule`/`Auto`) where a concrete rotation was required.
    UnresolvedPattern(WiringPattern),
    /// A profiling sweep produced no candidate configurations.
    EmptySweep {
        /// The fat-tree parameter being profiled.
        k: usize,
    },
    /// An internal invariant was violated while assembling a network —
    /// indicates a bug in the wiring math, not bad input.
    Internal(String),
}

impl fmt::Display for FlatTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatTreeError::BadClos(msg) => write!(f, "invalid Clos parameters: {msg}"),
            FlatTreeError::TooManyConverters { m, n, limit } => write!(
                f,
                "m + n = {} exceeds the per-pair limit {limit} (m = {m}, n = {n})",
                m + n
            ),
            FlatTreeError::IncompatiblePair { six_index } => write!(
                f,
                "6-port converter {six_index} and its peer have incompatible side configurations"
            ),
            FlatTreeError::UnpairedSide { six_index } => write!(
                f,
                "6-port converter {six_index} has no side peer but was configured side/cross"
            ),
            FlatTreeError::BadModeLength { got, want } => {
                write!(
                    f,
                    "per-Pod mode list has {got} entries, network has {want} Pods"
                )
            }
            FlatTreeError::UnresolvedPattern(p) => {
                write!(
                    f,
                    "wiring pattern {p:?} must be resolved to a concrete rotation first"
                )
            }
            FlatTreeError::EmptySweep { k } => {
                write!(f, "profiling sweep for k = {k} produced no candidates")
            }
            FlatTreeError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for FlatTreeError {}

/// Full configuration of a flat-tree network.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct FlatTreeConfig {
    /// The underlying Clos geometry (the paper's `d`, `r`, `h`, Pods,
    /// servers per edge switch).
    pub clos: ClosParams,
    /// 6-port converters per edge/aggregation pair — the number of servers
    /// relocatable to *core* switches (§2.4).
    pub m: usize,
    /// 4-port converters per edge/aggregation pair — the number of servers
    /// relocatable to *aggregation* switches.
    pub n: usize,
    /// Pod-core wiring pattern.
    pub wiring: WiringPattern,
    /// Inter-Pod side-connector chaining.
    pub inter_pod: InterPodWiring,
}

impl FlatTreeConfig {
    /// The paper's evaluated configuration for fat-tree parameter `k`
    /// (§3.2): `m = k/8`, `n = 2k/8` (rounded to the closest integer),
    /// pattern per the paper's rule, ring inter-Pod wiring.
    pub fn for_fat_tree_k(k: usize) -> Result<Self, FlatTreeError> {
        let m = round_div(k, 8).max(1);
        let n = round_div(2 * k, 8).max(1);
        Self::for_fat_tree_k_mn(k, m, n)
    }

    /// Fat-tree-based flat-tree with explicit `m`, `n` (used by the §3.2
    /// profiling sweep).
    pub fn for_fat_tree_k_mn(k: usize, m: usize, n: usize) -> Result<Self, FlatTreeError> {
        let clos = ClosParams::fat_tree(k).map_err(|e| FlatTreeError::BadClos(e.to_string()))?;
        let cfg = FlatTreeConfig {
            clos,
            m,
            n,
            wiring: WiringPattern::Auto,
            inter_pod: InterPodWiring::Ring,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks geometric feasibility.
    pub fn validate(&self) -> Result<(), FlatTreeError> {
        self.clos
            .validate()
            .map_err(|e| FlatTreeError::BadClos(e.to_string()))?;
        // Each converter consumes one server slot on the edge switch and
        // one core connector of the edge's group.
        let limit = self.clos.servers_per_edge.min(self.clos.group_size());
        if self.m + self.n > limit {
            return Err(FlatTreeError::TooManyConverters {
                m: self.m,
                n: self.n,
                limit,
            });
        }
        Ok(())
    }

    /// The wiring pattern with selection policies resolved to a concrete
    /// rotation.
    ///
    /// * [`WiringPattern::PaperRule`]: Pattern 2 when k ≡ 0 (mod 4) —
    ///   equivalently when the group size `h/r = k/2` is even — else
    ///   Pattern 1 (§3.2).
    /// * [`WiringPattern::Auto`]: the pattern with the more uniform blade-B
    ///   coverage (Property 1); ties broken by more distinct per-Pod
    ///   offsets, then by the paper's rule.
    pub fn resolved_pattern(&self) -> WiringPattern {
        let g = self.clos.group_size();
        let paper_choice = if g.is_multiple_of(2) {
            WiringPattern::Pattern2
        } else {
            WiringPattern::Pattern1
        };
        match self.wiring {
            WiringPattern::PaperRule => paper_choice,
            WiringPattern::Auto => {
                let (s1, d1) = WiringPattern::Pattern1.coverage(self.m, g, self.clos.pods);
                let (s2, d2) = WiringPattern::Pattern2.coverage(self.m, g, self.clos.pods);
                match (s1.cmp(&s2), d1.cmp(&d2)) {
                    (std::cmp::Ordering::Less, _) => WiringPattern::Pattern1,
                    (std::cmp::Ordering::Greater, _) => WiringPattern::Pattern2,
                    (_, std::cmp::Ordering::Greater) => WiringPattern::Pattern1,
                    (_, std::cmp::Ordering::Less) => WiringPattern::Pattern2,
                    _ => paper_choice,
                }
            }
            p => p,
        }
    }
}

/// `round(a / b)` with half-away-from-zero rounding, as the paper's
/// "rounded to the closest integer if fractional".
pub(crate) fn round_div(a: usize, b: usize) -> usize {
    ((a as f64) / (b as f64)).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mn_values() {
        // k = 8 → m = 1, n = 2; k = 16 → m = 2, n = 4; k = 4 → rounding
        let c8 = FlatTreeConfig::for_fat_tree_k(8).unwrap();
        assert_eq!((c8.m, c8.n), (1, 2));
        let c16 = FlatTreeConfig::for_fat_tree_k(16).unwrap();
        assert_eq!((c16.m, c16.n), (2, 4));
        let c4 = FlatTreeConfig::for_fat_tree_k(4).unwrap();
        assert_eq!((c4.m, c4.n), (1, 1));
        let c6 = FlatTreeConfig::for_fat_tree_k(6).unwrap();
        assert_eq!((c6.m, c6.n), (1, 2));
    }

    #[test]
    fn mn_limit_enforced() {
        // k = 8: limit = k/2 = 4
        assert!(FlatTreeConfig::for_fat_tree_k_mn(8, 2, 2).is_ok());
        let err = FlatTreeConfig::for_fat_tree_k_mn(8, 3, 2).unwrap_err();
        assert!(matches!(
            err,
            FlatTreeError::TooManyConverters { limit: 4, .. }
        ));
    }

    #[test]
    fn paper_rule_resolution() {
        // k = 8 → group size 4 (even) → Pattern 2
        let mut c = FlatTreeConfig::for_fat_tree_k(8).unwrap();
        c.wiring = WiringPattern::PaperRule;
        assert_eq!(c.resolved_pattern(), WiringPattern::Pattern2);
        // k = 6 → group size 3 (odd) → Pattern 1
        let mut c = FlatTreeConfig::for_fat_tree_k(6).unwrap();
        c.wiring = WiringPattern::PaperRule;
        assert_eq!(c.resolved_pattern(), WiringPattern::Pattern1);
        // explicit patterns resolve to themselves
        let mut c2 = c;
        c2.wiring = WiringPattern::Pattern1;
        assert_eq!(c2.resolved_pattern(), WiringPattern::Pattern1);
    }

    #[test]
    fn auto_avoids_degenerate_pattern2() {
        // k = 8, m = 1: Pattern 2's step (m+1 = 2) divides g = 4 → only
        // half the group positions would ever receive blade-B connectors.
        // Auto must fall back to Pattern 1 (a full rotation).
        let c = FlatTreeConfig::for_fat_tree_k(8).unwrap();
        assert_eq!(c.wiring, WiringPattern::Auto);
        assert_eq!(c.resolved_pattern(), WiringPattern::Pattern1);
        // k = 32, m = 4: step 5 is coprime to g = 16 → Pattern 2 wins the
        // diversity tie-break (both are uniform, Pattern 2 has 16 distinct
        // offsets vs Pattern 1's 4).
        let c = FlatTreeConfig::for_fat_tree_k(32).unwrap();
        assert_eq!(c.resolved_pattern(), WiringPattern::Pattern2);
    }

    #[test]
    fn coverage_statistics() {
        // m = 1, g = 4, 8 pods: pattern 1 rotates fully (spread 0, 4
        // offsets), pattern 2 hits only even positions (spread 4, 2
        // offsets)
        assert_eq!(WiringPattern::Pattern1.coverage(1, 4, 8), (0, 4));
        assert_eq!(WiringPattern::Pattern2.coverage(1, 4, 8), (4, 2));
    }

    #[test]
    fn unresolved_offset_is_none() {
        assert_eq!(WiringPattern::Auto.offset(0, 1, 4), None);
        assert_eq!(WiringPattern::PaperRule.offset(2, 1, 4), None);
    }

    #[test]
    fn pattern_offsets() {
        // pattern 1 advances by m, pattern 2 by m+1, both mod g
        assert_eq!(WiringPattern::Pattern1.offset(3, 2, 8), Some(6));
        assert_eq!(WiringPattern::Pattern1.offset(5, 2, 8), Some(2));
        assert_eq!(WiringPattern::Pattern2.offset(3, 2, 8), Some(1));
        assert_eq!(WiringPattern::Pattern2.offset(0, 2, 8), Some(0));
    }

    #[test]
    fn round_div_half_up() {
        assert_eq!(round_div(4, 8), 1); // 0.5 → 1
        assert_eq!(round_div(6, 8), 1); // 0.75 → 1
        assert_eq!(round_div(10, 8), 1); // 1.25 → 1
        assert_eq!(round_div(12, 8), 2); // 1.5 → 2
    }

    #[test]
    fn invalid_clos_propagates() {
        assert!(matches!(
            FlatTreeConfig::for_fat_tree_k(7),
            Err(FlatTreeError::BadClos(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = FlatTreeError::TooManyConverters {
            m: 3,
            n: 2,
            limit: 4,
        };
        assert!(e.to_string().contains("m + n = 5"));
    }
}
