//! The flat-tree convertible data center network architecture — the
//! paper's primary contribution (§2).
//!
//! A flat-tree network is physically a Clos/fat-tree in which small
//! port-count **converter switches** are spliced into selected edge–server
//! and aggregation–core links. Reconfiguring the converters logically
//! rewires those links, converting the network between:
//!
//! * **Clos** — every converter in its *default* configuration reproduces
//!   the original fat-tree link-for-link;
//! * **approximated global random graph** — 4-port converters go *local*
//!   (server → aggregation, edge ↔ core), 6-port converters go *side* /
//!   *cross* (server → core, edge/aggregation ↔ the adjacent Pod);
//! * **approximated local random graphs** — 4-port *local*, 6-port
//!   *default*: each Pod flattens internally (half the servers move to
//!   aggregation switches) while Pod–core wiring stays Clos-like;
//! * **hybrid** — any per-Pod mix of the above, organized into zones.
//!
//! The module map mirrors the paper's §2:
//!
//! | paper | module |
//! |---|---|
//! | §2.1 converter configurations (Fig. 1) | [`converter`] |
//! | §2.2 the flat-tree Pod (Fig. 3) | [`geometry`] |
//! | §2.3 Pod-core wiring patterns (Fig. 4) | [`wiring`] |
//! | §2.4 server distribution profiling | [`profile`] |
//! | §2.5 inter-Pod side wiring | [`interpod`] |
//! | wiring Properties 1 & 2 | [`validation`] |
//! | the assembled architecture | [`flattree`] |
//!
//! The central type is [`FlatTree`]: build once from a [`FlatTreeConfig`],
//! then [`FlatTree::materialize`] any [`Mode`] into an `ft_topo::Network`
//! for metrics, routing or simulation. Materialization is pure — the
//! control plane in `ft-control` layers reconfiguration planning on top.

// Unit tests are exempt from the panic-free policy (see DESIGN.md,
// "Static analysis & error-handling policy").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod converter;
pub mod flattree;
pub mod geometry;
pub mod interpod;
pub mod mode;
pub mod profile;
pub mod validation;
pub mod wiring;

pub use config::{FlatTreeConfig, FlatTreeError, InterPodWiring, WiringPattern};
pub use converter::{ConverterKind, FourPortConfig, SixPortConfig};
pub use flattree::{ConverterStates, FlatTree};
pub use mode::{Mode, PodMode};
pub use profile::{profile_mn, ProfilePoint, ProfileResult};
pub use validation::{core_distribution, CoreDistribution};
