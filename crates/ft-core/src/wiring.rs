//! Pod-core wiring (§2.3, Figure 4).
//!
//! In flat-tree, the `h/r` core connectors associated with edge index `j`
//! of each Pod are ordered: `m` blade-B connectors (6-port converters,
//! rows 0..m), then `n` blade-A connectors (4-port converters, rows 0..n),
//! then `h/r − m − n` plain aggregation connectors. The sequence is mapped
//! onto the group's core switches starting at a per-Pod rotation offset
//! ([`crate::config::WiringPattern`]) and wrapping within the group.
//!
//! What a core switch "sees" through a connector depends on the converter's
//! configuration at runtime: an aggregation switch (default), an edge
//! switch (local), or a server (side/cross) — which is how the same
//! physical wiring supports every operation mode.

use crate::config::{FlatTreeConfig, FlatTreeError, WiringPattern};

/// The core-switch assignment for one `(pod, edge-index)` connector group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupWiring {
    /// `six_core[i]` = absolute core index wired to 6-port row `i`.
    pub six_core: Vec<usize>,
    /// `four_core[i]` = absolute core index wired to 4-port row `i`.
    pub four_core: Vec<usize>,
    /// Cores wired by plain aggregation connectors (never broken).
    pub agg_cores: Vec<usize>,
}

/// Computes the core assignment for Pod `p`, edge index `j`, under the
/// (already resolved) wiring pattern.
///
/// # Errors
/// [`FlatTreeError::UnresolvedPattern`] if `pattern` is a selection policy
/// (`PaperRule`/`Auto`) rather than a concrete rotation.
pub fn group_wiring(
    cfg: &FlatTreeConfig,
    pattern: WiringPattern,
    p: usize,
    j: usize,
) -> Result<GroupWiring, FlatTreeError> {
    let g = cfg.clos.group_size();
    let base = j * g; // the group's first core (§2.3: consecutive groups)
    let start = pattern
        .offset(p, cfg.m, g)
        .ok_or(FlatTreeError::UnresolvedPattern(pattern))?;
    let mut six_core = Vec::with_capacity(cfg.m);
    let mut four_core = Vec::with_capacity(cfg.n);
    let mut agg_cores = Vec::with_capacity(g - cfg.m - cfg.n);
    for t in 0..g {
        let core = base + (start + t) % g;
        if t < cfg.m {
            six_core.push(core);
        } else if t < cfg.m + cfg.n {
            four_core.push(core);
        } else {
            agg_cores.push(core);
        }
    }
    Ok(GroupWiring {
        six_core,
        four_core,
        agg_cores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlatTreeConfig;
    use std::collections::HashSet;

    fn cfg(k: usize) -> FlatTreeConfig {
        FlatTreeConfig::for_fat_tree_k(k).unwrap()
    }

    #[test]
    fn bijective_within_group() {
        // every pod's connectors hit each group core exactly once
        let c = cfg(8);
        for pattern in [WiringPattern::Pattern1, WiringPattern::Pattern2] {
            for p in 0..c.clos.pods {
                for j in 0..c.clos.d {
                    let w = group_wiring(&c, pattern, p, j).unwrap();
                    let mut all: Vec<usize> = w
                        .six_core
                        .iter()
                        .chain(&w.four_core)
                        .chain(&w.agg_cores)
                        .copied()
                        .collect();
                    all.sort();
                    let expected: Vec<usize> = c.clos.core_group(j).collect();
                    assert_eq!(all, expected, "pattern {pattern:?} p {p} j {j}");
                }
            }
        }
    }

    #[test]
    fn pattern1_packs_continuously() {
        let c = cfg(16); // m = 2, g = 8
        let w0 = group_wiring(&c, WiringPattern::Pattern1, 0, 0).unwrap();
        let w1 = group_wiring(&c, WiringPattern::Pattern1, 1, 0).unwrap();
        // pod 0's blade B occupies cores 0..2, pod 1's 2..4
        assert_eq!(w0.six_core, vec![0, 1]);
        assert_eq!(w1.six_core, vec![2, 3]);
    }

    #[test]
    fn pattern2_advances_by_m_plus_one() {
        let c = cfg(16); // m = 2, g = 8
        let w1 = group_wiring(&c, WiringPattern::Pattern2, 1, 0).unwrap();
        assert_eq!(w1.six_core, vec![3, 4]);
    }

    #[test]
    fn groups_offset_by_edge_index() {
        let c = cfg(8); // g = 4
        let w = group_wiring(&c, WiringPattern::Pattern1, 0, 2).unwrap();
        for &core in w.six_core.iter().chain(&w.four_core).chain(&w.agg_cores) {
            assert!(c.clos.core_group(2).contains(&core));
        }
    }

    #[test]
    fn sequence_order_b_then_a_then_agg() {
        let c = cfg(8); // m = 1, n = 2, g = 4
        let w = group_wiring(&c, WiringPattern::Pattern1, 0, 0).unwrap();
        assert_eq!(w.six_core.len(), 1);
        assert_eq!(w.four_core.len(), 2);
        assert_eq!(w.agg_cores.len(), 1);
        // pod 0 pattern 1 start 0: positions 0 | 1,2 | 3
        assert_eq!(w.six_core, vec![0]);
        assert_eq!(w.four_core, vec![1, 2]);
        assert_eq!(w.agg_cores, vec![3]);
    }

    #[test]
    fn wraparound_within_group() {
        let c = cfg(8); // m = 1, g = 4; pattern 1 pod 5 start = 5 % 4 = 1
        let w = group_wiring(&c, WiringPattern::Pattern1, 5, 1).unwrap();
        // group base = 4; positions 1 | 2,3 | 0 (wrapped)
        assert_eq!(w.six_core, vec![5]);
        assert_eq!(w.four_core, vec![6, 7]);
        assert_eq!(w.agg_cores, vec![4]);
    }

    #[test]
    fn all_pods_cover_each_core_once_per_group() {
        // across pods, each core receives exactly `pods` connectors for its
        // group (one per pod) — core port budget
        let c = cfg(6);
        let pattern = c.resolved_pattern();
        let mut hits: Vec<usize> = vec![0; c.clos.cores()];
        for p in 0..c.clos.pods {
            for j in 0..c.clos.d {
                let w = group_wiring(&c, pattern, p, j).unwrap();
                for &core in w.six_core.iter().chain(&w.four_core).chain(&w.agg_cores) {
                    hits[core] += 1;
                }
            }
        }
        assert!(hits.iter().all(|&h| h == c.clos.pods));
    }

    #[test]
    fn distinct_cores_within_connector_classes() {
        let c = cfg(32); // m = 4, n = 8, g = 16
        let w = group_wiring(&c, c.resolved_pattern(), 3, 7).unwrap();
        let set: HashSet<usize> = w
            .six_core
            .iter()
            .chain(&w.four_core)
            .chain(&w.agg_cores)
            .copied()
            .collect();
        assert_eq!(set.len(), 16);
    }
}
