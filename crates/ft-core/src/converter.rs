//! Converter switch models (§2.1, Figure 1).
//!
//! A converter switch is a small circuit switch spliced into one
//! edge–server link and one aggregation–core link of the Clos network. It
//! is a *physical-layer* device: whatever it connects becomes a direct
//! logical link with no extra hop (§3.1). The valid configurations are the
//! six of Figure 1:
//!
//! ```text
//! 4-port {S, E, A, C}:
//!   default : S–E, A–C     (the original Clos links)
//!   local   : S–A, E–C     (server to aggregation, edge to core)
//!
//! 6-port {S, E, A, C, side×2} paired with a peer ⟨S',E',A',C'⟩:
//!   default : S–E, A–C               (sides dark)
//!   local   : S–A, E–C               (sides dark)
//!   side    : S–C, E–E', A–A'        (peer-wise side links)
//!   cross   : S–C, E–A', A–E'        (crossed side links)
//! ```
//!
//! The paper explains why 4-port converters must not relocate servers to
//! core switches: connecting S–C on a 4-port forces E–A, which duplicates
//! the Pod's existing edge–aggregation mesh and wastes a link. Only 6-port
//! converters, whose side connectors reach the adjacent Pod, can park the
//! server on the core usefully.

/// Which converter hardware a site holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum ConverterKind {
    /// 4-port: server, edge, aggregation, core.
    FourPort,
    /// 6-port: the above plus a double side connector to a peer.
    SixPort,
}

/// Configuration of a 4-port converter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum FourPortConfig {
    /// S–E and A–C: the original Clos connections.
    #[default]
    Default,
    /// S–A and E–C: relocate the server to the aggregation switch and
    /// connect core and edge directly.
    Local,
}

/// Configuration of a 6-port converter.
///
/// `Side` and `Cross` are meaningful only when the converter is
/// side-connected to a peer holding the *same* configuration; the flat-tree
/// builder enforces this (§2.5 assigns side to even rows and cross to odd
/// rows so that both peer-wise and edge–aggregation inter-Pod links exist).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum SixPortConfig {
    /// S–E and A–C (sides unused).
    #[default]
    Default,
    /// S–A and E–C (sides unused).
    Local,
    /// S–C locally; E–E' and A–A' through the side bundle.
    Side,
    /// S–C locally; E–A' and A–E' through the side bundle.
    Cross,
}

impl SixPortConfig {
    /// Whether this configuration drives the side connectors.
    pub fn uses_side(self) -> bool {
        matches!(self, SixPortConfig::Side | SixPortConfig::Cross)
    }

    /// Whether the server is relocated to the core switch.
    pub fn server_on_core(self) -> bool {
        self.uses_side()
    }
}

impl FourPortConfig {
    /// Whether the server is relocated to the aggregation switch.
    pub fn server_on_agg(self) -> bool {
        self == FourPortConfig::Local
    }
}

/// The four logical endpoints a converter can see locally. Used by the
/// materializer to express "which links does this configuration produce".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Port {
    /// The spliced server.
    Server,
    /// The edge switch of the pair.
    Edge,
    /// The aggregation switch of the pair.
    Aggregation,
    /// The core switch assigned by the Pod-core wiring.
    Core,
}

impl FourPortConfig {
    /// The two local links this configuration creates.
    pub fn links(self) -> [(Port, Port); 2] {
        match self {
            FourPortConfig::Default => {
                [(Port::Server, Port::Edge), (Port::Aggregation, Port::Core)]
            }
            FourPortConfig::Local => [(Port::Server, Port::Aggregation), (Port::Edge, Port::Core)],
        }
    }
}

impl SixPortConfig {
    /// The purely local links (side-bundle links are added at pair level by
    /// the materializer). `Default`/`Local` yield two; `Side`/`Cross` yield
    /// one (S–C) plus two pair links handled elsewhere.
    pub fn local_links(self) -> &'static [(Port, Port)] {
        match self {
            SixPortConfig::Default => {
                &[(Port::Server, Port::Edge), (Port::Aggregation, Port::Core)]
            }
            SixPortConfig::Local => &[(Port::Server, Port::Aggregation), (Port::Edge, Port::Core)],
            SixPortConfig::Side | SixPortConfig::Cross => &[(Port::Server, Port::Core)],
        }
    }

    /// For a side-connected pair where both ends hold `self`, the two
    /// cross-Pod links in terms of (this end's port, peer's port).
    ///
    /// `Default`/`Local` do not drive the sides and yield `None`.
    pub fn pair_links(self) -> Option<[(Port, Port); 2]> {
        match self {
            SixPortConfig::Side => Some([
                (Port::Edge, Port::Edge),
                (Port::Aggregation, Port::Aggregation),
            ]),
            SixPortConfig::Cross => Some([
                (Port::Edge, Port::Aggregation),
                (Port::Aggregation, Port::Edge),
            ]),
            SixPortConfig::Default | SixPortConfig::Local => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_port_default_is_clos() {
        let links = FourPortConfig::Default.links();
        assert!(links.contains(&(Port::Server, Port::Edge)));
        assert!(links.contains(&(Port::Aggregation, Port::Core)));
    }

    #[test]
    fn four_port_local_relocates() {
        let links = FourPortConfig::Local.links();
        assert!(links.contains(&(Port::Server, Port::Aggregation)));
        assert!(links.contains(&(Port::Edge, Port::Core)));
        assert!(FourPortConfig::Local.server_on_agg());
        assert!(!FourPortConfig::Default.server_on_agg());
    }

    #[test]
    fn six_port_side_semantics() {
        assert!(SixPortConfig::Side.uses_side());
        assert!(SixPortConfig::Cross.uses_side());
        assert!(!SixPortConfig::Default.uses_side());
        assert!(!SixPortConfig::Local.uses_side());
        assert_eq!(
            SixPortConfig::Side.local_links(),
            &[(Port::Server, Port::Core)]
        );
        assert_eq!(
            SixPortConfig::Side.pair_links(),
            Some([
                (Port::Edge, Port::Edge),
                (Port::Aggregation, Port::Aggregation)
            ])
        );
        assert_eq!(
            SixPortConfig::Cross.pair_links(),
            Some([
                (Port::Edge, Port::Aggregation),
                (Port::Aggregation, Port::Edge)
            ])
        );
    }

    #[test]
    fn pair_links_dark_for_non_side_configs() {
        assert_eq!(SixPortConfig::Default.pair_links(), None);
        assert_eq!(SixPortConfig::Local.pair_links(), None);
    }

    #[test]
    fn every_config_preserves_link_count() {
        // Each converter replaces exactly 2 Clos links (one edge–server,
        // one agg–core). Default/local produce 2 local links; side/cross
        // produce 1 local + 2 shared pair links (the pair replaced 4 Clos
        // links and produces 2 + 2 = 4: 2 S–C plus 2 side links).
        assert_eq!(FourPortConfig::Default.links().len(), 2);
        assert_eq!(FourPortConfig::Local.links().len(), 2);
        assert_eq!(SixPortConfig::Default.local_links().len(), 2);
        assert_eq!(SixPortConfig::Local.local_links().len(), 2);
        assert_eq!(SixPortConfig::Side.local_links().len(), 1);
        assert_eq!(SixPortConfig::Side.pair_links().map(|p| p.len()), Some(2));
    }
}
