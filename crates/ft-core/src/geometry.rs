//! The flat-tree Pod geometry (§2.2, Figure 3): converter blades, rows,
//! columns and server-slot assignment.
//!
//! Each edge switch `E_j` is paired with aggregation switch `A_{j/r}` and
//! the pair is spliced with `n` 4-port converters and `m` 6-port
//! converters. Converters sit in matrices ("blades") on the two sides of
//! the Pod: columns `0..⌊d/2⌋` on the left, the last `⌊d/2⌋` columns on the
//! right; when `d` is odd the middle column's 6-port converters keep their
//! side connectors unused (the paper's odd-`d` note).
//!
//! Converter sites are flattened to dense indices so the rest of the crate
//! can keep per-converter state in plain vectors:
//!
//! * 4-port `⟨pod p, column j, row i⟩` → `(p·d + j)·n + i`
//! * 6-port `⟨pod p, column j, row i⟩` → `(p·d + j)·m + i`
//!
//! Server slots on edge `j`: 4-port row `i` owns slot `i`, 6-port row `i`
//! owns slot `n + i`, slots `n + m ..` stay directly cabled to the edge
//! switch.

use crate::config::FlatTreeConfig;

/// Which side of the Pod a column's converters sit on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BladeSide {
    /// Columns `0..⌊d/2⌋`: side connectors face the previous Pod.
    Left,
    /// The last `⌊d/2⌋` columns: side connectors face the next Pod.
    Right,
    /// The middle column of an odd-`d` Pod: side connectors unused.
    Middle,
}

/// Index math for converter sites. Copy-cheap; derived entirely from the
/// configuration.
#[derive(Clone, Copy, Debug)]
pub struct PodGeometry {
    /// Pods in the network.
    pub pods: usize,
    /// Edge switches (columns) per Pod.
    pub d: usize,
    /// 6-port converters per column.
    pub m: usize,
    /// 4-port converters per column.
    pub n: usize,
    /// Servers per edge switch.
    pub servers_per_edge: usize,
}

impl PodGeometry {
    /// Derives the geometry from a validated configuration.
    pub fn new(cfg: &FlatTreeConfig) -> Self {
        PodGeometry {
            pods: cfg.clos.pods,
            d: cfg.clos.d,
            m: cfg.m,
            n: cfg.n,
            servers_per_edge: cfg.clos.servers_per_edge,
        }
    }

    /// Paired columns per side: `⌊d/2⌋`.
    pub fn side_width(&self) -> usize {
        self.d / 2
    }

    /// Blade side of column `j`.
    pub fn side_of_column(&self, j: usize) -> BladeSide {
        debug_assert!(j < self.d);
        let w = self.side_width();
        if j < w {
            BladeSide::Left
        } else if j >= self.d - w {
            BladeSide::Right
        } else {
            BladeSide::Middle
        }
    }

    /// For a right-blade column, its local index `0..w` (left to right).
    pub fn right_local(&self, j: usize) -> usize {
        debug_assert_eq!(self.side_of_column(j), BladeSide::Right);
        j - (self.d - self.side_width())
    }

    /// Global column of the right-blade local index.
    pub fn right_global(&self, local: usize) -> usize {
        debug_assert!(local < self.side_width());
        self.d - self.side_width() + local
    }

    /// Total 4-port converters.
    pub fn four_count(&self) -> usize {
        self.pods * self.d * self.n
    }

    /// Total 6-port converters.
    pub fn six_count(&self) -> usize {
        self.pods * self.d * self.m
    }

    /// Flattened index of 4-port converter ⟨p, j, i⟩.
    pub fn four_index(&self, p: usize, j: usize, i: usize) -> usize {
        debug_assert!(p < self.pods && j < self.d && i < self.n);
        (p * self.d + j) * self.n + i
    }

    /// Flattened index of 6-port converter ⟨p, j, i⟩.
    pub fn six_index(&self, p: usize, j: usize, i: usize) -> usize {
        debug_assert!(p < self.pods && j < self.d && i < self.m);
        (p * self.d + j) * self.m + i
    }

    /// Inverse of [`PodGeometry::four_index`]: `(pod, column, row)`.
    pub fn four_site(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.four_count());
        let col = idx / self.n;
        (col / self.d, col % self.d, idx % self.n)
    }

    /// Inverse of [`PodGeometry::six_index`]: `(pod, column, row)`.
    pub fn six_site(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.six_count());
        let col = idx / self.m;
        (col / self.d, col % self.d, idx % self.m)
    }

    /// Edge-switch server slot owned by 4-port row `i`.
    pub fn four_slot(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        i
    }

    /// Edge-switch server slot owned by 6-port row `i`.
    pub fn six_slot(&self, i: usize) -> usize {
        debug_assert!(i < self.m);
        self.n + i
    }

    /// Server slots that stay directly cabled to the edge switch.
    pub fn direct_slots(&self) -> std::ops::Range<usize> {
        (self.n + self.m)..self.servers_per_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlatTreeConfig;

    fn geom(k: usize) -> PodGeometry {
        PodGeometry::new(&FlatTreeConfig::for_fat_tree_k(k).unwrap())
    }

    #[test]
    fn sides_even_d() {
        let g = geom(8); // d = 4, w = 2
        assert_eq!(g.side_width(), 2);
        assert_eq!(g.side_of_column(0), BladeSide::Left);
        assert_eq!(g.side_of_column(1), BladeSide::Left);
        assert_eq!(g.side_of_column(2), BladeSide::Right);
        assert_eq!(g.side_of_column(3), BladeSide::Right);
        assert_eq!(g.right_local(2), 0);
        assert_eq!(g.right_global(1), 3);
    }

    #[test]
    fn sides_odd_d() {
        let g = geom(6); // d = 3, w = 1
        assert_eq!(g.side_width(), 1);
        assert_eq!(g.side_of_column(0), BladeSide::Left);
        assert_eq!(g.side_of_column(1), BladeSide::Middle);
        assert_eq!(g.side_of_column(2), BladeSide::Right);
    }

    #[test]
    fn index_roundtrip() {
        let g = geom(8);
        for p in 0..g.pods {
            for j in 0..g.d {
                for i in 0..g.n {
                    assert_eq!(g.four_site(g.four_index(p, j, i)), (p, j, i));
                }
                for i in 0..g.m {
                    assert_eq!(g.six_site(g.six_index(p, j, i)), (p, j, i));
                }
            }
        }
        assert_eq!(g.four_count(), 8 * 4 * 2);
        assert_eq!(g.six_count(), (8 * 4));
    }

    #[test]
    fn slots_disjoint_and_cover() {
        let g = geom(8); // spe = 4, n = 2, m = 1
        let mut slots: Vec<usize> = (0..g.n).map(|i| g.four_slot(i)).collect();
        slots.extend((0..g.m).map(|i| g.six_slot(i)));
        slots.extend(g.direct_slots());
        slots.sort();
        assert_eq!(slots, (0..g.servers_per_edge).collect::<Vec<_>>());
    }

    #[test]
    fn d_equals_one_all_middle() {
        // pods=2, d=1, r=1, h=2, spe=2 with m=0 impossible (m≥... use
        // explicit config): craft minimal config via ClosParams
        use ft_topo::ClosParams;
        let cfg = FlatTreeConfig {
            clos: ClosParams {
                pods: 2,
                d: 1,
                r: 1,
                h: 2,
                servers_per_edge: 2,
            },
            m: 1,
            n: 1,
            wiring: crate::config::WiringPattern::Pattern1,
            inter_pod: crate::config::InterPodWiring::Ring,
        };
        cfg.validate().unwrap();
        let g = PodGeometry::new(&cfg);
        assert_eq!(g.side_width(), 0);
        assert_eq!(g.side_of_column(0), BladeSide::Middle);
    }
}
