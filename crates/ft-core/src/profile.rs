//! The server-distribution profiling scheme (§2.4, §3.2).
//!
//! Flat-tree converts *generic* Clos networks whose layouts vary, so the
//! paper does not fix `m` and `n` analytically; instead it profiles: under
//! the preferred Pod-core wiring pattern, sweep `m` and `n` (at intervals
//! of `k/8`, rounded) and keep the pair minimizing the average server-pair
//! path length of the approximated global random graph. §3.2 finds
//! `m = k/8`, `n = 2k/8` across the swept range.

use crate::config::{round_div, FlatTreeConfig, FlatTreeError};
use crate::flattree::FlatTree;
use crate::mode::Mode;
use ft_metrics::path_length::average_server_path_length;

/// One profiled configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfilePoint {
    /// 6-port converters per edge/aggregation pair.
    pub m: usize,
    /// 4-port converters per edge/aggregation pair.
    pub n: usize,
    /// Average server-pair path length in global-random mode.
    pub apl: f64,
}

/// Result of a profiling sweep.
#[derive(Clone, Debug)]
pub struct ProfileResult {
    /// All evaluated `(m, n, APL)` points.
    pub points: Vec<ProfilePoint>,
    /// The best point (minimum APL; ties broken by smaller `m + n`, i.e.
    /// less converter hardware).
    pub best: ProfilePoint,
}

/// Profiles `m`, `n` for a fat-tree-based flat-tree of parameter `k`,
/// sweeping multiples of `max(1, round(k/8))` with `m + n ≤ k/2`
/// (the paper's §3.2 procedure). Larger `granularity` divides the interval
/// further (e.g. 2 halves the step) for a finer sweep — the paper notes the
/// process "can happen at finer granularity with smaller intervals".
pub fn profile_mn(k: usize, granularity: usize) -> Result<ProfileResult, FlatTreeError> {
    assert!(granularity >= 1, "granularity must be ≥ 1");
    let base = round_div(k, 8).max(1);
    // candidate values: multiples of base/granularity, at least 1
    let step = (base as f64 / granularity as f64).max(1.0) as usize;
    let limit = k / 2;
    let mut points = Vec::new();
    let mut m = step;
    while m < limit {
        let mut n = step;
        while m + n <= limit {
            let cfg = FlatTreeConfig::for_fat_tree_k_mn(k, m, n)?;
            let net = FlatTree::new(cfg)?.materialize(&Mode::GlobalRandom)?;
            points.push(ProfilePoint {
                m,
                n,
                apl: average_server_path_length(&net),
            });
            n += step;
        }
        m += step;
    }
    let best = points
        .iter()
        .copied()
        .min_by(|a, b| a.apl.total_cmp(&b.apl).then((a.m + a.n).cmp(&(b.m + b.n))))
        .ok_or(FlatTreeError::EmptySweep { k })?;
    Ok(ProfileResult { points, best })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_constraint() {
        let r = profile_mn(8, 1).unwrap();
        // k = 8, step 1, m + n ≤ 4 → (1,1) (1,2) (1,3) (2,1) (2,2) (3,1)
        assert_eq!(r.points.len(), 6);
        for p in &r.points {
            assert!(p.m + p.n <= 4);
            assert!(p.apl.is_finite());
        }
    }

    #[test]
    fn best_is_minimum() {
        let r = profile_mn(8, 1).unwrap();
        for p in &r.points {
            assert!(r.best.apl <= p.apl + 1e-12);
        }
    }

    #[test]
    fn profiled_mn_close_to_paper() {
        // §3.2: m = k/8, n = 2k/8 minimizes APL. For small k the sweep is
        // coarse; assert the paper's choice is within 2% of the sweep's
        // best rather than exactly equal (rounding at k = 8 gives few
        // candidates).
        let k = 8;
        let r = profile_mn(k, 1).unwrap();
        let paper = r
            .points
            .iter()
            .find(|p| p.m == 1 && p.n == 2)
            .expect("paper's (m, n) must be in the sweep");
        assert!(
            paper.apl <= r.best.apl * 1.02,
            "paper point {} vs best {}",
            paper.apl,
            r.best.apl
        );
    }

    #[test]
    fn granularity_refines() {
        let coarse = profile_mn(16, 1).unwrap();
        let fine = profile_mn(16, 2).unwrap();
        assert!(fine.points.len() > coarse.points.len());
        assert!(fine.best.apl <= coarse.best.apl + 1e-12);
    }
}
