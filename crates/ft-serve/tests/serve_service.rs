//! End-to-end exercise of the query service: a concurrent mixed workload,
//! a conversion between two `paths` batches, cache-hit accounting, and a
//! deadline-bounded graceful shutdown. This is the test CI runs under
//! `--release` (see `.github/workflows/ci.yml`).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ft_serve::{ServeConfig, Service};
use std::time::{Duration, Instant};

/// Fires every request line on its own scoped thread and collects the
/// replies in order.
fn concurrent_batch(handle: &ft_serve::Handle<'_>, requests: &[&str]) -> Vec<String> {
    crossbeam::scope(|s| {
        let joins: Vec<_> = requests
            .iter()
            .map(|r| s.spawn(move |_| handle.request(r)))
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("request thread panicked"))
            .collect()
    })
    .expect("batch scope failed")
}

fn field<'a>(reply: &'a str, key: &str) -> &'a str {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {reply:?}"))
}

#[test]
fn concurrent_mixed_load_convert_and_graceful_shutdown() {
    let cfg = ServeConfig {
        workers: 4,
        cache_capacity: 8,
        queue_depth: 256,
        ..ServeConfig::for_k(4)
    };
    let ((), report) = Service::run(cfg, |h| {
        // ---- batch 1: 20 concurrent mixed requests on the Clos baseline.
        let batch1: Vec<&str> = [
            &["paths"; 8][..],
            &["topo"; 4][..],
            &["throughput eps=0.4 cluster=4 seed=3"; 2][..],
            &["plan to=global-rg"; 2][..],
            &["paths mode=local-rg"; 2][..],
            &["stats"; 2][..],
        ]
        .concat();
        let replies1 = concurrent_batch(h, &batch1);
        for r in &replies1 {
            assert!(r.starts_with("OK "), "batch 1 reply failed: {r}");
        }

        // ---- the cached path: a repeat `paths` for the same layout must be
        // answered from the cache (hit counter moves, nothing re-materializes
        // and the batched-BFS pass does not rerun).
        let before = h.snapshot();
        let pre_paths = h.request("paths");
        let after = h.snapshot();
        assert_eq!(field(&pre_paths, "source"), "hit", "{pre_paths}");
        assert_eq!(field(&pre_paths, "cached_answer"), "true", "{pre_paths}");
        assert_eq!(after.cache_hits, before.cache_hits + 1);
        assert_eq!(
            after.materializations, before.materializations,
            "cache hit must not re-materialize"
        );
        assert_eq!(
            after.path_computations, before.path_computations,
            "cache hit must not rerun the path pass"
        );

        // ---- convert to the network-wide random graph; the cache empties.
        let convert = h.request("convert to=global-rg");
        assert!(convert.starts_with("OK convert "), "{convert}");
        assert_eq!(field(&convert, "noop"), "false", "{convert}");
        assert_eq!(field(&convert, "from"), "cccc", "{convert}");
        assert_eq!(field(&convert, "to"), "gggg", "{convert}");

        // ---- batch 2: 16 more concurrent requests against the new layout.
        let batch2: Vec<&str> = [
            &["paths"; 8][..],
            &["topo"; 4][..],
            &["plan to=clos"; 2][..],
            &["stats"; 2][..],
        ]
        .concat();
        let replies2 = concurrent_batch(h, &batch2);
        for r in &replies2 {
            assert!(r.starts_with("OK "), "batch 2 reply failed: {r}");
        }

        // ---- the conversion must change the `paths` answers: new layout
        // letters and a different average path length.
        let post_paths = h.request("paths");
        assert_eq!(field(&pre_paths, "layout"), "cccc");
        assert_eq!(field(&post_paths, "layout"), "gggg");
        let pre_apl: f64 = field(&pre_paths, "apl").parse().unwrap();
        let post_apl: f64 = field(&post_paths, "apl").parse().unwrap();
        assert!(
            (pre_apl - post_apl).abs() > 1e-9,
            "conversion left APL unchanged: {pre_apl} vs {post_apl}"
        );

        // ---- stats must expose nonzero cache traffic and the invalidation.
        let stats = h.request("stats");
        assert!(stats.starts_with("OK stats "), "{stats}");
        let hits: u64 = field(&stats, "cache_hits").parse().unwrap();
        let invalidations: u64 = field(&stats, "invalidations").parse().unwrap();
        assert!(hits > 0, "expected nonzero cache hits: {stats}");
        assert_eq!(invalidations, 1, "{stats}");

        // ---- graceful shutdown, bounded by its deadline.
        let start = Instant::now();
        let bye = h.request("shutdown deadline_ms=5000");
        let waited = start.elapsed();
        assert!(bye.starts_with("OK shutdown drained=true"), "{bye}");
        assert!(
            waited < Duration::from_millis(5000),
            "drain exceeded deadline: {waited:?}"
        );

        // ---- after the drain, new work is refused but the refusal is polite.
        let refused = h.request("paths");
        assert!(refused.starts_with("ERR shutdown "), "{refused}");
    })
    .expect("service failed");

    assert!(report.contains("ft-serve final report"), "{report}");
    assert!(report.contains("cache"), "{report}");
}

#[test]
fn metrics_verb_round_trips_through_the_service() {
    let ((), _report) = Service::run(ServeConfig::for_k(4), |h| {
        assert!(h.request("paths").starts_with("OK paths "));
        let reply = h.request("metrics");
        let mut lines = reply.lines();
        let header = lines.next().unwrap();
        let n: usize = header
            .strip_prefix("OK metrics lines=")
            .unwrap_or_else(|| panic!("bad header {header:?}"))
            .parse()
            .unwrap();
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), n, "{reply}");
        let text = body.join("\n");
        // One reply covers the serve registry and the process-global
        // solver/pool registries.
        assert!(
            text.contains("ft_serve_requests_total{verb=\"paths\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ft_serve_request_latency_us{verb=\"paths\",q=\"0.95\"}"),
            "{text}"
        );
        assert!(text.contains("ft_metrics_apsp_total"), "{text}");
        assert!(text.contains("ft_par_rows_total"), "{text}");
        let bye = h.request("shutdown deadline_ms=5000");
        assert!(bye.starts_with("OK shutdown "), "{bye}");
    })
    .expect("service failed");
}

#[test]
fn queue_overflow_degrades_to_busy_not_death() {
    // One worker and a one-slot queue: a concurrent burst must produce a mix
    // of OK and ERR busy replies, and the service must still answer cleanly
    // afterwards.
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::for_k(4)
    };
    let ((), _report) = Service::run(cfg, |h| {
        let burst: Vec<&str> = vec!["paths mode=global-rg"; 32];
        let replies = concurrent_batch(h, &burst);
        assert!(replies
            .iter()
            .all(|r| r.starts_with("OK paths ") || r.starts_with("ERR busy ")));
        assert!(
            replies.iter().any(|r| r.starts_with("OK paths ")),
            "burst starved completely"
        );
        let after = h.request("topo");
        assert!(after.starts_with("OK topo "), "{after}");
        let bye = h.request("shutdown deadline_ms=5000");
        assert!(bye.starts_with("OK shutdown "), "{bye}");
    })
    .expect("service failed");
}
