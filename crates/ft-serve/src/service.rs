//! The resident query service: worker pool, in-process transport, request
//! dispatch.
//!
//! [`Service::run`] boots a [`ft_control::Controller`] once, spawns a fixed
//! pool of crossbeam scoped workers fed by a bounded MPMC channel, and
//! hands the caller a [`Handle`] — the in-process transport. Integration
//! tests, the CLI and the TCP listener all funnel through
//! [`Handle::request`], so every transport shares admission control,
//! caching and metrics.
//!
//! Shutdown protocol: a `shutdown` request (or the end of the caller's
//! closure) flips the draining flag — new requests are rejected with
//! `ERR shutdown` — then in-flight work is drained, bounded by the request
//! deadline; the worker handling the shutdown helps drain the queue rather
//! than spinning. Workers exit when the job channel disconnects and are
//! joined by the scope; [`Service::run`] then renders the final metrics
//! report.

use crate::cache::{CacheKey, LruCache, Materialized, PathsAnswer};
use crate::error::ServeError;
use crate::metrics::{MetricsRegistry, Snapshot};
use crate::proto::{self, layout_letters, ModeSpec, Request};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use ft_control::Controller;
use ft_core::{FlatTreeConfig, Mode};
use ft_mcf::aggregate_commodities;
use ft_metrics::path_length::{
    average_intra_pod_path_length_with, average_server_path_length_with,
};
use ft_metrics::throughput::{throughput_on_commodities_with, SolverKind, ThroughputOptions};
use ft_workload::{generate, WorkloadSpec};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Static configuration for one service instance.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Fat-tree parameter of the flat-tree under management (even, ≥ 4).
    pub k: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Maximum cached materializations (LRU beyond that).
    pub cache_capacity: usize,
    /// Bounded job-queue depth; requests beyond it get `ERR busy`.
    pub queue_depth: usize,
    /// Length of one sliding-window epoch in milliseconds; the windowed
    /// latency quantiles cover the last [`ft_obs::WINDOW_EPOCHS`] of
    /// these. 0 disables ticking, freezing the window as a mirror of the
    /// cumulative histograms.
    pub window_epoch_ms: u64,
}

impl ServeConfig {
    /// Defaults for a given fat-tree parameter: 4 workers, 8 cache slots,
    /// a 64-deep admission queue, 1 s window epochs (an 8 s sliding
    /// window for the stats-line quantiles).
    pub fn for_k(k: usize) -> Self {
        ServeConfig {
            k,
            workers: 4,
            cache_capacity: 8,
            queue_depth: 64,
            window_epoch_ms: 1000,
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 || self.workers > 256 {
            return Err(ServeError::BadRequest(format!(
                "workers must be in 1..=256, got {}",
                self.workers
            )));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::BadRequest(
                "queue_depth must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// One queued request plus its reply slot.
pub(crate) struct Job {
    line: String,
    reply: Sender<String>,
}

/// State shared by every worker, transport and the caller's closure.
pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    /// Pods in the managed network (cached off the controller config).
    pub(crate) pods: usize,
    /// Servers per Pod (intra-Pod fallback grouping for path metrics).
    pub(crate) servers_per_pod: usize,
    pub(crate) controller: RwLock<Controller>,
    pub(crate) cache: Mutex<LruCache>,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) shutting_down: AtomicBool,
    /// Admitted requests not yet replied to (queued + executing).
    pub(crate) pending: AtomicU64,
    pub(crate) started: Instant,
}

/// The in-process transport: issue FTQ/1 request lines, get reply lines.
///
/// Cheap to share (`&Handle` is `Sync`); every transport — tests, the CLI,
/// TCP connections — goes through [`Handle::request`].
pub struct Handle<'a> {
    tx: Sender<Job>,
    shared: &'a Shared,
}

impl Handle<'_> {
    /// Submits one FTQ/1 request line and blocks for the reply.
    ///
    /// Never panics: malformed input, full queues and draining states all
    /// come back as `ERR <code> <msg>`. Replies are a single line except
    /// for `metrics`, whose `OK metrics lines=<n>` header is followed by
    /// `n` exposition lines (the protocol's one documented multi-line
    /// reply).
    pub fn request(&self, line: &str) -> String {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            self.shared.metrics.record_shutdown_rejection();
            return ServeError::ShuttingDown.err_line();
        }
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let job = Job {
            line: line.to_string(),
            reply: reply_tx,
        };
        match self.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.shared.pending.fetch_sub(1, Ordering::SeqCst);
                self.shared.metrics.record_busy();
                return ServeError::Busy {
                    depth: self.shared.cfg.queue_depth,
                }
                .err_line();
            }
            Err(TrySendError::Disconnected(_)) => {
                self.shared.pending.fetch_sub(1, Ordering::SeqCst);
                self.shared.metrics.record_shutdown_rejection();
                return ServeError::ShuttingDown.err_line();
            }
        }
        match reply_rx.recv() {
            Ok(reply) => reply,
            Err(_) => ServeError::Internal("worker dropped the request".to_string()).err_line(),
        }
    }

    /// Whether a shutdown has been initiated (drain in progress or done).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of the metrics registry — the structured
    /// counterpart of the `stats` request, for assertions and dashboards.
    pub fn snapshot(&self) -> Snapshot {
        self.shared.metrics.snapshot()
    }
}

/// The query service. See the module docs for the lifecycle.
pub struct Service;

impl Service {
    /// Boots the service, runs `f` with the in-process [`Handle`], then
    /// drains and joins the worker pool.
    ///
    /// Returns `f`'s result plus the final multi-line metrics report (the
    /// "dump on shutdown").
    ///
    /// # Errors
    /// Configuration and construction failures ([`ServeError::BadRequest`],
    /// [`ServeError::Engine`]); [`ServeError::Internal`] if a worker died.
    pub fn run<R, F>(cfg: ServeConfig, f: F) -> Result<(R, String), ServeError>
    where
        F: FnOnce(&Handle<'_>) -> R,
    {
        cfg.validate()?;
        let ft_cfg = FlatTreeConfig::for_fat_tree_k(cfg.k)?;
        let controller = Controller::new(ft_cfg)?;
        let clos = controller.flat_tree().config().clos;
        let shared = Shared {
            cfg,
            pods: clos.pods,
            servers_per_pod: clos.d * clos.servers_per_edge,
            controller: RwLock::new(controller),
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            metrics: MetricsRegistry::new(),
            shutting_down: AtomicBool::new(false),
            pending: AtomicU64::new(0),
            started: Instant::now(),
        };
        let (tx, rx) = channel::bounded::<Job>(cfg.queue_depth);
        let sh = &shared;
        let scope_result = crossbeam::scope(move |s| {
            for _ in 0..sh.cfg.workers {
                let rx = rx.clone();
                s.spawn(move |_| worker_loop(sh, &rx));
            }
            drop(rx);
            let handle = Handle { tx, shared: sh };
            let out = f(&handle);
            // Idempotent with a shutdown request: just stop admitting.
            sh.shutting_down.store(true, Ordering::SeqCst);
            drop(handle); // last Sender → workers drain the queue and exit
            out
        });
        let out =
            scope_result.map_err(|_| ServeError::Internal("a worker thread died".to_string()))?;
        let report = shared
            .metrics
            .snapshot()
            .render_report(shared.started.elapsed());
        Ok((out, report))
    }
}

fn worker_loop(shared: &Shared, rx: &Receiver<Job>) {
    loop {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(job) => run_job(shared, rx, job),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    if ft_obs::enabled() {
        // Drain this worker's span buffer before the pool scope joins: the
        // TLS destructor only runs at actual thread exit, which can land
        // after the caller removes the trace sink.
        ft_obs::flush();
    }
}

fn run_job(shared: &Shared, rx: &Receiver<Job>, job: Job) {
    let reply = execute(shared, Some(rx), &job.line);
    let _ = job.reply.send(reply);
    shared.pending.fetch_sub(1, Ordering::SeqCst);
}

/// Parses, dispatches and renders one request line into one reply line,
/// recording metrics along the way. `rx` lets the shutdown handler help
/// drain the queue; transports without queue access pass `None`.
pub(crate) fn execute(shared: &Shared, rx: Option<&Receiver<Job>>, line: &str) -> String {
    let req = match proto::parse(line) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.record_unparsed();
            return e.err_line();
        }
    };
    let verb = req.verb();
    let start = Instant::now();
    let result = {
        let _span = ft_obs::span!("serve.request", verb = verb);
        dispatch(shared, rx, &req)
    };
    let latency = start.elapsed();
    // Advance the sliding windows off the request path's own clock reads;
    // the registry's WindowClock elects one caller per epoch boundary.
    let now_us = u64::try_from(shared.started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared
        .metrics
        .maybe_tick(now_us, shared.cfg.window_epoch_ms.saturating_mul(1000));
    match result {
        Ok(payload) => {
            shared.metrics.record(verb, latency, true);
            format!("OK {verb} {payload}")
        }
        Err(e) => {
            shared.metrics.record(verb, latency, false);
            e.err_line()
        }
    }
}

fn dispatch(
    shared: &Shared,
    rx: Option<&Receiver<Job>>,
    req: &Request,
) -> Result<String, ServeError> {
    match req {
        Request::Topo { mode } => exec_topo(shared, mode.as_ref()),
        Request::Paths { mode } => exec_paths(shared, mode.as_ref()),
        Request::Throughput {
            mode,
            epsilon,
            pattern,
            cluster,
            locality,
            seed,
            solver,
        } => exec_throughput(
            shared,
            mode.as_ref(),
            *epsilon,
            *pattern,
            *cluster,
            *locality,
            *seed,
            *solver,
        ),
        Request::Plan { to } => exec_plan(shared, to),
        Request::Convert { to } => exec_convert(shared, to),
        Request::Stats => Ok(shared.metrics.snapshot().stats_line()),
        Request::Metrics => Ok(exec_metrics(shared)),
        Request::Shutdown { deadline_ms } => exec_shutdown(shared, rx, *deadline_ms),
    }
}

/// Resolves a mode spec (or the current layout), returning the cache entry
/// for it — filling the cache on miss. The bool is `true` on a cache hit.
fn entry_for(
    shared: &Shared,
    spec: Option<&ModeSpec>,
) -> Result<(Mode, String, Arc<Materialized>, bool), ServeError> {
    let mode: Mode = match spec {
        Some(s) => s.to_mode(shared.pods)?,
        None => shared.controller.read().mode().clone(),
    };
    let layout = layout_letters(&mode, shared.pods);
    let key = CacheKey {
        k: shared.cfg.k,
        layout: layout.clone(),
    };
    if let Some(entry) = shared.cache.lock().get(&key) {
        shared.metrics.record_cache_hit();
        return Ok((mode, layout, entry, true));
    }
    shared.metrics.record_cache_miss();
    let _span = ft_obs::span!("serve.materialize", k = shared.cfg.k);
    let network = shared.controller.read().flat_tree().materialize(&mode)?;
    shared.metrics.record_materialization();
    let entry = Arc::new(Materialized::new(network));
    shared.cache.lock().insert(key, Arc::clone(&entry));
    Ok((mode, layout, entry, false))
}

fn source(hit: bool) -> &'static str {
    if hit {
        "hit"
    } else {
        "miss"
    }
}

fn exec_topo(shared: &Shared, spec: Option<&ModeSpec>) -> Result<String, ServeError> {
    let (mode, layout, entry, hit) = entry_for(shared, spec)?;
    let eq = entry.network.equipment();
    Ok(format!(
        "layout={layout} mode={} switches={} servers={} links={} source={}",
        mode.label(),
        eq.switches,
        eq.servers,
        eq.links,
        source(hit)
    ))
}

fn exec_paths(shared: &Shared, spec: Option<&ModeSpec>) -> Result<String, ServeError> {
    let (mode, layout, entry, hit) = entry_for(shared, spec)?;
    let (ans, cached_answer) = {
        let mut slot = entry.paths.lock();
        match *slot {
            Some(a) => (a, true),
            None => {
                // one multi-source BFS table per materialization; both
                // metrics read it through the *_with variants — time the
                // whole fill for the fill-latency histogram
                let t0 = std::time::Instant::now();
                let _span = ft_obs::span!("serve.path_fill", k = shared.cfg.k);
                let dist = entry.switch_distances();
                let a = PathsAnswer {
                    apl: average_server_path_length_with(&entry.network, &dist),
                    intra: average_intra_pod_path_length_with(
                        &entry.network,
                        shared.servers_per_pod,
                        &dist,
                    ),
                };
                shared.metrics.record_path_computation(t0.elapsed());
                *slot = Some(a);
                (a, false)
            }
        }
    };
    Ok(format!(
        "layout={layout} mode={} apl={:.4} intra={:.4} source={} cached_answer={cached_answer}",
        mode.label(),
        ans.apl,
        ans.intra,
        source(hit)
    ))
}

#[allow(clippy::too_many_arguments)] // mirrors the request's argument list
fn exec_throughput(
    shared: &Shared,
    spec: Option<&ModeSpec>,
    epsilon: f64,
    pattern: ft_workload::TrafficPattern,
    cluster: usize,
    locality: ft_workload::Locality,
    seed: u64,
    solver: SolverKind,
) -> Result<String, ServeError> {
    let (_, layout, entry, hit) = entry_for(shared, spec)?;
    let wl = WorkloadSpec {
        pattern,
        cluster_size: cluster,
        locality,
    };
    let tm = generate(&entry.network, &wl, seed);
    let commodities = aggregate_commodities(tm.switch_triples(&entry.network));
    // The sharded/aggregated engines warm-start from the per-network
    // distance table the cache already shares with the paths verb; the
    // batched baseline has no warm path, so don't force its computation.
    let warm = match solver {
        SolverKind::Batched => None,
        SolverKind::Sharded | SolverKind::Aggregated => Some(entry.switch_distances()),
    };
    let r = throughput_on_commodities_with(
        &entry.network,
        &commodities,
        ThroughputOptions::fptas_with(epsilon, solver),
        warm.as_deref(),
    )?;
    let solver_name = match solver {
        SolverKind::Batched => "batched",
        SolverKind::Sharded => "sharded",
        SolverKind::Aggregated => "aggregated",
    };
    // budget_exhausted is part of the reply contract: λ from a truncated
    // FPTAS run is a lower bound, and clients must be able to tell.
    Ok(format!(
        "layout={layout} eps={epsilon} solver={solver_name} lambda={:.6} commodities={} \
         aggregated={} exact={} budget_exhausted={} source={}",
        r.lambda,
        r.commodities,
        r.aggregated.unwrap_or(0),
        r.exact,
        r.budget_exhausted,
        source(hit)
    ))
}

fn exec_plan(shared: &Shared, to: &ModeSpec) -> Result<String, ServeError> {
    let to_mode = to.to_mode(shared.pods)?;
    let controller = shared.controller.read();
    let from_layout = layout_letters(controller.mode(), shared.pods);
    let plan = controller.plan(&to_mode)?;
    Ok(format!(
        "from={from_layout} to={} ops={} four={} six={} links_removed={} links_added={}",
        layout_letters(&to_mode, shared.pods),
        plan.converter_ops(),
        plan.four_changes.len(),
        plan.six_changes.len(),
        plan.links_removed.len(),
        plan.links_added.len()
    ))
}

fn exec_convert(shared: &Shared, to: &ModeSpec) -> Result<String, ServeError> {
    let to_mode = to.to_mode(shared.pods)?;
    let (from_layout, plan, conversions) = {
        let mut controller = shared.controller.write();
        let from_layout = layout_letters(controller.mode(), shared.pods);
        let plan = controller.convert(to_mode.clone())?;
        (from_layout, plan, controller.conversions())
    };
    if !plan.is_noop() {
        // The physical baseline changed: every cached layout is stale.
        shared.cache.lock().clear();
        shared.metrics.record_conversion();
    }
    Ok(format!(
        "from={from_layout} to={} ops={} links_removed={} links_added={} noop={} conversions={conversions}",
        layout_letters(&to_mode, shared.pods),
        plan.converter_ops(),
        plan.links_removed.len(),
        plan.links_added.len(),
        plan.is_noop()
    ))
}

/// Renders the `metrics` payload: an `lines=<n>` header token followed by
/// `n` Prometheus-style exposition lines — the service's own `ft_serve_*`
/// counters first, then the process-global ft-obs registry (solver, pool,
/// APSP and span-sink metrics), so one reply covers the whole stack.
fn exec_metrics(shared: &Shared) -> String {
    let mut body = shared.metrics.snapshot().exposition();
    body.push_str(&ft_obs::registry::expose());
    let n = body.lines().count();
    // The body is newline-terminated; the header token rides on the OK
    // line, so strip the trailing newline to avoid a blank last line.
    let trimmed = body.trim_end_matches('\n');
    format!("lines={n}\n{trimmed}")
}

fn exec_shutdown(
    shared: &Shared,
    rx: Option<&Receiver<Job>>,
    deadline_ms: u64,
) -> Result<String, ServeError> {
    if shared
        .shutting_down
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return Err(ServeError::ShuttingDown);
    }
    let start = Instant::now();
    let deadline = Duration::from_millis(deadline_ms);
    // Drain everything admitted before the flag flipped; this request
    // itself accounts for one pending slot.
    while shared.pending.load(Ordering::SeqCst) > 1 {
        if start.elapsed() > deadline {
            return Err(ServeError::Timeout {
                waited_ms: deadline_ms,
            });
        }
        match rx.map(|r| r.try_recv()) {
            Some(Ok(job)) => {
                // Help drain instead of occupying a pool slot idly. A
                // queued `shutdown` resolves to ERR shutdown (flag is set).
                if let Some(r) = rx {
                    run_job(shared, r, job);
                }
            }
            _ => std::thread::sleep(Duration::from_micros(200)),
        }
    }
    Ok(format!(
        "drained=true waited_ms={}",
        start.elapsed().as_millis()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServeConfig {
        ServeConfig::for_k(4)
    }

    #[test]
    fn serves_basic_requests_in_process() {
        let (replies, report) = Service::run(cfg(), |h| {
            vec![
                h.request("topo"),
                h.request("paths"),
                h.request("stats"),
                h.request("nonsense"),
            ]
        })
        .unwrap();
        assert!(replies[0].starts_with("OK topo "), "{}", replies[0]);
        assert!(replies[0].contains("switches=20"), "{}", replies[0]);
        assert!(replies[1].starts_with("OK paths "), "{}", replies[1]);
        assert!(replies[1].contains("apl="), "{}", replies[1]);
        assert!(replies[2].starts_with("OK stats "), "{}", replies[2]);
        assert!(
            replies[3].starts_with("ERR unknown-verb "),
            "{}",
            replies[3]
        );
        assert!(report.contains("ft-serve final report"), "{report}");
    }

    #[test]
    fn repeated_paths_hits_cache() {
        let ((first, second, snap), _) = Service::run(cfg(), |h| {
            let first = h.request("paths mode=global-rg");
            let second = h.request("paths mode=global-rg");
            (first, second, h.snapshot())
        })
        .unwrap();
        assert!(first.contains("source=miss"), "{first}");
        assert!(first.contains("cached_answer=false"), "{first}");
        assert!(second.contains("source=hit"), "{second}");
        assert!(second.contains("cached_answer=true"), "{second}");
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.materializations, 1, "hit must not re-materialize");
        assert_eq!(snap.path_computations, 1);
    }

    #[test]
    fn convert_applies_and_invalidates() {
        let (replies, _) = Service::run(cfg(), |h| {
            vec![
                h.request("paths"),
                h.request("convert to=global-rg"),
                h.request("paths"),
                h.request("convert to=global-rg"), // noop now
            ]
        })
        .unwrap();
        assert!(replies[1].contains("noop=false"), "{}", replies[1]);
        assert!(replies[1].contains("conversions=1"), "{}", replies[1]);
        assert_ne!(replies[0], replies[2], "layout change must change paths");
        assert!(replies[3].contains("noop=true"), "{}", replies[3]);
    }

    #[test]
    fn plan_does_not_mutate() {
        let (replies, _) = Service::run(cfg(), |h| {
            vec![h.request("plan to=local-rg"), h.request("topo")]
        })
        .unwrap();
        assert!(replies[0].starts_with("OK plan "), "{}", replies[0]);
        assert!(replies[0].contains("from=cccc"), "{}", replies[0]);
        assert!(replies[1].contains("mode=clos"), "{}", replies[1]);
    }

    #[test]
    fn shutdown_drains_and_rejects() {
        let (replies, _) = Service::run(cfg(), |h| {
            let ok = h.request("shutdown deadline_ms=2000");
            let rejected = h.request("topo");
            (ok, rejected)
        })
        .unwrap();
        assert!(
            replies.0.starts_with("OK shutdown drained=true"),
            "{}",
            replies.0
        );
        assert!(replies.1.starts_with("ERR shutdown "), "{}", replies.1);
    }

    #[test]
    fn double_shutdown_is_an_error() {
        let ((first, second), _) =
            Service::run(cfg(), |h| (h.request("shutdown"), h.request("shutdown"))).unwrap();
        assert!(first.starts_with("OK shutdown "), "{first}");
        assert!(second.starts_with("ERR shutdown "), "{second}");
    }

    #[test]
    fn bad_config_rejected() {
        let cfg = ServeConfig {
            workers: 0,
            ..ServeConfig::for_k(4)
        };
        assert!(Service::run(cfg, |_| ()).is_err());
        assert!(Service::run(ServeConfig::for_k(5), |_| ()).is_err());
    }

    #[test]
    fn metrics_verb_exposes_counters() {
        let (reply, _) = Service::run(cfg(), |h| {
            h.request("paths");
            h.request("metrics")
        })
        .unwrap();
        let mut lines = reply.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("OK metrics lines="), "{header}");
        let n: usize = header
            .trim_start_matches("OK metrics lines=")
            .parse()
            .unwrap();
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), n, "header line count must match body");
        assert!(n > 0);
        // Serve metrics, and (via the global registry) pool + APSP metrics
        // from the paths request's BFS fan-out, are all present.
        let text = body.join("\n");
        assert!(
            text.contains("ft_serve_requests_total{verb=\"paths\"} 1"),
            "{text}"
        );
        assert!(text.contains("ft_serve_cache_misses_total 1"), "{text}");
        assert!(text.contains("ft_metrics_apsp_total"), "{text}");
        assert!(text.contains("ft_par_"), "{text}");
        for line in &body {
            let (name, value) = line.rsplit_once(' ').unwrap();
            assert!(!name.is_empty());
            assert!(value.parse::<u64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn throughput_answers_with_lambda() {
        let (reply, _) = Service::run(cfg(), |h| {
            h.request("throughput eps=0.3 cluster=8 pattern=all-to-all seed=2")
        })
        .unwrap();
        assert!(reply.starts_with("OK throughput "), "{reply}");
        assert!(reply.contains("lambda="), "{reply}");
        assert!(reply.contains("eps=0.3"), "{reply}");
        assert!(reply.contains("solver=batched"), "{reply}");
        // an unbounded FPTAS run converges, and the reply must say so
        assert!(reply.contains("budget_exhausted=false"), "{reply}");
    }

    #[test]
    fn throughput_aggregated_solver_engages_and_exposes_gauge() {
        let ((reply, metrics), _) = Service::run(cfg(), |h| {
            // cluster=16 spans every server of the k = 4 network: the demand
            // matrix is uniform all-to-all, so the orbit closure holds.
            let reply = h.request("throughput eps=0.3 cluster=16 solver=aggregated seed=2");
            (reply, h.request("metrics"))
        })
        .unwrap();
        assert!(reply.starts_with("OK throughput "), "{reply}");
        assert!(reply.contains("solver=aggregated"), "{reply}");
        // k = 4 Clos is symmetric: the orbit count must be a real collapse,
        // not the aggregated=0 identity fallback.
        let collapsed: usize = reply
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("aggregated="))
            .unwrap()
            .parse()
            .unwrap();
        let full: usize = reply
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("commodities="))
            .unwrap()
            .parse()
            .unwrap();
        assert!(collapsed > 0, "{reply}");
        assert!(collapsed < full, "{reply}");
        // The orbit-count gauge reaches the wire via the metrics verb.
        assert!(
            metrics.contains("ft_mcf_aggregated_commodities"),
            "{metrics}"
        );
        assert!(
            metrics.contains("ft_mcf_aggregated_runs_total"),
            "{metrics}"
        );
    }
}
