//! FTQ/1 — the flat-tree query protocol.
//!
//! A versioned, line-delimited text protocol. One request per line:
//!
//! ```text
//! request  = [ "ftq/1" SP ] verb *( SP key "=" value )
//! verb     = "topo" | "paths" | "throughput" | "plan" | "convert"
//!          | "stats" | "metrics" | "shutdown"
//! reply    = "OK" SP verb *( SP key "=" value )
//!          | "ERR" SP code SP message
//! ```
//!
//! Values never contain whitespace; replies are always a single line so the
//! framing is symmetric in both directions — with one documented exception:
//! `metrics` replies with `OK metrics lines=<n>` followed by exactly `n`
//! Prometheus-style exposition lines (`name{label="v"} value`), so a client
//! reads the header line, then `n` more. The version token is optional
//! on requests (interactive convenience); any other `ftq/<v>` token is
//! rejected with `unsupported-version`.
//!
//! Mode/zone specifications (`mode=`/`to=`) accept the uniform names
//! `clos`, `local-rg` (or `local`), `global-rg` (or `global`), or a per-Pod
//! hybrid layout `hybrid:<letters>` with one letter per Pod: `c` (Clos),
//! `l` (local random), `g` (global random) — e.g. `hybrid:ggggllcc`. The
//! canonical cache key is always the expanded letter string.

use crate::error::ServeError;
use ft_core::{Mode, PodMode};
use ft_metrics::SolverKind;
use ft_workload::{Locality, TrafficPattern};
use std::collections::HashMap;

/// Default FPTAS ε for `throughput` requests that omit `eps=`.
pub const DEFAULT_EPSILON: f64 = 0.1;
/// Default cluster size for `throughput` workloads.
pub const DEFAULT_CLUSTER: usize = 16;
/// Default shutdown drain deadline in milliseconds.
pub const DEFAULT_SHUTDOWN_DEADLINE_MS: u64 = 5_000;

/// A mode/zone specification as written on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModeSpec {
    /// All Pods share one topology.
    Uniform(PodMode),
    /// Explicit per-Pod assignment.
    Hybrid(Vec<PodMode>),
}

impl ModeSpec {
    /// Parses a wire spec (see the module grammar).
    pub fn parse(s: &str) -> Result<ModeSpec, ServeError> {
        match s {
            "clos" => Ok(ModeSpec::Uniform(PodMode::Clos)),
            "local-rg" | "local" => Ok(ModeSpec::Uniform(PodMode::LocalRandom)),
            "global-rg" | "global" => Ok(ModeSpec::Uniform(PodMode::GlobalRandom)),
            other => {
                let Some(letters) = other.strip_prefix("hybrid:") else {
                    return Err(ServeError::BadMode(format!(
                        "unknown mode spec {other:?} (use clos | local-rg | global-rg | hybrid:<c/l/g per pod>)"
                    )));
                };
                let mut pods = Vec::with_capacity(letters.len());
                for ch in letters.chars() {
                    pods.push(match ch {
                        'c' => PodMode::Clos,
                        'l' => PodMode::LocalRandom,
                        'g' => PodMode::GlobalRandom,
                        other => {
                            return Err(ServeError::BadMode(format!(
                                "bad pod letter {other:?} in hybrid spec (use c, l or g)"
                            )))
                        }
                    });
                }
                if pods.is_empty() {
                    return Err(ServeError::BadMode(
                        "hybrid spec names zero pods".to_string(),
                    ));
                }
                Ok(ModeSpec::Hybrid(pods))
            }
        }
    }

    /// Resolves the spec against a network of `pods` Pods.
    pub fn to_mode(&self, pods: usize) -> Result<Mode, ServeError> {
        match self {
            ModeSpec::Uniform(PodMode::Clos) => Ok(Mode::Clos),
            ModeSpec::Uniform(PodMode::LocalRandom) => Ok(Mode::LocalRandom),
            ModeSpec::Uniform(PodMode::GlobalRandom) => Ok(Mode::GlobalRandom),
            ModeSpec::Hybrid(v) => {
                if v.len() != pods {
                    return Err(ServeError::BadMode(format!(
                        "hybrid spec names {} pods, network has {pods}",
                        v.len()
                    )));
                }
                Ok(Mode::Hybrid(v.clone()))
            }
        }
    }
}

/// The canonical per-Pod letter string for a resolved [`Mode`] — the cache
/// key under which materializations are stored.
pub fn layout_letters(mode: &Mode, pods: usize) -> String {
    let assignment = match mode {
        Mode::Clos => vec![PodMode::Clos; pods],
        Mode::LocalRandom => vec![PodMode::LocalRandom; pods],
        Mode::GlobalRandom => vec![PodMode::GlobalRandom; pods],
        Mode::Hybrid(v) => v.clone(),
    };
    assignment
        .iter()
        .map(|m| match m {
            PodMode::Clos => 'c',
            PodMode::LocalRandom => 'l',
            PodMode::GlobalRandom => 'g',
        })
        .collect()
}

/// A parsed FTQ/1 request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Equipment/topology summary for a (possibly hypothetical) layout.
    Topo {
        /// Layout to summarize; `None` = the service's current layout.
        mode: Option<ModeSpec>,
    },
    /// Average server-pair path lengths (network-wide and intra-Pod).
    Paths {
        /// Layout to evaluate; `None` = the service's current layout.
        mode: Option<ModeSpec>,
    },
    /// FPTAS concurrent-flow throughput λ under a generated workload.
    Throughput {
        /// Layout to evaluate; `None` = the service's current layout.
        mode: Option<ModeSpec>,
        /// FPTAS approximation parameter.
        epsilon: f64,
        /// Traffic pattern within clusters.
        pattern: TrafficPattern,
        /// Servers per cluster.
        cluster: usize,
        /// Placement locality.
        locality: Locality,
        /// Workload placement seed.
        seed: u64,
        /// FPTAS routing engine (batched | sharded | aggregated).
        solver: SolverKind,
    },
    /// Converter-diff preview for a conversion (no state change).
    Plan {
        /// Target layout.
        to: ModeSpec,
    },
    /// Apply a conversion via the controller (invalidates the cache).
    Convert {
        /// Target layout.
        to: ModeSpec,
    },
    /// Metrics snapshot (single `key=value` line).
    Stats,
    /// Prometheus-style metrics exposition (the multi-line reply — see the
    /// module grammar for the framing).
    Metrics,
    /// Graceful drain: reject new work, wait for in-flight requests.
    Shutdown {
        /// Drain deadline in milliseconds.
        deadline_ms: u64,
    },
}

impl Request {
    /// The verb this request answers to (used in `OK <verb> …` replies and
    /// metrics keys).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Topo { .. } => "topo",
            Request::Paths { .. } => "paths",
            Request::Throughput { .. } => "throughput",
            Request::Plan { .. } => "plan",
            Request::Convert { .. } => "convert",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown { .. } => "shutdown",
        }
    }
}

fn split_args(tokens: &[&str]) -> Result<HashMap<String, String>, ServeError> {
    let mut args = HashMap::new();
    for tok in tokens {
        let Some((k, v)) = tok.split_once('=') else {
            return Err(ServeError::BadRequest(format!(
                "expected key=value argument, got {tok:?}"
            )));
        };
        if k.is_empty() || v.is_empty() {
            return Err(ServeError::BadRequest(format!(
                "empty key or value in {tok:?}"
            )));
        }
        if args.insert(k.to_string(), v.to_string()).is_some() {
            return Err(ServeError::BadRequest(format!("duplicate argument {k:?}")));
        }
    }
    Ok(args)
}

fn parse_f64(args: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, ServeError> {
    match args.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| ServeError::BadRequest(format!("{key}= must be a number, got {v:?}"))),
    }
}

fn parse_u64(args: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, ServeError> {
    match args.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            ServeError::BadRequest(format!("{key}= must be a non-negative integer, got {v:?}"))
        }),
    }
}

fn parse_mode_arg(
    args: &HashMap<String, String>,
    key: &str,
) -> Result<Option<ModeSpec>, ServeError> {
    args.get(key).map(|s| ModeSpec::parse(s)).transpose()
}

fn reject_unknown(args: &HashMap<String, String>, allowed: &[&str]) -> Result<(), ServeError> {
    for k in args.keys() {
        if !allowed.contains(&k.as_str()) {
            return Err(ServeError::BadRequest(format!(
                "unknown argument {k:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Parses one FTQ/1 request line.
pub fn parse(line: &str) -> Result<Request, ServeError> {
    let mut tokens: Vec<&str> = line.split_whitespace().collect();
    if let Some(first) = tokens.first() {
        let lower = first.to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("ftq/") {
            if rest != "1" {
                return Err(ServeError::UnsupportedVersion(first.to_string()));
            }
            tokens.remove(0);
        }
    }
    let Some((&verb, rest)) = tokens.split_first() else {
        return Err(ServeError::BadRequest("empty request line".to_string()));
    };
    let args = split_args(rest)?;
    match verb {
        "topo" => {
            reject_unknown(&args, &["mode"])?;
            Ok(Request::Topo {
                mode: parse_mode_arg(&args, "mode")?,
            })
        }
        "paths" => {
            reject_unknown(&args, &["mode"])?;
            Ok(Request::Paths {
                mode: parse_mode_arg(&args, "mode")?,
            })
        }
        "throughput" => {
            reject_unknown(
                &args,
                &[
                    "mode", "eps", "pattern", "cluster", "locality", "seed", "solver",
                ],
            )?;
            let epsilon = parse_f64(&args, "eps", DEFAULT_EPSILON)?;
            if !(epsilon > 0.0 && epsilon < 0.5) {
                return Err(ServeError::BadRequest(format!(
                    "eps= must be in (0, 0.5), got {epsilon}"
                )));
            }
            let pattern = match args.get("pattern").map(String::as_str) {
                None | Some("all-to-all") => TrafficPattern::AllToAll,
                Some("hotspot") => TrafficPattern::HotSpot,
                Some("permutation") => TrafficPattern::Permutation,
                Some(other) => {
                    return Err(ServeError::BadRequest(format!(
                        "unknown pattern {other:?} (use hotspot | all-to-all | permutation)"
                    )))
                }
            };
            let locality = match args.get("locality").map(String::as_str) {
                None | Some("none") => Locality::None,
                Some("strong") => Locality::Strong,
                Some("weak") => Locality::Weak,
                Some(other) => {
                    return Err(ServeError::BadRequest(format!(
                        "unknown locality {other:?} (use strong | weak | none)"
                    )))
                }
            };
            let solver = match args.get("solver").map(String::as_str) {
                None | Some("batched") => SolverKind::Batched,
                Some("sharded") => SolverKind::Sharded,
                Some("aggregated") => SolverKind::Aggregated,
                Some(other) => {
                    return Err(ServeError::BadRequest(format!(
                        "unknown solver {other:?} (use batched | sharded | aggregated)"
                    )))
                }
            };
            let cluster_u64 = parse_u64(&args, "cluster", DEFAULT_CLUSTER as u64)?;
            if cluster_u64 < 2 {
                return Err(ServeError::BadRequest(format!(
                    "cluster= must be at least 2, got {cluster_u64}"
                )));
            }
            Ok(Request::Throughput {
                mode: parse_mode_arg(&args, "mode")?,
                epsilon,
                pattern,
                cluster: usize::try_from(cluster_u64)
                    .map_err(|_| ServeError::BadRequest("cluster= out of range".to_string()))?,
                locality,
                seed: parse_u64(&args, "seed", 1)?,
                solver,
            })
        }
        "plan" | "convert" => {
            reject_unknown(&args, &["to"])?;
            let to = args
                .get("to")
                .ok_or_else(|| ServeError::BadRequest(format!("{verb} requires to=<mode>")))
                .and_then(|s| ModeSpec::parse(s))?;
            if verb == "plan" {
                Ok(Request::Plan { to })
            } else {
                Ok(Request::Convert { to })
            }
        }
        "stats" => {
            reject_unknown(&args, &[])?;
            Ok(Request::Stats)
        }
        "metrics" => {
            reject_unknown(&args, &[])?;
            Ok(Request::Metrics)
        }
        "shutdown" => {
            reject_unknown(&args, &["deadline_ms"])?;
            Ok(Request::Shutdown {
                deadline_ms: parse_u64(&args, "deadline_ms", DEFAULT_SHUTDOWN_DEADLINE_MS)?,
            })
        }
        other => Err(ServeError::UnknownVerb(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse() {
        assert_eq!(parse("stats").unwrap(), Request::Stats);
        assert_eq!(parse("metrics").unwrap(), Request::Metrics);
        assert!(parse("metrics verbose=1").is_err());
        assert_eq!(parse("ftq/1 paths").unwrap(), Request::Paths { mode: None });
        assert_eq!(
            parse("FTQ/1 topo mode=clos").unwrap(),
            Request::Topo {
                mode: Some(ModeSpec::Uniform(PodMode::Clos))
            }
        );
        assert_eq!(
            parse("shutdown deadline_ms=250").unwrap(),
            Request::Shutdown { deadline_ms: 250 }
        );
    }

    #[test]
    fn throughput_defaults_and_overrides() {
        let Request::Throughput {
            epsilon,
            pattern,
            cluster,
            locality,
            seed,
            mode,
            solver,
        } = parse("throughput").unwrap()
        else {
            panic!("wrong variant");
        };
        assert!((epsilon - DEFAULT_EPSILON).abs() < 1e-12);
        assert_eq!(pattern, TrafficPattern::AllToAll);
        assert_eq!(cluster, DEFAULT_CLUSTER);
        assert_eq!(locality, Locality::None);
        assert_eq!(seed, 1);
        assert_eq!(solver, SolverKind::Batched);
        assert!(mode.is_none());

        let r = parse(
            "throughput mode=global-rg eps=0.2 pattern=hotspot cluster=8 locality=weak seed=9 \
             solver=aggregated",
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Throughput {
                mode: Some(ModeSpec::Uniform(PodMode::GlobalRandom)),
                epsilon: 0.2,
                pattern: TrafficPattern::HotSpot,
                cluster: 8,
                locality: Locality::Weak,
                seed: 9,
                solver: SolverKind::Aggregated,
            }
        );
        assert!(matches!(
            parse("throughput solver=simplex"),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn hybrid_specs() {
        let spec = ModeSpec::parse("hybrid:gglc").unwrap();
        assert_eq!(
            spec,
            ModeSpec::Hybrid(vec![
                PodMode::GlobalRandom,
                PodMode::GlobalRandom,
                PodMode::LocalRandom,
                PodMode::Clos
            ])
        );
        assert!(spec.to_mode(4).is_ok());
        assert!(matches!(spec.to_mode(8), Err(ServeError::BadMode(_))));
        assert!(ModeSpec::parse("hybrid:").is_err());
        assert!(ModeSpec::parse("hybrid:ggx").is_err());
        assert!(ModeSpec::parse("mesh").is_err());
    }

    #[test]
    fn layout_letters_round_trip() {
        assert_eq!(layout_letters(&Mode::Clos, 4), "cccc");
        assert_eq!(layout_letters(&Mode::two_zone(4, 2), 4), "ggll");
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(matches!(parse(""), Err(ServeError::BadRequest(_))));
        assert!(matches!(
            parse("frobnicate"),
            Err(ServeError::UnknownVerb(_))
        ));
        assert!(matches!(
            parse("ftq/2 stats"),
            Err(ServeError::UnsupportedVersion(_))
        ));
        assert!(matches!(
            parse("paths positional"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("paths mode=clos mode=clos"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("paths nope=1"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("throughput eps=0.9"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("throughput eps=nan"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(parse("convert"), Err(ServeError::BadRequest(_))));
    }
}
