//! ft-serve — a resident query service for flat-tree networks.
//!
//! Everything else in the workspace is batch-shaped: build a topology,
//! compute a metric, print, exit. This crate keeps a
//! [`ft_control::Controller`] resident and answers FTQ/1 requests — a
//! versioned, line-delimited text protocol — over two transports that share
//! one engine:
//!
//! - **in-process**: [`Service::run`] hands the caller a [`Handle`] whose
//!   [`Handle::request`] maps one request line to one reply line;
//! - **TCP**: [`serve_listener`] accepts localhost connections and speaks
//!   the same protocol over the wire.
//!
//! Internally a fixed worker pool (crossbeam scoped threads over a bounded
//! MPMC channel) executes requests against a `parking_lot`-guarded LRU
//! cache of materialized layouts keyed by `(k, zone-layout)`, so repeated
//! `topo`/`paths`/`throughput` queries for the same layout skip both the
//! materialization and the batched-BFS path pass. A `convert` request
//! applies the change through the controller and invalidates the cache. A
//! [`MetricsRegistry`] (built on the `ft-obs` counter/histogram
//! primitives) counts requests, errors, latencies (power-of-two histogram
//! buckets) and cache traffic; `stats` returns a one-line snapshot,
//! `metrics` a Prometheus-style exposition covering serve, solver and
//! pool counters, and shutdown dumps a full report.
//!
//! Protocol sketch (see DESIGN.md §9 for the grammar):
//!
//! ```text
//! > ftq/1 paths mode=hybrid:ggll
//! < OK paths layout=ggll mode=hybrid(g=2,l=2,c=0) apl=3.1408 intra=3.5714 source=miss cached_answer=false
//! > convert to=global-rg
//! < OK convert from=cccc to=gggg ops=24 links_removed=16 links_added=14 noop=false conversions=1
//! > nonsense
//! < ERR unknown-verb unknown verb "nonsense" (use topo | paths | throughput | plan | convert | stats | metrics | shutdown)
//! ```
//!
//! Malformed input, full queues and draining states all come back as
//! single-line `ERR <code> <msg>` replies — a request can never kill a
//! worker. Replies are one line except for `metrics` (header plus `n`
//! exposition lines; see the `proto` module grammar).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod cache;
pub mod error;
pub mod metrics;
pub mod proto;
pub mod service;
pub mod tcp;

pub use cache::{CacheKey, LruCache, Materialized, PathsAnswer};
pub use error::ServeError;
pub use metrics::{KindSnapshot, MetricsRegistry, Snapshot};
pub use proto::{layout_letters, parse, ModeSpec, Request};
pub use service::{Handle, ServeConfig, Service};
pub use tcp::{serve_listener, MAX_LINE_BYTES};
