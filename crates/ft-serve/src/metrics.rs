//! Request metrics: per-verb counters, latency histograms, cache and
//! engine counters — built on the [`ft_obs`] metric primitives (PR 5
//! absorbed the ad-hoc atomics this module used to carry).
//!
//! Everything is lock-free (relaxed `AtomicU64` inside
//! [`ft_obs::Counter`]/[`ft_obs::Histogram`]) so recording never contends
//! with the worker pool. Latencies land in power-of-two microsecond
//! buckets: bucket `i` covers `[2^(i−1), 2^i)` µs (bucket 0 is `< 1 µs`),
//! which is plenty of resolution to tell a cache hit from a BFS re-run.
//! Quantiles (p50/p95/p99) are derived through the shared
//! [`ft_obs::quantile_lower_bound`] helper — the same one the exposition
//! format uses — and report the lower bound of the crossing bucket.
//!
//! Every latency histogram is recorded twice: into a cumulative
//! [`ft_obs::Histogram`] (exposed as before) and into a sliding
//! [`ft_obs::WindowedHistogram`] covering the last
//! [`ft_obs::WINDOW_EPOCHS`] epochs. The `stats` line and the shutdown
//! report quote the *windowed* quantiles — a p95 that recovers when the
//! service does, which is what the roadmap's admission-control work needs
//! — while the exposition keeps both (`…_us` cumulative, `…_us_window`
//! windowed). Epochs advance via [`MetricsRegistry::maybe_tick`], driven
//! by the request path; until the first tick the window holds everything
//! ever recorded, so short-lived instances see windowed == cumulative.

use ft_obs::{
    Counter, Histogram, HistogramSnapshot, WindowClock, WindowedHistogram, MIN_WINDOW_SAMPLES,
};
use std::time::Duration;

/// Number of latency buckets (re-exported from ft-obs; bucket 21 tops out
/// at ~2 s, slower requests saturate into it).
pub const BUCKETS: usize = ft_obs::BUCKETS;

/// The request kinds the registry tracks, in wire-verb order.
pub const KINDS: [&str; 8] = [
    "topo",
    "paths",
    "throughput",
    "plan",
    "convert",
    "stats",
    "metrics",
    "shutdown",
];

fn kind_index(verb: &str) -> Option<usize> {
    KINDS.iter().position(|&k| k == verb)
}

#[derive(Default)]
struct KindStats {
    requests: Counter,
    errors: Counter,
    latency: Histogram,
    /// Same samples as `latency`, over the sliding window only.
    window: WindowedHistogram,
}

/// The service-wide metrics registry.
#[derive(Default)]
pub struct MetricsRegistry {
    kinds: [KindStats; KINDS.len()],
    /// Requests that failed before a verb was known (parse errors).
    unparsed_errors: Counter,
    /// Requests rejected because the job queue was full.
    rejected_busy: Counter,
    /// Requests rejected because the service was draining.
    rejected_shutdown: Counter,
    /// Materialization-cache hits.
    cache_hits: Counter,
    /// Materialization-cache misses (entry had to be built).
    cache_misses: Counter,
    /// Networks materialized to fill the cache.
    materializations: Counter,
    /// Latency histogram of batched-BFS cache-entry fills (its sample
    /// count doubles as the path-computation counter). The fill runs the
    /// parallel BFS-APSP kernel, so this is the service's direct view of
    /// the hot-path kernel's latency.
    path_fill: Histogram,
    /// Same fill samples as `path_fill`, over the sliding window only.
    path_fill_window: WindowedHistogram,
    /// Elects which caller advances the window epochs (the relaxed
    /// tick-election atomic lives in ft-obs by lint policy).
    clock: WindowClock,
    /// Conversions applied by `convert` requests.
    conversions: Counter,
    /// Whole-cache invalidations triggered by conversions.
    invalidations: Counter,
}

impl MetricsRegistry {
    /// A fresh, all-zero registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records a completed request of `verb` with its latency; `ok` is
    /// false when the reply was an `ERR`.
    pub fn record(&self, verb: &str, latency: Duration, ok: bool) {
        let Some(i) = kind_index(verb) else {
            self.unparsed_errors.incr();
            return;
        };
        let k = &self.kinds[i];
        k.requests.incr();
        if !ok {
            k.errors.incr();
        }
        k.latency.record(latency);
        k.window.record(latency);
    }

    /// Advances the sliding windows when at least one epoch of
    /// `epoch_us` has elapsed at monotonic time `now_us`. The embedded
    /// [`WindowClock`] elects exactly one caller per boundary, so the
    /// request path can call this unconditionally; `epoch_us == 0`
    /// disables ticking (the window then just mirrors the cumulative
    /// histograms).
    pub fn maybe_tick(&self, now_us: u64, epoch_us: u64) {
        let due = self.clock.due_epochs(now_us, epoch_us);
        for _ in 0..due {
            for k in &self.kinds {
                k.window.tick();
            }
            self.path_fill_window.tick();
        }
    }

    /// Counts a request that failed to parse (no verb attributable).
    pub fn record_unparsed(&self) {
        self.unparsed_errors.incr();
    }

    /// Counts a queue-full rejection.
    pub fn record_busy(&self) {
        self.rejected_busy.incr();
    }

    /// Counts a rejected-because-draining request.
    pub fn record_shutdown_rejection(&self) {
        self.rejected_shutdown.incr();
    }

    /// Counts a materialization-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.incr();
    }

    /// Counts a materialization-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.incr();
    }

    /// Counts one network materialization (cache fill).
    pub fn record_materialization(&self) {
        self.materializations.incr();
    }

    /// Records one batched-BFS path-length computation (cache-entry fill)
    /// and the time the parallel APSP kernel took.
    pub fn record_path_computation(&self, latency: Duration) {
        self.path_fill.record(latency);
        self.path_fill_window.record(latency);
    }

    /// Counts an applied conversion and the cache invalidation it forced.
    pub fn record_conversion(&self) {
        self.conversions.incr();
        self.invalidations.incr();
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> Snapshot {
        let kinds = self
            .kinds
            .iter()
            .enumerate()
            .map(|(i, k)| KindSnapshot {
                verb: KINDS[i],
                requests: k.requests.get(),
                errors: k.errors.get(),
                latency: k.latency.snapshot(),
                window: k.window.snapshot(),
            })
            .collect();
        let path_fill = self.path_fill.snapshot();
        Snapshot {
            kinds,
            unparsed_errors: self.unparsed_errors.get(),
            rejected_busy: self.rejected_busy.get(),
            rejected_shutdown: self.rejected_shutdown.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            materializations: self.materializations.get(),
            path_computations: path_fill.count,
            path_fill,
            path_fill_window: self.path_fill_window.snapshot(),
            conversions: self.conversions.get(),
            invalidations: self.invalidations.get(),
        }
    }
}

/// Counters for one request kind at snapshot time.
#[derive(Clone, Debug)]
pub struct KindSnapshot {
    /// The wire verb.
    pub verb: &'static str,
    /// Requests completed (OK or ERR).
    pub requests: u64,
    /// Of those, ERR replies.
    pub errors: u64,
    /// Latency histogram (power-of-two µs buckets, count and µs sum).
    pub latency: HistogramSnapshot,
    /// The same latencies restricted to the sliding window; equal to
    /// `latency` until the first epoch tick.
    pub window: HistogramSnapshot,
}

impl KindSnapshot {
    /// Approximate p50 latency in µs: the lower bound of the bucket that
    /// crosses half the mass (0 when no requests were recorded).
    pub fn p50_us(&self) -> u64 {
        self.latency.p50_us()
    }

    /// Approximate p95 latency in µs (same bucket-resolution caveat).
    pub fn p95_us(&self) -> u64 {
        self.latency.p95_us()
    }

    /// Approximate p99 latency in µs (same bucket-resolution caveat).
    pub fn p99_us(&self) -> u64 {
        self.latency.p99_us()
    }

    /// True when the sliding window holds at least one sample but fewer
    /// than [`MIN_WINDOW_SAMPLES`] — its quantiles are then quoted with a
    /// low-confidence marker.
    pub fn window_low(&self) -> bool {
        self.window.count > 0 && self.window.count < MIN_WINDOW_SAMPLES
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Per-kind stats, in [`KINDS`] order.
    pub kinds: Vec<KindSnapshot>,
    /// Requests that failed before a verb was known.
    pub unparsed_errors: u64,
    /// Queue-full rejections.
    pub rejected_busy: u64,
    /// Draining rejections.
    pub rejected_shutdown: u64,
    /// Materialization-cache hits.
    pub cache_hits: u64,
    /// Materialization-cache misses.
    pub cache_misses: u64,
    /// Networks materialized to fill the cache.
    pub materializations: u64,
    /// Batched-BFS path-length computations (the fill histogram's count).
    pub path_computations: u64,
    /// Cache-fill latency histogram.
    pub path_fill: HistogramSnapshot,
    /// Cache-fill latencies restricted to the sliding window.
    pub path_fill_window: HistogramSnapshot,
    /// Conversions applied.
    pub conversions: u64,
    /// Cache invalidations.
    pub invalidations: u64,
}

impl Snapshot {
    /// Approximate p50 cache-fill latency in µs (bucket lower bound).
    pub fn path_fill_p50_us(&self) -> u64 {
        self.path_fill.p50_us()
    }

    /// Approximate p95 cache-fill latency in µs (bucket lower bound).
    pub fn path_fill_p95_us(&self) -> u64 {
        self.path_fill.p95_us()
    }

    /// Approximate p99 cache-fill latency in µs (bucket lower bound).
    pub fn path_fill_p99_us(&self) -> u64 {
        self.path_fill.p99_us()
    }

    /// Total completed requests across all kinds.
    pub fn total_requests(&self) -> u64 {
        self.kinds.iter().map(|k| k.requests).sum()
    }

    /// Total ERR replies across all kinds (parse failures included).
    pub fn total_errors(&self) -> u64 {
        self.kinds.iter().map(|k| k.errors).sum::<u64>() + self.unparsed_errors
    }

    /// The single-line `OK stats …` payload (everything `key=value`).
    pub fn stats_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "proto=FTQ/1 total={} errors={} busy={} draining_rejects={} \
             cache_hits={} cache_misses={} materializations={} path_computations={} \
             conversions={} invalidations={}",
            self.total_requests(),
            self.total_errors(),
            self.rejected_busy,
            self.rejected_shutdown,
            self.cache_hits,
            self.cache_misses,
            self.materializations,
            self.path_computations,
            self.conversions,
            self.invalidations,
        );
        // Quantile tokens quote the sliding window (identical to the
        // cumulative values until the first epoch tick); a `_window_low`
        // marker flags windows too thin to trust.
        let _ = write!(
            out,
            " path_fill_p50_us={} path_fill_p95_us={} path_fill_p99_us={}",
            self.path_fill_window.p50_us(),
            self.path_fill_window.p95_us(),
            self.path_fill_window.p99_us(),
        );
        if self.path_fill_window.count > 0 && self.path_fill_window.count < MIN_WINDOW_SAMPLES {
            let _ = write!(out, " path_fill_window_low=true");
        }
        for k in &self.kinds {
            let _ = write!(
                out,
                " {v}={} {v}_errors={} {v}_p50_us={} {v}_p95_us={} {v}_p99_us={}",
                k.requests,
                k.errors,
                k.window.p50_us(),
                k.window.p95_us(),
                k.window.p99_us(),
                v = k.verb
            );
            if k.window_low() {
                let _ = write!(out, " {v}_window_low=true", v = k.verb);
            }
        }
        out
    }

    /// Prometheus-style exposition lines for the service counters
    /// (`ft_serve_*` namespace), one `name{labels} value` per line, sorted
    /// for deterministic output. The `metrics` verb concatenates this with
    /// the process-global [`ft_obs::registry::expose`] text so one reply
    /// covers serve, solver and pool metrics.
    pub fn exposition(&self) -> String {
        use std::fmt::Write as _;
        let mut lines: Vec<String> = Vec::new();
        let hist = |lines: &mut Vec<String>, name: &str, labels: &str, h: &HistogramSnapshot| {
            let sep = if labels.is_empty() { "" } else { "," };
            let brace = |extra: &str| {
                if labels.is_empty() && extra.is_empty() {
                    String::new()
                } else if extra.is_empty() {
                    format!("{{{labels}}}")
                } else {
                    format!("{{{labels}{sep}{extra}}}")
                }
            };
            for (q, tag) in [(0.5, "0.50"), (0.95, "0.95"), (0.99, "0.99")] {
                lines.push(format!(
                    "{name}{} {}",
                    brace(&format!("q=\"{tag}\"")),
                    h.quantile_us(q)
                ));
            }
            lines.push(format!("{name}_count{} {}", brace(""), h.count));
            lines.push(format!("{name}_sum{} {}", brace(""), h.sum_us));
        };
        for k in &self.kinds {
            let labels = format!("verb=\"{}\"", k.verb);
            lines.push(format!(
                "ft_serve_requests_total{{{labels}}} {}",
                k.requests
            ));
            lines.push(format!("ft_serve_errors_total{{{labels}}} {}", k.errors));
            hist(
                &mut lines,
                "ft_serve_request_latency_us",
                &labels,
                &k.latency,
            );
            hist(
                &mut lines,
                "ft_serve_request_latency_us_window",
                &labels,
                &k.window,
            );
        }
        for (name, v) in [
            ("ft_serve_unparsed_errors_total", self.unparsed_errors),
            ("ft_serve_rejected_busy_total", self.rejected_busy),
            ("ft_serve_rejected_shutdown_total", self.rejected_shutdown),
            ("ft_serve_cache_hits_total", self.cache_hits),
            ("ft_serve_cache_misses_total", self.cache_misses),
            ("ft_serve_materializations_total", self.materializations),
            ("ft_serve_path_computations_total", self.path_computations),
            ("ft_serve_conversions_total", self.conversions),
            ("ft_serve_invalidations_total", self.invalidations),
        ] {
            lines.push(format!("{name} {v}"));
        }
        hist(&mut lines, "ft_serve_path_fill_us", "", &self.path_fill);
        hist(
            &mut lines,
            "ft_serve_path_fill_us_window",
            "",
            &self.path_fill_window,
        );
        lines.sort_unstable();
        let mut out = String::new();
        for l in &lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }

    /// The multi-line shutdown dump: counters plus per-kind histograms.
    pub fn render_report(&self, uptime: Duration) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ft-serve final report (uptime {:.3} s)",
            uptime.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "  requests: {} total, {} errors, {} busy-rejected, {} drain-rejected",
            self.total_requests(),
            self.total_errors(),
            self.rejected_busy,
            self.rejected_shutdown
        );
        let _ = writeln!(
            out,
            "  cache: {} hits, {} misses, {} materializations, {} path computations, {} invalidations",
            self.cache_hits, self.cache_misses, self.materializations, self.path_computations,
            self.invalidations
        );
        let _ = writeln!(out, "  conversions applied: {}", self.conversions);
        if self.path_computations > 0 {
            // mean is lifetime-cumulative; the quantiles quote the window
            let _ = writeln!(
                out,
                "  path fills: {} computed, mean {} µs, p50 {} µs, p95 {} µs, p99 {} µs",
                self.path_computations,
                self.path_fill.mean_us(),
                self.path_fill_window.p50_us(),
                self.path_fill_window.p95_us(),
                self.path_fill_window.p99_us()
            );
            if self.path_fill_window.count > 0 && self.path_fill_window.count < MIN_WINDOW_SAMPLES {
                let _ = writeln!(
                    out,
                    "    warning: only {} fill(s) in the window — quantiles are low-confidence",
                    self.path_fill_window.count
                );
            }
        }
        for k in &self.kinds {
            if k.requests == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<10} {:>6} req  {:>3} err  mean {:>8} µs  p50 {:>7} µs  p95 {:>7} µs  p99 {:>7} µs",
                k.verb,
                k.requests,
                k.errors,
                k.latency.mean_us(),
                k.window.p50_us(),
                k.window.p95_us(),
                k.window.p99_us()
            );
            if k.window_low() {
                let _ = writeln!(
                    out,
                    "    warning: only {} sample(s) in the window — quantiles are low-confidence",
                    k.window.count
                );
            }
            let mut hist = String::new();
            for (i, &c) in k.latency.buckets.iter().enumerate() {
                if c > 0 {
                    let lo = ft_obs::bucket_lower_bound_us(i);
                    let _ = write!(hist, " [{lo}µs:{c}]");
                }
            }
            if !hist.is_empty() {
                let _ = writeln!(out, "    latency buckets:{hist}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = MetricsRegistry::new();
        m.record("paths", Duration::from_micros(100), true);
        m.record("paths", Duration::from_micros(200), false);
        m.record("stats", Duration::from_micros(1), true);
        m.record_cache_hit();
        m.record_cache_miss();
        m.record_materialization();
        m.record_conversion();
        let s = m.snapshot();
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.total_errors(), 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.conversions, 1);
        assert_eq!(s.invalidations, 1);
        let paths = &s.kinds[1];
        assert_eq!(paths.verb, "paths");
        assert_eq!(paths.requests, 2);
        assert_eq!(paths.errors, 1);
        assert!(paths.p50_us() >= 64 && paths.p50_us() <= 128);
        assert!(paths.p95_us() >= paths.p50_us());
    }

    #[test]
    fn metrics_verb_is_a_tracked_kind() {
        let m = MetricsRegistry::new();
        m.record("metrics", Duration::from_micros(10), true);
        let s = m.snapshot();
        assert_eq!(s.total_requests(), 1);
        let k = s
            .kinds
            .iter()
            .find(|k| k.verb == "metrics")
            .expect("metrics kind");
        assert_eq!(k.requests, 1);
    }

    #[test]
    fn path_fill_latency_histogram() {
        let m = MetricsRegistry::new();
        m.record_path_computation(Duration::from_micros(100));
        m.record_path_computation(Duration::from_micros(100));
        m.record_path_computation(Duration::from_micros(5000));
        let s = m.snapshot();
        assert_eq!(s.path_computations, 3);
        assert_eq!(s.path_fill.sum_us, 5200);
        assert_eq!(s.path_fill.buckets.iter().sum::<u64>(), 3);
        assert!(s.path_fill_p50_us() >= 64 && s.path_fill_p50_us() <= 128);
        assert!(s.path_fill_p95_us() >= 4096);
        assert!(s.path_fill_p99_us() >= 4096);
        let line = s.stats_line();
        assert!(line.contains("path_computations=3"));
        assert!(line.contains("path_fill_p50_us="));
        assert!(line.contains("path_fill_p95_us="));
        let report = s.render_report(Duration::from_secs(1));
        assert!(report.contains("path fills: 3 computed"));
        assert!(report.contains("p95"));
    }

    #[test]
    fn windowed_quantiles_age_out_and_flag_thin_windows() {
        let m = MetricsRegistry::new();
        for _ in 0..16 {
            m.record("paths", Duration::from_millis(100), true);
        }
        // Advance one epoch at a time until the slow burst ages out.
        for e in 1..=(ft_obs::WINDOW_EPOCHS as u64) {
            m.maybe_tick(e * 1_000_000, 1_000_000);
        }
        m.record("paths", Duration::from_micros(10), true);
        let s = m.snapshot();
        let k = &s.kinds[1];
        assert_eq!(k.verb, "paths");
        assert_eq!(k.latency.count, 17, "cumulative keeps everything");
        assert_eq!(k.window.count, 1, "window aged the burst out");
        assert!(
            k.p95_us() >= 65536,
            "cumulative p95 stays slow: {}",
            k.p95_us()
        );
        assert!(
            k.window.p95_us() <= 16,
            "windowed p95 recovered: {}",
            k.window.p95_us()
        );
        assert!(k.window_low());
        let line = s.stats_line();
        assert!(line.contains("paths_p95_us=8"), "{line}");
        assert!(line.contains("paths_window_low=true"), "{line}");
        let report = s.render_report(Duration::from_secs(1));
        assert!(report.contains("low-confidence"), "{report}");
        let text = s.exposition();
        assert!(
            text.contains("ft_serve_request_latency_us_window{verb=\"paths\",q=\"0.95\"} 8"),
            "{text}"
        );
        assert!(
            text.contains("ft_serve_request_latency_us_window_count{verb=\"paths\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ft_serve_request_latency_us_count{verb=\"paths\"} 17"),
            "{text}"
        );
    }

    #[test]
    fn maybe_tick_zero_epoch_is_disabled() {
        let m = MetricsRegistry::new();
        m.record("topo", Duration::from_micros(50), true);
        m.maybe_tick(10_000_000, 0);
        let s = m.snapshot();
        assert_eq!(s.kinds[0].window.count, 1, "no tick may happen");
        assert_eq!(s.kinds[0].window.count, s.kinds[0].latency.count);
    }

    #[test]
    fn stats_line_is_single_line_and_parseable() {
        let m = MetricsRegistry::new();
        m.record("topo", Duration::from_micros(10), true);
        let line = m.snapshot().stats_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("cache_hits=0"));
        assert!(line.contains("topo=1"));
        assert!(line.contains("topo_p95_us="));
        for tok in line.split_whitespace() {
            assert!(tok.contains('='), "token {tok:?} not key=value");
        }
    }

    #[test]
    fn unknown_verb_counts_as_unparsed() {
        let m = MetricsRegistry::new();
        m.record("nope", Duration::from_micros(10), false);
        m.record_unparsed();
        assert_eq!(m.snapshot().total_errors(), 2);
        assert_eq!(m.snapshot().total_requests(), 0);
    }

    #[test]
    fn report_renders_only_active_kinds() {
        let m = MetricsRegistry::new();
        m.record("convert", Duration::from_millis(3), true);
        let r = m.snapshot().render_report(Duration::from_secs(1));
        assert!(r.contains("convert"));
        assert!(!r.contains("shutdown   "));
        assert!(r.contains("latency buckets"));
    }

    #[test]
    fn exposition_lines_cover_serve_metrics() {
        let m = MetricsRegistry::new();
        m.record("paths", Duration::from_micros(100), true);
        m.record_cache_miss();
        m.record_path_computation(Duration::from_micros(300));
        let text = m.snapshot().exposition();
        assert!(text.contains("ft_serve_requests_total{verb=\"paths\"} 1"));
        assert!(text.contains("ft_serve_cache_misses_total 1"));
        assert!(text.contains("ft_serve_request_latency_us{verb=\"paths\",q=\"0.50\"} 64"));
        assert!(text.contains("ft_serve_request_latency_us_count{verb=\"paths\"} 1"));
        assert!(text.contains("ft_serve_path_fill_us{q=\"0.99\"} 256"));
        assert!(text.contains("ft_serve_path_fill_us_count 1"));
        // Sorted and newline-terminated → deterministic, parse-friendly.
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert!(text.ends_with('\n'));
        for line in &lines {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap_or("");
            assert!(value.parse::<u64>().is_ok(), "bad value in {line:?}");
        }
    }
}
