//! Request metrics: per-verb counters, latency histograms, cache and
//! engine counters.
//!
//! Everything is lock-free (`AtomicU64`) so recording never contends with
//! the worker pool. Latencies land in power-of-two microsecond buckets:
//! bucket `i` covers `[2^(i−1), 2^i)` µs (bucket 0 is `< 1 µs`), which is
//! plenty of resolution to tell a cache hit from a BFS re-run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of latency buckets: bucket 21 tops out at ~2 s; slower requests
/// saturate into the last bucket.
pub const BUCKETS: usize = 22;

/// The request kinds the registry tracks, in wire-verb order.
pub const KINDS: [&str; 7] = [
    "topo",
    "paths",
    "throughput",
    "plan",
    "convert",
    "stats",
    "shutdown",
];

fn kind_index(verb: &str) -> Option<usize> {
    KINDS.iter().position(|&k| k == verb)
}

#[derive(Default)]
struct KindStats {
    requests: AtomicU64,
    errors: AtomicU64,
    total_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// The service-wide metrics registry.
#[derive(Default)]
pub struct MetricsRegistry {
    kinds: [KindStats; KINDS.len()],
    /// Requests that failed before a verb was known (parse errors).
    unparsed_errors: AtomicU64,
    /// Requests rejected because the job queue was full.
    rejected_busy: AtomicU64,
    /// Requests rejected because the service was draining.
    rejected_shutdown: AtomicU64,
    /// Materialization-cache hits.
    cache_hits: AtomicU64,
    /// Materialization-cache misses (entry had to be built).
    cache_misses: AtomicU64,
    /// Networks materialized to fill the cache.
    materializations: AtomicU64,
    /// Batched-BFS path-length computations (cache-entry fills).
    path_computations: AtomicU64,
    /// Summed latency of those fills, in microseconds.
    path_fill_total_us: AtomicU64,
    /// Latency histogram of cache-entry fills (power-of-two µs buckets,
    /// same scale as the per-verb histograms). The fill runs the parallel
    /// BFS-APSP kernel, so this is the service's direct view of the
    /// hot-path kernel's latency.
    path_fill_buckets: [AtomicU64; BUCKETS],
    /// Conversions applied by `convert` requests.
    conversions: AtomicU64,
    /// Whole-cache invalidations triggered by conversions.
    invalidations: AtomicU64,
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn bucket_of(us: u64) -> usize {
    // 64 − leading_zeros(us) = position of the highest set bit + 1, which
    // is exactly the [2^(i−1), 2^i) bucket index; 0 µs lands in bucket 0.
    let idx = usize::try_from(64 - us.leading_zeros()).unwrap_or(BUCKETS - 1);
    idx.min(BUCKETS - 1)
}

impl MetricsRegistry {
    /// A fresh, all-zero registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records a completed request of `verb` with its latency; `ok` is
    /// false when the reply was an `ERR`.
    pub fn record(&self, verb: &str, latency: Duration, ok: bool) {
        let Some(i) = kind_index(verb) else {
            self.unparsed_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let us = duration_us(latency);
        let k = &self.kinds[i];
        k.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            k.errors.fetch_add(1, Ordering::Relaxed);
        }
        k.total_us.fetch_add(us, Ordering::Relaxed);
        k.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request that failed to parse (no verb attributable).
    pub fn record_unparsed(&self) {
        self.unparsed_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a queue-full rejection.
    pub fn record_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a rejected-because-draining request.
    pub fn record_shutdown_rejection(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a materialization-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a materialization-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one network materialization (cache fill).
    pub fn record_materialization(&self) {
        self.materializations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batched-BFS path-length computation (cache-entry fill)
    /// and the time the parallel APSP kernel took.
    pub fn record_path_computation(&self, latency: Duration) {
        let us = duration_us(latency);
        self.path_computations.fetch_add(1, Ordering::Relaxed);
        self.path_fill_total_us.fetch_add(us, Ordering::Relaxed);
        self.path_fill_buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an applied conversion and the cache invalidation it forced.
    pub fn record_conversion(&self) {
        self.conversions.fetch_add(1, Ordering::Relaxed);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> Snapshot {
        let kinds = self
            .kinds
            .iter()
            .enumerate()
            .map(|(i, k)| KindSnapshot {
                verb: KINDS[i],
                requests: k.requests.load(Ordering::Relaxed),
                errors: k.errors.load(Ordering::Relaxed),
                total_us: k.total_us.load(Ordering::Relaxed),
                buckets: std::array::from_fn(|b| k.buckets[b].load(Ordering::Relaxed)),
            })
            .collect();
        Snapshot {
            kinds,
            unparsed_errors: self.unparsed_errors.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            materializations: self.materializations.load(Ordering::Relaxed),
            path_computations: self.path_computations.load(Ordering::Relaxed),
            path_fill_total_us: self.path_fill_total_us.load(Ordering::Relaxed),
            path_fill_buckets: std::array::from_fn(|b| {
                self.path_fill_buckets[b].load(Ordering::Relaxed)
            }),
            conversions: self.conversions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Counters for one request kind at snapshot time.
#[derive(Clone, Debug)]
pub struct KindSnapshot {
    /// The wire verb.
    pub verb: &'static str,
    /// Requests completed (OK or ERR).
    pub requests: u64,
    /// Of those, ERR replies.
    pub errors: u64,
    /// Summed latency in microseconds.
    pub total_us: u64,
    /// Latency histogram (power-of-two µs buckets).
    pub buckets: [u64; BUCKETS],
}

impl KindSnapshot {
    /// Approximate p50 latency in µs: the lower bound of the bucket that
    /// crosses half the mass (0 when no requests were recorded).
    pub fn p50_us(&self) -> u64 {
        percentile_us(&self.buckets, self.requests, 0.5)
    }

    /// Approximate p99 latency in µs (same bucket-resolution caveat).
    pub fn p99_us(&self) -> u64 {
        percentile_us(&self.buckets, self.requests, 0.99)
    }
}

fn percentile_us(buckets: &[u64; BUCKETS], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let threshold = (total as f64 * q).ceil() as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= threshold {
            // bucket i covers [2^(i−1), 2^i) µs; report the lower bound
            return if i == 0 { 0 } else { 1u64 << (i - 1) };
        }
    }
    1u64 << (BUCKETS - 1)
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Per-kind stats, in [`KINDS`] order.
    pub kinds: Vec<KindSnapshot>,
    /// Requests that failed before a verb was known.
    pub unparsed_errors: u64,
    /// Queue-full rejections.
    pub rejected_busy: u64,
    /// Draining rejections.
    pub rejected_shutdown: u64,
    /// Materialization-cache hits.
    pub cache_hits: u64,
    /// Materialization-cache misses.
    pub cache_misses: u64,
    /// Networks materialized to fill the cache.
    pub materializations: u64,
    /// Batched-BFS path-length computations.
    pub path_computations: u64,
    /// Summed cache-fill latency in microseconds.
    pub path_fill_total_us: u64,
    /// Cache-fill latency histogram (power-of-two µs buckets).
    pub path_fill_buckets: [u64; BUCKETS],
    /// Conversions applied.
    pub conversions: u64,
    /// Cache invalidations.
    pub invalidations: u64,
}

impl Snapshot {
    /// Approximate p50 cache-fill latency in µs (bucket lower bound).
    pub fn path_fill_p50_us(&self) -> u64 {
        percentile_us(&self.path_fill_buckets, self.path_computations, 0.5)
    }

    /// Approximate p99 cache-fill latency in µs (bucket lower bound).
    pub fn path_fill_p99_us(&self) -> u64 {
        percentile_us(&self.path_fill_buckets, self.path_computations, 0.99)
    }

    /// Total completed requests across all kinds.
    pub fn total_requests(&self) -> u64 {
        self.kinds.iter().map(|k| k.requests).sum()
    }

    /// Total ERR replies across all kinds (parse failures included).
    pub fn total_errors(&self) -> u64 {
        self.kinds.iter().map(|k| k.errors).sum::<u64>() + self.unparsed_errors
    }

    /// The single-line `OK stats …` payload (everything `key=value`).
    pub fn stats_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "proto=FTQ/1 total={} errors={} busy={} draining_rejects={} \
             cache_hits={} cache_misses={} materializations={} path_computations={} \
             conversions={} invalidations={}",
            self.total_requests(),
            self.total_errors(),
            self.rejected_busy,
            self.rejected_shutdown,
            self.cache_hits,
            self.cache_misses,
            self.materializations,
            self.path_computations,
            self.conversions,
            self.invalidations,
        );
        let _ = write!(
            out,
            " path_fill_p50_us={} path_fill_p99_us={}",
            self.path_fill_p50_us(),
            self.path_fill_p99_us(),
        );
        for k in &self.kinds {
            let _ = write!(
                out,
                " {v}={} {v}_errors={} {v}_p50_us={} {v}_p99_us={}",
                k.requests,
                k.errors,
                k.p50_us(),
                k.p99_us(),
                v = k.verb
            );
        }
        out
    }

    /// The multi-line shutdown dump: counters plus per-kind histograms.
    pub fn render_report(&self, uptime: Duration) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ft-serve final report (uptime {:.3} s)",
            uptime.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "  requests: {} total, {} errors, {} busy-rejected, {} drain-rejected",
            self.total_requests(),
            self.total_errors(),
            self.rejected_busy,
            self.rejected_shutdown
        );
        let _ = writeln!(
            out,
            "  cache: {} hits, {} misses, {} materializations, {} path computations, {} invalidations",
            self.cache_hits, self.cache_misses, self.materializations, self.path_computations,
            self.invalidations
        );
        let _ = writeln!(out, "  conversions applied: {}", self.conversions);
        if let Some(mean) = self.path_fill_total_us.checked_div(self.path_computations) {
            let _ = writeln!(
                out,
                "  path fills: {} computed, mean {} µs, p50 {} µs, p99 {} µs",
                self.path_computations,
                mean,
                self.path_fill_p50_us(),
                self.path_fill_p99_us()
            );
        }
        for k in &self.kinds {
            if k.requests == 0 {
                continue;
            }
            let mean = k.total_us / k.requests.max(1);
            let _ = writeln!(
                out,
                "  {:<10} {:>6} req  {:>3} err  mean {:>8} µs  p50 {:>7} µs  p99 {:>7} µs",
                k.verb,
                k.requests,
                k.errors,
                mean,
                k.p50_us(),
                k.p99_us()
            );
            let mut hist = String::new();
            for (i, &c) in k.buckets.iter().enumerate() {
                if c > 0 {
                    // bucket i covers [2^(i−1), 2^i) µs
                    let lo: u64 = if i == 0 { 0 } else { 1u64 << (i - 1) };
                    let _ = write!(hist, " [{lo}µs:{c}]");
                }
            }
            if !hist.is_empty() {
                let _ = writeln!(out, "    latency buckets:{hist}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_and_snapshot() {
        let m = MetricsRegistry::new();
        m.record("paths", Duration::from_micros(100), true);
        m.record("paths", Duration::from_micros(200), false);
        m.record("stats", Duration::from_micros(1), true);
        m.record_cache_hit();
        m.record_cache_miss();
        m.record_materialization();
        m.record_conversion();
        let s = m.snapshot();
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.total_errors(), 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.conversions, 1);
        assert_eq!(s.invalidations, 1);
        let paths = &s.kinds[1];
        assert_eq!(paths.verb, "paths");
        assert_eq!(paths.requests, 2);
        assert_eq!(paths.errors, 1);
        assert!(paths.p50_us() >= 64 && paths.p50_us() <= 128);
    }

    #[test]
    fn path_fill_latency_histogram() {
        let m = MetricsRegistry::new();
        m.record_path_computation(Duration::from_micros(100));
        m.record_path_computation(Duration::from_micros(100));
        m.record_path_computation(Duration::from_micros(5000));
        let s = m.snapshot();
        assert_eq!(s.path_computations, 3);
        assert_eq!(s.path_fill_total_us, 5200);
        assert_eq!(s.path_fill_buckets.iter().sum::<u64>(), 3);
        assert!(s.path_fill_p50_us() >= 64 && s.path_fill_p50_us() <= 128);
        assert!(s.path_fill_p99_us() >= 4096);
        let line = s.stats_line();
        assert!(line.contains("path_computations=3"));
        assert!(line.contains("path_fill_p50_us="));
        let report = s.render_report(Duration::from_secs(1));
        assert!(report.contains("path fills: 3 computed"));
    }

    #[test]
    fn stats_line_is_single_line_and_parseable() {
        let m = MetricsRegistry::new();
        m.record("topo", Duration::from_micros(10), true);
        let line = m.snapshot().stats_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("cache_hits=0"));
        assert!(line.contains("topo=1"));
        for tok in line.split_whitespace() {
            assert!(tok.contains('='), "token {tok:?} not key=value");
        }
    }

    #[test]
    fn unknown_verb_counts_as_unparsed() {
        let m = MetricsRegistry::new();
        m.record("nope", Duration::from_micros(10), false);
        m.record_unparsed();
        assert_eq!(m.snapshot().total_errors(), 2);
        assert_eq!(m.snapshot().total_requests(), 0);
    }

    #[test]
    fn report_renders_only_active_kinds() {
        let m = MetricsRegistry::new();
        m.record("convert", Duration::from_millis(3), true);
        let r = m.snapshot().render_report(Duration::from_secs(1));
        assert!(r.contains("convert"));
        assert!(!r.contains("shutdown   "));
        assert!(r.contains("latency buckets"));
    }
}
