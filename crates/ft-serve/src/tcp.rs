//! The localhost TCP transport for FTQ/1.
//!
//! [`serve_listener`] wraps [`Service::run`]: it accepts connections on a
//! caller-provided listener (bind to `127.0.0.1:0` to let the OS pick a
//! port) and funnels every received line through [`Handle::request`], so
//! TCP clients share the same admission control, cache and metrics as the
//! in-process transport. Framing is line-delimited: one request per
//! `\n`-terminated line, one reply line back. Partial lines are buffered
//! per connection; a line longer than [`MAX_LINE_BYTES`] closes the
//! connection after an `ERR bad-request` reply.
//!
//! The accept loop polls non-blockingly so it can observe the drain flag:
//! once a `shutdown` request flips it, no further connections are accepted,
//! open connections are closed after their buffered lines resolve, and the
//! final metrics report is returned to the caller.

use crate::error::ServeError;
use crate::service::{Handle, ServeConfig, Service};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Upper bound on a buffered request line; protects the per-connection
/// buffer from a peer that never sends a newline.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

const ACCEPT_POLL: Duration = Duration::from_millis(20);
const READ_POLL: Duration = Duration::from_millis(50);

/// Runs the query service on `listener` until a `shutdown` request drains
/// it, returning the final metrics report.
///
/// # Errors
/// [`ServeError::Io`] if the listener cannot be made non-blocking, plus
/// everything [`Service::run`] can return.
pub fn serve_listener(listener: TcpListener, cfg: ServeConfig) -> Result<String, ServeError> {
    listener.set_nonblocking(true)?;
    let ((), report) = Service::run(cfg, |handle| accept_loop(&listener, handle))?;
    Ok(report)
}

fn accept_loop(listener: &TcpListener, handle: &Handle<'_>) {
    // The inner scope joins per-connection workers before `Service::run`
    // begins its own drain, so no connection outlives the pool.
    let _ = crossbeam::scope(|s| {
        while !handle.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    s.spawn(move |_| {
                        // Socket errors end the connection, never the service.
                        let _ = serve_conn(handle, stream);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(_) => break,
            }
        }
    });
}

fn serve_conn(handle: &Handle<'_>, mut stream: TcpStream) -> Result<(), ServeError> {
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0_u8; 1024];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            // pos came from position() over buf, so ..=pos is in bounds.
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line_bytes);
            let line = text.trim();
            if line.is_empty() {
                continue;
            }
            let reply = handle.request(line);
            stream.write_all(reply.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        if handle.is_shutting_down() {
            return Ok(());
        }
        if buf.len() > MAX_LINE_BYTES {
            let e = ServeError::BadRequest(format!("request line exceeds {MAX_LINE_BYTES} bytes"));
            stream.write_all(e.err_line().as_bytes())?;
            stream.write_all(b"\n")?;
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            // n is the read(2) return, so n ≤ chunk.len() by contract.
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn send_line(stream: &mut TcpStream, line: &str) {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }

    #[test]
    fn loopback_round_trip_and_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_listener(listener, ServeConfig::for_k(4)));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();

        send_line(&mut stream, "ftq/1 topo");
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK topo "), "{line}");

        line.clear();
        send_line(&mut stream, "paths mode=global-rg");
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK paths "), "{line}");

        line.clear();
        send_line(&mut stream, "bogus verb");
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR "), "{line}");

        line.clear();
        send_line(&mut stream, "shutdown deadline_ms=5000");
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK shutdown drained=true"), "{line}");

        let report = server.join().unwrap().unwrap();
        assert!(report.contains("ft-serve final report"), "{report}");
    }

    #[test]
    fn oversized_line_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_listener(
                listener,
                ServeConfig {
                    workers: 2,
                    ..ServeConfig::for_k(4)
                },
            )
        });

        let mut noisy = TcpStream::connect(addr).unwrap();
        noisy
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let garbage = vec![b'x'; MAX_LINE_BYTES + 2];
        noisy.write_all(&garbage).unwrap();
        let mut reader = BufReader::new(noisy.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR bad-request "), "{line}");

        // The service survives the abuse and still answers a good client.
        let mut good = TcpStream::connect(addr).unwrap();
        good.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(good.try_clone().unwrap());
        send_line(&mut good, "stats");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK stats "), "{line}");

        send_line(&mut good, "shutdown");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK shutdown "), "{line}");
        server.join().unwrap().unwrap();
    }
}
