//! Service errors and their wire representation.
//!
//! Every failure a request can hit maps to a one-line `ERR <code> <msg>`
//! reply — workers never die on bad input. The codes are part of the FTQ/1
//! protocol surface (see DESIGN.md §9) and stable across releases.

use std::fmt;

/// Everything that can go wrong inside the query service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request line does not follow the FTQ/1 grammar.
    BadRequest(String),
    /// The request names a verb the protocol does not define.
    UnknownVerb(String),
    /// The request declared a protocol version other than `ftq/1`.
    UnsupportedVersion(String),
    /// A mode/zone specification failed to parse or fit the network.
    BadMode(String),
    /// The bounded job queue is full (admission control, not an outage).
    Busy {
        /// The configured queue depth that was exceeded.
        depth: usize,
    },
    /// The service is draining; new work is no longer admitted.
    ShuttingDown,
    /// A drain or reply wait exceeded its deadline.
    Timeout {
        /// How long the caller waited before giving up.
        waited_ms: u64,
    },
    /// The topology/solver engine rejected the operation.
    Engine(String),
    /// Socket-level failure (TCP transport only).
    Io(String),
    /// An internal invariant broke (worker death, poisoned scope).
    Internal(String),
}

impl ServeError {
    /// The stable protocol error code for `ERR <code> <msg>` replies.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad-request",
            ServeError::UnknownVerb(_) => "unknown-verb",
            ServeError::UnsupportedVersion(_) => "unsupported-version",
            ServeError::BadMode(_) => "bad-mode",
            ServeError::Busy { .. } => "busy",
            ServeError::ShuttingDown => "shutdown",
            ServeError::Timeout { .. } => "timeout",
            ServeError::Engine(_) => "engine",
            ServeError::Io(_) => "io",
            ServeError::Internal(_) => "internal",
        }
    }

    /// Renders the single-line `ERR` reply (newlines in the message are
    /// flattened so the line-delimited framing survives).
    pub fn err_line(&self) -> String {
        let msg = self.to_string().replace(['\n', '\r'], " ");
        format!("ERR {} {}", self.code(), msg)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "{m}"),
            ServeError::UnknownVerb(v) => write!(
                f,
                "unknown verb {v:?} (use topo | paths | throughput | plan | convert | stats | metrics | shutdown)"
            ),
            ServeError::UnsupportedVersion(v) => {
                write!(f, "protocol version {v:?} not supported (speak ftq/1)")
            }
            ServeError::BadMode(m) => write!(f, "{m}"),
            ServeError::Busy { depth } => {
                write!(f, "job queue full ({depth} requests queued); retry later")
            }
            ServeError::ShuttingDown => write!(f, "service is draining; no new requests"),
            ServeError::Timeout { waited_ms } => {
                write!(f, "deadline exceeded after {waited_ms} ms")
            }
            ServeError::Engine(m) => write!(f, "{m}"),
            ServeError::Io(m) => write!(f, "{m}"),
            ServeError::Internal(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ft_core::FlatTreeError> for ServeError {
    fn from(e: ft_core::FlatTreeError) -> Self {
        ServeError::Engine(e.to_string())
    }
}

impl From<ft_control::controller::ControlError> for ServeError {
    fn from(e: ft_control::controller::ControlError) -> Self {
        ServeError::Engine(e.to_string())
    }
}

impl From<ft_mcf::McfError> for ServeError {
    fn from(e: ft_mcf::McfError) -> Self {
        ServeError::Engine(e.to_string())
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn err_lines_are_single_line_and_coded() {
        let e = ServeError::BadRequest("no\nnewlines".into());
        let line = e.err_line();
        assert!(line.starts_with("ERR bad-request "));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(ServeError::ShuttingDown.code(), "shutdown");
        assert_eq!(ServeError::Busy { depth: 4 }.code(), "busy");
        assert_eq!(ServeError::Timeout { waited_ms: 7 }.code(), "timeout");
        assert_eq!(ServeError::UnknownVerb("x".into()).code(), "unknown-verb");
    }

    #[test]
    fn engine_errors_convert() {
        let e: ServeError = ft_mcf::McfError::InvalidEpsilon { epsilon: -1.0 }.into();
        assert_eq!(e.code(), "engine");
    }
}
