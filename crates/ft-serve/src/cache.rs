//! The materialization cache: LRU over `(k, zone-layout)` keys.
//!
//! Materializing a flat-tree mode and running the batched-BFS path-length
//! pass are the two expensive steps behind `topo`/`paths`/`throughput`
//! requests. The service keeps a small LRU of [`Materialized`] entries —
//! the logical `Network` plus a lazily-filled path-length answer — guarded
//! by a `parking_lot` mutex. A `convert` request clears the whole cache:
//! after a conversion the physical converter states changed, so every
//! cached hypothetical layout is stale relative to the hardware baseline
//! (see DESIGN.md §9 for the invalidation rationale).

use ft_metrics::SwitchDistances;
use ft_topo::Network;
use parking_lot::Mutex;
use std::sync::Arc;

/// Cache key: the fat-tree parameter plus the canonical per-Pod layout
/// letters (see [`crate::proto::layout_letters`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The fat-tree parameter the service was booted with.
    pub k: usize,
    /// Canonical per-Pod layout string (`c`/`l`/`g` per Pod).
    pub layout: String,
}

/// The batched-BFS path-length answers for one materialized layout.
#[derive(Clone, Copy, Debug)]
pub struct PathsAnswer {
    /// Average server-pair path length, network-wide.
    pub apl: f64,
    /// Average server-pair path length restricted to intra-Pod pairs.
    pub intra: f64,
}

/// A cached materialization: the network plus lazily computed results.
pub struct Materialized {
    /// The materialized logical topology.
    pub network: Network,
    /// Path-length answers, filled by the first `paths` request that needs
    /// them (guarded separately so fills don't hold the cache lock).
    pub paths: Mutex<Option<PathsAnswer>>,
    /// The shared switch-distance table behind the path-length answers
    /// (one multi-source BFS fill per materialization; both the APL and
    /// intra-Pod metrics read it through the `*_with` variants).
    dist: Mutex<Option<Arc<SwitchDistances>>>,
}

impl Materialized {
    /// Wraps a freshly materialized network with empty lazy slots.
    pub fn new(network: Network) -> Self {
        Materialized {
            network,
            paths: Mutex::new(None),
            dist: Mutex::new(None),
        }
    }

    /// The switch-distance table for this network, computing it on first
    /// use and sharing the `Arc` afterwards.
    pub fn switch_distances(&self) -> Arc<SwitchDistances> {
        let mut slot = self.dist.lock();
        match &*slot {
            Some(d) => Arc::clone(d),
            None => {
                let d = Arc::new(SwitchDistances::compute(&self.network));
                *slot = Some(Arc::clone(&d));
                d
            }
        }
    }
}

/// A small least-recently-used map from [`CacheKey`] to [`Materialized`].
///
/// Linear scan over a `Vec` — capacities are single-digit-to-tens (one
/// entry per distinct zone layout queried), so a hash map + intrusive list
/// would be complexity without measurable benefit.
pub struct LruCache {
    cap: usize,
    tick: u64,
    entries: Vec<(CacheKey, Arc<Materialized>, u64)>,
}

impl LruCache {
    /// An empty cache holding at most `cap` entries (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap: cap.max(1),
            tick: 0,
            entries: Vec::new(),
        }
    }

    /// Looks up a key, refreshing its recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Materialized>> {
        self.tick += 1;
        let tick = self.tick;
        for (k, v, used) in &mut self.entries {
            if k == key {
                *used = tick;
                return Some(Arc::clone(v));
            }
        }
        None
    }

    /// Inserts (or replaces) an entry, evicting the least recently used
    /// entry when at capacity.
    pub fn insert(&mut self, key: CacheKey, value: Arc<Materialized>) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, v, used)) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            *v = value;
            *used = tick;
            return;
        }
        if self.entries.len() >= self.cap {
            if let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(lru);
            }
        }
        self.entries.push((key, value, tick));
    }

    /// Drops every entry (conversion invalidation).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_topo::fat_tree;

    fn key(layout: &str) -> CacheKey {
        CacheKey {
            k: 4,
            layout: layout.to_string(),
        }
    }

    fn entry() -> Arc<Materialized> {
        Arc::new(Materialized::new(fat_tree(4).unwrap()))
    }

    #[test]
    fn get_after_insert() {
        let mut c = LruCache::new(2);
        assert!(c.get(&key("cccc")).is_none());
        c.insert(key("cccc"), entry());
        assert!(c.get(&key("cccc")).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(key("cccc"), entry());
        c.insert(key("gggg"), entry());
        // touch cccc so gggg is the LRU victim
        assert!(c.get(&key("cccc")).is_some());
        c.insert(key("llll"), entry());
        assert_eq!(c.len(), 2);
        assert!(c.get(&key("cccc")).is_some());
        assert!(c.get(&key("gggg")).is_none());
        assert!(c.get(&key("llll")).is_some());
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = LruCache::new(2);
        c.insert(key("cccc"), entry());
        c.insert(key("cccc"), entry());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(2);
        c.insert(key("cccc"), entry());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_promoted() {
        let mut c = LruCache::new(0);
        c.insert(key("cccc"), entry());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lazy_paths_slot() {
        let e = entry();
        assert!(e.paths.lock().is_none());
        *e.paths.lock() = Some(PathsAnswer {
            apl: 2.0,
            intra: 2.0,
        });
        assert!(e.paths.lock().is_some());
    }
}
