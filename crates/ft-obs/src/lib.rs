//! Zero-dependency, lock-light observability for the flat-tree workspace.
//!
//! Three layers (see DESIGN.md §12):
//!
//! 1. **Metric primitives** ([`Counter`], [`Gauge`], [`Histogram`]) — plain
//!    relaxed atomics, safe to hammer from any number of threads with no
//!    lost updates and no locks on the record path.
//! 2. **A global named registry** ([`registry`]) — `&'static` handles keyed
//!    by `(name, labels)`, rendered on demand into Prometheus-style text
//!    exposition lines (`name{label="v"} value`).
//! 3. **Structured spans** ([`Span`], [`span!`]) — start/stop timestamps,
//!    parent links and thread ids, buffered in a bounded per-thread ring and
//!    drained as JSONL to a process-wide sink (a trace file or an in-memory
//!    vector for tests).
//!
//! Two read-side layers complete the pipeline (DESIGN.md §17):
//! sliding-window variants of the primitives ([`window`]) whose readings
//! cover the last [`WINDOW_EPOCHS`] epochs instead of the process
//! lifetime, and trace analytics ([`analyze`]) that parse span JSONL back
//! into a forest for aggregates, critical paths, diffs and flamegraph /
//! Chrome exports (`ftctl trace`).
//!
//! # Overhead contract
//!
//! Tracing is **off by default**. The [`span!`] macro's only cost while
//! disabled is a single relaxed atomic load ([`enabled`]); it produces no
//! span, takes no lock and formats nothing. Counters are recorded at batch
//! points (once per solver run, once per parallel map) rather than inside
//! numeric inner loops, so the hot paths benchmarked by
//! `ftctl bench --check` are unchanged whether or not a sink is installed.
//! No instrumented code path changes any floating-point computation: λ and
//! APSP outputs stay bit-identical with tracing on or off.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod window;

pub use metrics::{
    bucket_lower_bound_us, bucket_of_us, quantile_lower_bound, Counter, Gauge, Histogram,
    HistogramSnapshot, BUCKETS,
};
pub use span::{flush, install_file_sink, install_memory_sink, take_sink, Span};
pub use window::{
    WindowClock, WindowedCounter, WindowedHistogram, MIN_WINDOW_SAMPLES, WINDOW_EPOCHS,
};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide instrumentation switch. Spans are only recorded while this
/// is `true`; metric primitives record regardless (they are cheap and the
/// exposition surface must work without tracing).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is span capture enabled? One relaxed atomic load — this is the entire
/// cost of a disabled [`span!`] site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span capture on or off. Usually paired with
/// [`install_file_sink`] / [`install_memory_sink`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Open a span if tracing is enabled, with optional `key = value` fields.
///
/// Evaluates to `Option<Span>`; the span closes (records its end timestamp
/// and queues a JSONL event) when the guard drops. While tracing is
/// disabled this is one relaxed atomic load and the field expressions are
/// **not** evaluated.
///
/// ```
/// let _g = ft_obs::span!("fptas.phase", k = 32usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        if $crate::enabled() {
            #[allow(unused_mut)]
            let mut s = $crate::Span::begin($name);
            $( s.field(stringify!($key), $val); )*
            Some(s)
        } else {
            None
        }
    }};
}
