//! Lock-free metric primitives: counters, gauges and power-of-two latency
//! histograms, plus the shared quantile helper used by both the ft-serve
//! stats line and the text exposition format.
//!
//! All mutation is `Ordering::Relaxed` `fetch_add`/`store` on `AtomicU64`:
//! no locks, no lost updates (see `tests/concurrency.rs`), and no ordering
//! guarantees beyond each individual cell — snapshots are advisory, which
//! is the right trade for telemetry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of latency buckets: bucket `i` covers `[2^(i−1), 2^i)` µs
/// (bucket 0 is `< 1 µs`), bucket 21 tops out at ~2 s and slower samples
/// saturate into it. Matches the scale ft-serve has used since PR 2 so
/// dashboards keep their resolution.
pub const BUCKETS: usize = 22;

/// The power-of-two µs bucket a latency sample lands in.
pub fn bucket_of_us(us: u64) -> usize {
    // 64 − leading_zeros(us) = position of the highest set bit + 1, which
    // is exactly the [2^(i−1), 2^i) bucket index; 0 µs lands in bucket 0.
    let idx = usize::try_from(64 - us.leading_zeros()).unwrap_or(BUCKETS - 1);
    idx.min(BUCKETS - 1)
}

/// The inclusive lower bound of bucket `i`, in µs (0 for bucket 0).
pub fn bucket_lower_bound_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1).min(63)
    }
}

/// The lower bound of the histogram bucket that crosses quantile `q`
/// (`0.0 < q <= 1.0`) of `count` samples — 0 when `count` is 0. This is
/// the single quantile implementation shared by the ft-serve stats line
/// and the exposition renderer: quantiles are bucket-resolution
/// approximations, reported as the lower edge of the crossing bucket.
pub fn quantile_lower_bound(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let threshold = ((count as f64 * q).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen = seen.saturating_add(c);
        if seen >= threshold {
            return bucket_lower_bound_us(i);
        }
    }
    bucket_lower_bound_us(BUCKETS - 1)
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter (const, so it can live in statics).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero. Only the sliding-window ring recycles epoch slots
    /// this way (see [`crate::window`]); cumulative counters never clear.
    pub(crate) fn clear(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value (worker counts, queue depths).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zero gauge (const, so it can live in statics).
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A power-of-two µs latency histogram with sample count and µs sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh all-zero histogram (const, so it can live in statics).
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one sample of `us` microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of_us(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Record one sample from a [`Duration`] (saturating at `u64::MAX` µs).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_us(duration_us(d));
    }

    /// Reset every bucket, the count and the sum to zero. Only the
    /// sliding-window ring recycles epoch slots this way (see
    /// [`crate::window`]); cumulative histograms never clear.
    pub(crate) fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket array, count and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`] at snapshot time.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (power-of-two µs buckets).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Summed sample value in microseconds.
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Quantile `q` as a bucket lower bound in µs (see
    /// [`quantile_lower_bound`]).
    pub fn quantile_us(&self, q: f64) -> u64 {
        quantile_lower_bound(&self.buckets, self.count, q)
    }

    /// Approximate median in µs.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.5)
    }

    /// Approximate 95th percentile in µs.
    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    /// Approximate 99th percentile in µs.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Mean sample in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Accumulate another snapshot into this one, bucket-wise and
    /// saturating — how the sliding window merges its epoch slots.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of_us(0), 0);
        assert_eq!(bucket_of_us(1), 1);
        assert_eq!(bucket_of_us(2), 2);
        assert_eq!(bucket_of_us(3), 2);
        assert_eq!(bucket_of_us(1024), 11);
        assert_eq!(bucket_of_us(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_match_bucket_of() {
        for i in 1..BUCKETS {
            let lo = bucket_lower_bound_us(i);
            assert_eq!(bucket_of_us(lo), i, "lower bound of bucket {i}");
        }
        assert_eq!(bucket_lower_bound_us(0), 0);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = Histogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(5000));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_us, 5200);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert!(s.p50_us() >= 64 && s.p50_us() <= 128);
        assert!(s.p95_us() >= 4096);
        assert!(s.p99_us() >= 4096);
        assert_eq!(s.mean_us(), 5200 / 3);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.p50_us(), 0);
        assert_eq!(s.p95_us(), 0);
        assert_eq!(s.p99_us(), 0);
        assert_eq!(s.mean_us(), 0);
    }

    #[test]
    fn quantile_walks_the_mass() {
        // 9 fast samples, 1 slow: p50 in the fast bucket, p99 in the slow.
        let mut buckets = [0u64; BUCKETS];
        buckets[4] = 9; // [8, 16) µs
        buckets[12] = 1; // [2048, 4096) µs
        assert_eq!(quantile_lower_bound(&buckets, 10, 0.5), 8);
        assert_eq!(quantile_lower_bound(&buckets, 10, 0.99), 2048);
        assert_eq!(quantile_lower_bound(&buckets, 10, 1.0), 2048);
    }
}
