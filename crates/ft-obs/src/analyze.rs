//! Trace analytics: the read side of the span pipeline.
//!
//! [`Trace::parse`] turns span JSONL (the format written by
//! [`crate::span`]) back into span events; [`Forest::build`] restores the
//! parent links into a span forest with per-span self time. On top of
//! that sit the analyses `ftctl trace` exposes:
//!
//! * per-span-name aggregates — count, total/self time, exact p50/p95
//!   ([`Forest::aggregates`]);
//! * critical paths — from each root kind, repeatedly descend into the
//!   longest child ([`Forest::critical_path`], [`Forest::top_roots`]);
//! * trace diffing for regression attribution ([`diff`]);
//! * viewer exports — Chrome trace-event JSON ([`to_chrome`]) and folded
//!   flamegraph stacks weighted by self time ([`to_folded`]);
//! * the DES conversion disruption timeline ([`conversion_timeline`]).
//!
//! The parser is a minimal hand-rolled JSON scanner (zero-dependency
//! policy): it understands exactly the object-per-line shape our own
//! writer emits, skips anything else (counted in [`Trace::skipped`] —
//! sim event lines share the file with spans by design), and keeps each
//! span's `fields` object as raw text so exports can pass it through
//! without re-modelling every field type.

use crate::span::json_escape_into;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed span event from a JSONL trace.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name (`fptas.phase`, `serve.request`, …).
    pub name: String,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread (0 = root).
    pub parent: u64,
    /// Small sequential thread id.
    pub thread: u64,
    /// Start timestamp, µs since the process trace epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// The span's `fields` value as raw JSON object text (`{…}`).
    pub fields_json: String,
}

impl SpanEvent {
    /// An unsigned integer field, if present and numeric.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        field_raw(&self.fields_json, key)?.parse::<u64>().ok()
    }

    /// A float field, if present (quoted `"NaN"`/`"inf"`/`"-inf"` — the
    /// writer's non-finite encoding — parse back to their float values).
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        let raw = field_raw(&self.fields_json, key)?;
        match strip_quotes(raw) {
            Some("NaN") => Some(f64::NAN),
            Some("inf") => Some(f64::INFINITY),
            Some("-inf") => Some(f64::NEG_INFINITY),
            Some(_) | None => raw.parse::<f64>().ok(),
        }
    }

    /// A string field, if present, with JSON escapes undone.
    pub fn field_str(&self, key: &str) -> Option<String> {
        strip_quotes(field_raw(&self.fields_json, key)?).map(unescape)
    }
}

/// A parsed trace: the span events plus a count of non-span lines.
#[derive(Debug, Default)]
pub struct Trace {
    /// Every span event, in file order.
    pub spans: Vec<SpanEvent>,
    /// Non-empty lines that were not span events (sim event records,
    /// truncated tails); skipped, never an error.
    pub skipped: usize,
}

impl Trace {
    /// Parse span JSONL text. Never fails: lines that are not span
    /// events are counted in [`Trace::skipped`] and dropped.
    pub fn parse(text: &str) -> Trace {
        let mut spans = Vec::new();
        let mut skipped = 0usize;
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            match parse_span_line(t) {
                Some(s) => spans.push(s),
                None => skipped += 1,
            }
        }
        Trace { spans, skipped }
    }

    /// Number of distinct thread ids that emitted spans.
    pub fn thread_count(&self) -> usize {
        let mut threads: Vec<u64> = self.spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        threads.len()
    }
}

/// The span forest of a trace: children resolved from parent ids, plus
/// per-span self time (duration minus the sum of child durations).
#[derive(Debug)]
pub struct Forest<'a> {
    /// The parsed trace this forest indexes into.
    pub trace: &'a Trace,
    /// Children of each span, as indices into `trace.spans`, ordered by
    /// (start, id).
    pub children: Vec<Vec<usize>>,
    /// Root spans — parent id 0 or a parent that never reached the sink
    /// (dropped line), ordered by (start, id).
    pub roots: Vec<usize>,
    /// Self time of each span in µs, saturating at 0 when clock skew
    /// makes children overrun their parent.
    pub self_us: Vec<u64>,
}

impl<'a> Forest<'a> {
    /// Resolve parent links and self times for `trace`.
    pub fn build(trace: &'a Trace) -> Forest<'a> {
        let n = trace.spans.len();
        let mut index: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, s) in trace.spans.iter().enumerate() {
            index.insert(s.id, i);
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in trace.spans.iter().enumerate() {
            let parent = (s.parent != 0).then(|| index.get(&s.parent)).flatten();
            match parent {
                Some(&p) if p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        for c in &mut children {
            c.sort_by_key(|&i| (trace.spans[i].start_us, trace.spans[i].id));
        }
        roots.sort_by_key(|&i| (trace.spans[i].start_us, trace.spans[i].id));
        let mut self_us = vec![0u64; n];
        for i in 0..n {
            let child_sum: u64 = children[i]
                .iter()
                .map(|&c| trace.spans[c].dur_us)
                .fold(0, u64::saturating_add);
            self_us[i] = trace.spans[i].dur_us.saturating_sub(child_sum);
        }
        Forest {
            trace,
            children,
            roots,
            self_us,
        }
    }

    /// Per-span-name aggregates, ordered by total time (descending, then
    /// name). Quantiles are exact nearest-rank over the collected
    /// durations, not bucket approximations.
    pub fn aggregates(&self) -> Vec<NameAgg> {
        let mut durs: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        let mut selfs: BTreeMap<&str, u64> = BTreeMap::new();
        for (i, s) in self.trace.spans.iter().enumerate() {
            durs.entry(s.name.as_str()).or_default().push(s.dur_us);
            let cell = selfs.entry(s.name.as_str()).or_default();
            *cell = cell.saturating_add(self.self_us[i]);
        }
        let mut out: Vec<NameAgg> = Vec::with_capacity(durs.len());
        for (name, mut d) in durs {
            d.sort_unstable();
            out.push(NameAgg {
                name: name.to_string(),
                count: d.len() as u64,
                total_us: d.iter().copied().fold(0, u64::saturating_add),
                self_us: selfs.get(name).copied().unwrap_or(0),
                p50_us: exact_quantile(&d, 0.5),
                p95_us: exact_quantile(&d, 0.95),
                max_us: d.last().copied().unwrap_or(0),
            });
        }
        out.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then_with(|| a.name.cmp(&b.name))
        });
        out
    }

    /// The critical path from root span index `root`: starting at the
    /// root, repeatedly descend into the child with the largest duration
    /// (ties: earliest start), until a leaf. This is the chain of spans
    /// that bounded the run's wall time — the place a regression lives.
    pub fn critical_path(&self, root: usize) -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut cur = root;
        while cur < self.trace.spans.len() {
            let s = &self.trace.spans[cur];
            path.push(PathStep {
                index: cur,
                name: s.name.clone(),
                dur_us: s.dur_us,
                self_us: self.self_us[cur],
            });
            let next = self.children[cur].iter().copied().max_by_key(|&c| {
                let cs = &self.trace.spans[c];
                (cs.dur_us, std::cmp::Reverse((cs.start_us, cs.id)))
            });
            match next {
                Some(c) => cur = c,
                None => break,
            }
        }
        path
    }

    /// The longest instance of every distinct root-span name, longest
    /// first. Multi-root traces (a bench run emits `fptas.run`,
    /// `des.run`, `par.map`, … side by side) get one critical path per
    /// root kind instead of only the globally longest.
    pub fn top_roots(&self) -> Vec<usize> {
        let mut best: BTreeMap<&str, usize> = BTreeMap::new();
        for &r in &self.roots {
            let s = &self.trace.spans[r];
            match best.get(s.name.as_str()) {
                Some(&b) if self.trace.spans[b].dur_us >= s.dur_us => {}
                _ => {
                    best.insert(s.name.as_str(), r);
                }
            }
        }
        let mut out: Vec<usize> = best.into_values().collect();
        out.sort_by_key(|&r| {
            let s = &self.trace.spans[r];
            (std::cmp::Reverse(s.dur_us), s.start_us, s.id)
        });
        out
    }
}

/// Aggregate statistics for one span name.
#[derive(Clone, Debug)]
pub struct NameAgg {
    /// Span name.
    pub name: String,
    /// Number of instances.
    pub count: u64,
    /// Summed duration, µs.
    pub total_us: u64,
    /// Summed self time (duration minus children), µs.
    pub self_us: u64,
    /// Exact median duration, µs.
    pub p50_us: u64,
    /// Exact 95th-percentile duration, µs.
    pub p95_us: u64,
    /// Longest instance, µs.
    pub max_us: u64,
}

/// One hop of a critical path.
#[derive(Clone, Debug)]
pub struct PathStep {
    /// Index into `trace.spans`.
    pub index: usize,
    /// Span name.
    pub name: String,
    /// Duration, µs.
    pub dur_us: u64,
    /// Self time, µs.
    pub self_us: u64,
}

/// One row of a trace diff: per-name totals in the old and new trace.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Span name.
    pub name: String,
    /// Instances in the old trace.
    pub old_count: u64,
    /// Instances in the new trace.
    pub new_count: u64,
    /// Total µs in the old trace.
    pub old_total_us: u64,
    /// Total µs in the new trace.
    pub new_total_us: u64,
    /// `new_total − old_total` in µs; negative means it got faster.
    pub delta_us: i64,
}

/// Diff two traces by span name, largest absolute time delta first —
/// the span-by-span explanation behind a `bench --check` regression.
pub fn diff(old: &Trace, new: &Trace) -> Vec<DiffRow> {
    let o = name_totals(old);
    let n = name_totals(new);
    let mut names: Vec<&str> = o.keys().chain(n.keys()).copied().collect();
    names.sort_unstable();
    names.dedup();
    let mut rows: Vec<DiffRow> = Vec::with_capacity(names.len());
    for name in names {
        let (oc, ot) = o.get(name).copied().unwrap_or((0, 0));
        let (nc, nt) = n.get(name).copied().unwrap_or((0, 0));
        let d = i128::from(nt) - i128::from(ot);
        let delta_us = i64::try_from(d).unwrap_or(if d < 0 { i64::MIN } else { i64::MAX });
        rows.push(DiffRow {
            name: name.to_string(),
            old_count: oc,
            new_count: nc,
            old_total_us: ot,
            new_total_us: nt,
            delta_us,
        });
    }
    rows.sort_by(|a, b| {
        b.delta_us
            .unsigned_abs()
            .cmp(&a.delta_us.unsigned_abs())
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

/// Per-name `(count, total µs)` over a trace.
fn name_totals(t: &Trace) -> BTreeMap<&str, (u64, u64)> {
    let mut out: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for s in &t.spans {
        let cell = out.entry(s.name.as_str()).or_default();
        cell.0 = cell.0.saturating_add(1);
        cell.1 = cell.1.saturating_add(s.dur_us);
    }
    out
}

/// Render the trace as Chrome trace-event JSON (loadable in
/// `chrome://tracing` or Perfetto): one complete (`"ph":"X"`) event per
/// span, µs timestamps, thread ids mapped to `tid`, and the span's
/// fields passed through as `args`.
pub fn to_chrome(trace: &Trace) -> String {
    let mut events: Vec<&SpanEvent> = trace.spans.iter().collect();
    events.sort_by_key(|s| (s.start_us, s.id));
    let mut out = String::with_capacity(events.len() * 128 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        json_escape_into(&mut out, &s.name);
        let args = if s.fields_json.starts_with('{') {
            s.fields_json.as_str()
        } else {
            "{}"
        };
        let _ = write!(
            out,
            "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
            s.start_us, s.dur_us, s.thread, args
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Render the trace as folded stacks — `root;child;leaf weight` lines,
/// the input format of flamegraph.pl and inferno. The weight is each
/// span's **self** time in µs so frame widths sum correctly; zero-weight
/// stacks (sub-µs spans fully covered by children) are omitted.
pub fn to_folded(trace: &Trace) -> String {
    let f = Forest::build(trace);
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for &r in &f.roots {
        let mut dfs: Vec<(usize, String)> = vec![(r, trace.spans[r].name.clone())];
        while let Some((i, stack)) = dfs.pop() {
            let w = f.self_us[i];
            if w > 0 {
                let cell = stacks.entry(stack.clone()).or_default();
                *cell = cell.saturating_add(w);
            }
            for &c in &f.children[i] {
                dfs.push((c, format!("{stack};{}", trace.spans[c].name)));
            }
        }
    }
    let mut out = String::new();
    for (stack, w) in stacks {
        let _ = writeln!(out, "{stack} {w}");
    }
    out
}

/// One point of the DES conversion disruption timeline, decoded from a
/// `des.timeline` span emitted by ft-sim during a live conversion.
#[derive(Clone, Debug, Default)]
pub struct TimelinePoint {
    /// Reallocation epoch the point was sampled at.
    pub epoch: u64,
    /// Simulation time of the reallocation.
    pub t: f64,
    /// Conversion phase: `drain` (links removed, latency running) or
    /// `post` (new links live, final re-route done).
    pub phase: String,
    /// Flows currently admitted with a path.
    pub active: u64,
    /// Flows parked without a path.
    pub parked: u64,
    /// Events pending in the DES queue.
    pub queue: u64,
    /// Events scheduled so far (event-rate proxy across points).
    pub scheduled: u64,
    /// Cumulative flow re-routes.
    pub reroutes: u64,
    /// Cumulative re-routes attributed to the conversion window.
    pub conversion_reroutes: u64,
    /// Links removed by the conversion so far.
    pub links_removed: u64,
    /// Links the conversion plan removes in total (drain progress is
    /// `links_removed / links_planned`).
    pub links_planned: u64,
}

/// Extract the conversion timeline (`des.timeline` spans) in emission
/// order. Empty when the trace holds no conversion — `ftctl trace` only
/// renders the disruption profile when this is non-empty.
pub fn conversion_timeline(trace: &Trace) -> Vec<TimelinePoint> {
    let mut with_key: Vec<(u64, u64, TimelinePoint)> = Vec::new();
    for s in &trace.spans {
        if s.name != "des.timeline" {
            continue;
        }
        let p = TimelinePoint {
            epoch: s.field_u64("epoch").unwrap_or(0),
            t: s.field_f64("t").unwrap_or(0.0),
            phase: s.field_str("phase").unwrap_or_default(),
            active: s.field_u64("active").unwrap_or(0),
            parked: s.field_u64("parked").unwrap_or(0),
            queue: s.field_u64("queue").unwrap_or(0),
            scheduled: s.field_u64("scheduled").unwrap_or(0),
            reroutes: s.field_u64("reroutes").unwrap_or(0),
            conversion_reroutes: s.field_u64("conversion_reroutes").unwrap_or(0),
            links_removed: s.field_u64("links_removed").unwrap_or(0),
            links_planned: s.field_u64("links_planned").unwrap_or(0),
        };
        with_key.push((s.start_us, s.id, p));
    }
    with_key.sort_by_key(|a| (a.0, a.1));
    with_key.into_iter().map(|(_, _, p)| p).collect()
}

/// Nearest-rank quantile over ascending-sorted samples — exact, unlike
/// the bucketed registry quantiles. 0 when empty.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((n as f64) * q).ceil() as usize;
    let idx = rank.clamp(1, n) - 1;
    sorted.get(idx).copied().unwrap_or(0)
}

/// Parses one JSONL line as a span event; `None` for anything else.
fn parse_span_line(line: &str) -> Option<SpanEvent> {
    let entries = object_entries(line)?;
    let mut is_span = false;
    let mut name: Option<String> = None;
    let mut id: Option<u64> = None;
    let mut parent = 0u64;
    let mut thread = 0u64;
    let mut start_us: Option<u64> = None;
    let mut dur_us = 0u64;
    let mut fields_json = String::from("{}");
    for (k, v) in entries {
        match k {
            "type" => is_span = v == "\"span\"",
            "name" => name = strip_quotes(v).map(unescape),
            "id" => id = v.parse::<u64>().ok(),
            "parent" => parent = v.parse::<u64>().ok().unwrap_or(0),
            "thread" => thread = v.parse::<u64>().ok().unwrap_or(0),
            "start_us" => start_us = v.parse::<u64>().ok(),
            "dur_us" => dur_us = v.parse::<u64>().ok().unwrap_or(0),
            "fields" => fields_json = v.to_string(),
            _ => {}
        }
    }
    if !is_span {
        return None;
    }
    Some(SpanEvent {
        name: name?,
        id: id?,
        parent,
        thread,
        start_us: start_us?,
        dur_us,
        fields_json,
    })
}

/// The raw value of `key` at the top level of JSON object text.
fn field_raw<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    object_entries(obj)?
        .into_iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Splits the top level of a JSON object into `(key, raw value)` pairs.
/// `None` on malformed input. Keys are the raw quoted content (our own
/// writer never escapes key characters); values are trimmed raw slices.
fn object_entries(obj: &str) -> Option<Vec<(&str, &str)>> {
    let b = obj.as_bytes();
    let mut i = skip_ws(b, 0);
    if b.get(i) != Some(&b'{') {
        return None;
    }
    i = skip_ws(b, i + 1);
    let mut out = Vec::new();
    if b.get(i) == Some(&b'}') {
        return Some(out);
    }
    loop {
        if b.get(i) != Some(&b'"') {
            return None;
        }
        let key_end = scan_string(b, i)?;
        // key content sits strictly between the quotes
        let key = obj.get(i + 1..key_end.checked_sub(1)?)?;
        i = skip_ws(b, key_end);
        if b.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(b, i + 1);
        let val_end = scan_value(b, i)?;
        let val = obj.get(i..val_end)?.trim();
        out.push((key, val));
        i = skip_ws(b, val_end);
        match b.get(i) {
            Some(&b',') => i = skip_ws(b, i + 1),
            Some(&b'}') => return Some(out),
            _ => return None,
        }
    }
}

/// First non-whitespace position at or after `i`.
fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while matches!(b.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        i += 1;
    }
    i
}

/// `i` at an opening quote; returns the index just past the closing one.
fn scan_string(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    loop {
        match b.get(j)? {
            b'\\' => j += 2,
            b'"' => return Some(j + 1),
            _ => j += 1,
        }
    }
}

/// `i` at the first byte of a JSON value; returns its exclusive end.
fn scan_value(b: &[u8], i: usize) -> Option<usize> {
    match b.get(i)? {
        b'"' => scan_string(b, i),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            loop {
                match b.get(j)? {
                    b'"' => {
                        j = scan_string(b, j)?;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth = depth.checked_sub(1)?;
                        if depth == 0 {
                            return Some(j + 1);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        _ => {
            let mut j = i;
            while let Some(c) = b.get(j) {
                if matches!(c, b',' | b'}' | b']') || c.is_ascii_whitespace() {
                    break;
                }
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

/// The content of a quoted JSON string value (raw, escapes intact).
fn strip_quotes(v: &str) -> Option<&str> {
    v.strip_prefix('"')?.strip_suffix('"')
}

/// Undo the JSON string escapes our own writer produces.
fn unescape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                match u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    Some(u) => out.push(u),
                    None => out.push('\u{fffd}'),
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, id: u64, parent: u64, start: u64, dur: u64) -> String {
        format!(
            "{{\"type\":\"span\",\"name\":\"{name}\",\"id\":{id},\"parent\":{parent},\
             \"thread\":0,\"start_us\":{start},\"dur_us\":{dur},\"fields\":{{}}}}"
        )
    }

    #[test]
    fn parses_spans_and_skips_other_lines() {
        let text = format!(
            "{}\n{{\"kind\":\"arrival\",\"t\":1.5}}\nnot json\n{}\n",
            span_line("a", 1, 0, 0, 100),
            span_line("b", 2, 1, 10, 40),
        );
        let t = Trace::parse(&text);
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.skipped, 2);
        assert_eq!(t.spans[0].name, "a");
        assert_eq!(t.spans[1].parent, 1);
    }

    #[test]
    fn forest_resolves_children_and_self_time() {
        let text = format!(
            "{}\n{}\n{}\n",
            span_line("root", 1, 0, 0, 100),
            span_line("kid", 2, 1, 10, 30),
            span_line("kid", 3, 1, 50, 20),
        );
        let t = Trace::parse(&text);
        let f = Forest::build(&t);
        assert_eq!(f.roots, vec![0]);
        assert_eq!(f.children[0], vec![1, 2]);
        assert_eq!(f.self_us[0], 50);
        assert_eq!(f.self_us[1], 30);
    }

    #[test]
    fn orphans_become_roots() {
        let text = span_line("lost", 7, 999, 5, 10);
        let t = Trace::parse(&text);
        let f = Forest::build(&t);
        assert_eq!(f.roots, vec![0]);
    }

    #[test]
    fn aggregates_sorted_by_total() {
        let text = format!(
            "{}\n{}\n{}\n",
            span_line("slow", 1, 0, 0, 1000),
            span_line("fast", 2, 0, 0, 10),
            span_line("fast", 3, 0, 20, 30),
        );
        let t = Trace::parse(&text);
        let aggs = Forest::build(&t).aggregates();
        assert_eq!(aggs[0].name, "slow");
        assert_eq!(aggs[1].name, "fast");
        assert_eq!(aggs[1].count, 2);
        assert_eq!(aggs[1].total_us, 40);
        assert_eq!(aggs[1].p50_us, 10);
        assert_eq!(aggs[1].max_us, 30);
    }

    #[test]
    fn critical_path_descends_longest_child() {
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            span_line("root", 1, 0, 0, 100),
            span_line("short", 2, 1, 0, 20),
            span_line("long", 3, 1, 20, 70),
            span_line("leaf", 4, 3, 25, 60),
        );
        let t = Trace::parse(&text);
        let f = Forest::build(&t);
        let path = f.critical_path(0);
        let names: Vec<&str> = path.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["root", "long", "leaf"]);
    }

    #[test]
    fn top_roots_one_per_name_longest_first() {
        let text = format!(
            "{}\n{}\n{}\n",
            span_line("a", 1, 0, 0, 10),
            span_line("a", 2, 0, 20, 90),
            span_line("b", 3, 0, 5, 50),
        );
        let t = Trace::parse(&text);
        let f = Forest::build(&t);
        let roots = f.top_roots();
        let names: Vec<(&str, u64)> = roots
            .iter()
            .map(|&r| (t.spans[r].name.as_str(), t.spans[r].dur_us))
            .collect();
        assert_eq!(names, vec![("a", 90), ("b", 50)]);
    }

    #[test]
    fn diff_ranks_by_absolute_delta() {
        let old = Trace::parse(&format!(
            "{}\n{}\n",
            span_line("x", 1, 0, 0, 100),
            span_line("y", 2, 0, 0, 500),
        ));
        let new = Trace::parse(&format!(
            "{}\n{}\n",
            span_line("x", 1, 0, 0, 900),
            span_line("z", 2, 0, 0, 10),
        ));
        let rows = diff(&old, &new);
        assert_eq!(rows[0].name, "x");
        assert_eq!(rows[0].delta_us, 800);
        assert_eq!(rows[1].name, "y");
        assert_eq!(rows[1].delta_us, -500);
        assert_eq!(rows[2].name, "z");
        assert_eq!(rows[2].new_count, 1);
        assert_eq!(rows[2].old_count, 0);
    }

    #[test]
    fn chrome_export_is_json_with_events() {
        let text = format!(
            "{}\n{}\n",
            span_line("a", 1, 0, 0, 5),
            span_line("b", 2, 1, 1, 2)
        );
        let t = Trace::parse(&text);
        let chrome = to_chrome(&t);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"name\":\"a\""));
        // round-trips through our own object scanner
        assert!(object_entries(chrome.trim()).is_some());
    }

    #[test]
    fn folded_weights_are_self_time() {
        let text = format!(
            "{}\n{}\n",
            span_line("root", 1, 0, 0, 100),
            span_line("kid", 2, 1, 10, 30),
        );
        let t = Trace::parse(&text);
        let folded = to_folded(&t);
        assert!(folded.contains("root 70\n"), "{folded}");
        assert!(folded.contains("root;kid 30\n"), "{folded}");
    }

    #[test]
    fn fields_decode_typed_values() {
        let line = "{\"type\":\"span\",\"name\":\"des.timeline\",\"id\":9,\"parent\":0,\
                    \"thread\":1,\"start_us\":4,\"dur_us\":0,\"fields\":{\"epoch\":3,\
                    \"t\":2.5,\"phase\":\"drain\",\"bad\":\"NaN\"}}";
        let t = Trace::parse(line);
        let s = &t.spans[0];
        assert_eq!(s.field_u64("epoch"), Some(3));
        assert!((s.field_f64("t").unwrap_or(0.0) - 2.5).abs() < 1e-12);
        assert_eq!(s.field_str("phase").as_deref(), Some("drain"));
        assert!(s.field_f64("bad").map(|v| v.is_nan()).unwrap_or(false));
        let tl = conversion_timeline(&t);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].epoch, 3);
        assert_eq!(tl[0].phase, "drain");
    }

    #[test]
    fn exact_quantiles_nearest_rank() {
        let d = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(exact_quantile(&d, 0.5), 50);
        assert_eq!(exact_quantile(&d, 0.95), 100);
        assert_eq!(exact_quantile(&d, 1.0), 100);
        assert_eq!(exact_quantile(&[], 0.5), 0);
    }
}
