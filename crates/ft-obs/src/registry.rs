//! The global named metric registry and its text exposition renderer.
//!
//! Call sites obtain `&'static` handles once (cache them in a `OnceLock`
//! for hot paths — lookup scans a mutex-guarded vector) and then record
//! lock-free through the primitives in [`crate::metrics`]. [`expose`]
//! renders every registered metric as Prometheus-style text lines:
//!
//! ```text
//! name 42
//! name{label="v"} 42
//! latency_us{q="0.50"} 128
//! latency_us_count 7
//! latency_us_sum 3210
//! ```

use crate::metrics::{Counter, Gauge, Histogram};
use crate::window::{WindowedCounter, WindowedHistogram};
use std::sync::{Mutex, MutexGuard};

#[derive(Clone, Copy)]
enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    WindowedCounter(&'static WindowedCounter),
    WindowedHistogram(&'static WindowedHistogram),
}

struct Entry {
    name: &'static str,
    /// Pre-rendered label pairs (`kind="solver",mode="batched"`), or `""`.
    labels: &'static str,
    handle: Handle,
}

static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

fn lock_registry() -> MutexGuard<'static, Vec<Entry>> {
    // A poisoned registry only means some thread panicked mid-lookup; the
    // entries themselves are append-only and always consistent.
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

/// The counter registered under `name` (no labels), creating it on first
/// use. Repeat calls return the same `&'static` cell. Registering the same
/// `(name, labels)` pair as a different metric kind is a caller bug and
/// yields a second, separately exposed cell rather than a panic.
pub fn counter(name: &'static str) -> &'static Counter {
    counter_with(name, "")
}

/// The counter registered under `name{labels}`. `labels` must be
/// pre-rendered label pairs such as `kind="solver"` (no braces).
pub fn counter_with(name: &'static str, labels: &'static str) -> &'static Counter {
    let mut reg = lock_registry();
    for e in reg.iter() {
        if e.name == name && e.labels == labels {
            if let Handle::Counter(c) = e.handle {
                return c;
            }
        }
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    reg.push(Entry {
        name,
        labels,
        handle: Handle::Counter(c),
    });
    c
}

/// The gauge registered under `name` (no labels), creating it on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = lock_registry();
    for e in reg.iter() {
        if e.name == name && e.labels.is_empty() {
            if let Handle::Gauge(g) = e.handle {
                return g;
            }
        }
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    reg.push(Entry {
        name,
        labels: "",
        handle: Handle::Gauge(g),
    });
    g
}

/// The histogram registered under `name` (no labels), creating it on first
/// use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = lock_registry();
    for e in reg.iter() {
        if e.name == name && e.labels.is_empty() {
            if let Handle::Histogram(h) = e.handle {
                return h;
            }
        }
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    reg.push(Entry {
        name,
        labels: "",
        handle: Handle::Histogram(h),
    });
    h
}

/// The windowed counter registered under `name` (no labels), creating it
/// on first use. Exposed as `{name}_window <merged total>`; advanced by
/// [`tick_windows`].
pub fn windowed_counter(name: &'static str) -> &'static WindowedCounter {
    let mut reg = lock_registry();
    for e in reg.iter() {
        if e.name == name && e.labels.is_empty() {
            if let Handle::WindowedCounter(c) = e.handle {
                return c;
            }
        }
    }
    let c: &'static WindowedCounter = Box::leak(Box::new(WindowedCounter::new()));
    reg.push(Entry {
        name,
        labels: "",
        handle: Handle::WindowedCounter(c),
    });
    c
}

/// The windowed histogram registered under `name` (no labels), creating
/// it on first use. Exposed as `{name}_window{q=…}` quantile lines plus
/// `{name}_window_count` / `{name}_window_sum`; advanced by
/// [`tick_windows`].
pub fn windowed_histogram(name: &'static str) -> &'static WindowedHistogram {
    let mut reg = lock_registry();
    for e in reg.iter() {
        if e.name == name && e.labels.is_empty() {
            if let Handle::WindowedHistogram(h) = e.handle {
                return h;
            }
        }
    }
    let h: &'static WindowedHistogram = Box::leak(Box::new(WindowedHistogram::new()));
    reg.push(Entry {
        name,
        labels: "",
        handle: Handle::WindowedHistogram(h),
    });
    h
}

/// Advance every registered windowed metric by one epoch. Holding the
/// registry lock serializes ticks, which the window ring requires (see
/// [`WindowedHistogram::tick`]).
pub fn tick_windows() {
    let reg = lock_registry();
    for e in reg.iter() {
        match e.handle {
            Handle::WindowedCounter(c) => c.tick(),
            Handle::WindowedHistogram(h) => h.tick(),
            _ => {}
        }
    }
}

fn labelled(name: &str, labels: &str, extra: Option<&str>) -> String {
    match (labels.is_empty(), extra) {
        (true, None) => name.to_string(),
        (true, Some(x)) => format!("{name}{{{x}}}"),
        (false, None) => format!("{name}{{{labels}}}"),
        (false, Some(x)) => format!("{name}{{{labels},{x}}}"),
    }
}

/// Renders one histogram snapshot as its quantile, `_count` and `_sum`
/// exposition lines (shared by the cumulative and `_window` renderings).
fn push_histogram_lines(
    lines: &mut Vec<String>,
    name: &str,
    labels: &str,
    s: &crate::metrics::HistogramSnapshot,
) {
    for (q, tag) in [(0.5, "0.50"), (0.95, "0.95"), (0.99, "0.99")] {
        let lbl = format!("q=\"{tag}\"");
        lines.push(format!(
            "{} {}",
            labelled(name, labels, Some(&lbl)),
            s.quantile_us(q)
        ));
    }
    lines.push(format!(
        "{} {}",
        labelled(&format!("{name}_count"), labels, None),
        s.count
    ));
    lines.push(format!(
        "{} {}",
        labelled(&format!("{name}_sum"), labels, None),
        s.sum_us
    ));
}

/// Render every registered metric as exposition text, one `name{labels}
/// value` line each, sorted by line for deterministic output. Histograms
/// expand to `q="0.50"/"0.95"/"0.99"` quantile lines plus `_count` and
/// `_sum` (µs) totals.
pub fn expose() -> String {
    let reg = lock_registry();
    let mut lines: Vec<String> = Vec::new();
    for e in reg.iter() {
        match &e.handle {
            Handle::Counter(c) => {
                lines.push(format!("{} {}", labelled(e.name, e.labels, None), c.get()));
            }
            Handle::Gauge(g) => {
                lines.push(format!("{} {}", labelled(e.name, e.labels, None), g.get()));
            }
            Handle::Histogram(h) => {
                push_histogram_lines(&mut lines, e.name, e.labels, &h.snapshot());
            }
            Handle::WindowedCounter(c) => {
                let name = format!("{}_window", e.name);
                lines.push(format!("{} {}", labelled(&name, e.labels, None), c.get()));
            }
            Handle::WindowedHistogram(h) => {
                let name = format!("{}_window", e.name);
                push_histogram_lines(&mut lines, &name, e.labels, &h.snapshot());
            }
        }
    }
    drop(reg);
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_are_stable() {
        let a = counter("ft_obs_test_counter_total");
        let b = counter("ft_obs_test_counter_total");
        assert!(std::ptr::eq(a, b), "same name must return the same cell");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), b.get());
    }

    #[test]
    fn labels_separate_cells() {
        let a = counter_with("ft_obs_test_labelled_total", "kind=\"a\"");
        let b = counter_with("ft_obs_test_labelled_total", "kind=\"b\"");
        assert!(!std::ptr::eq(a, b));
        a.incr();
        let text = expose();
        assert!(text.contains("ft_obs_test_labelled_total{kind=\"a\"} 1"));
        assert!(text.contains("ft_obs_test_labelled_total{kind=\"b\"} 0"));
    }

    #[test]
    fn exposition_covers_all_kinds() {
        counter("ft_obs_test_expose_total").add(3);
        gauge("ft_obs_test_expose_gauge").set(9);
        histogram("ft_obs_test_expose_us").record_us(100);
        let text = expose();
        assert!(text.contains("ft_obs_test_expose_total 3"));
        assert!(text.contains("ft_obs_test_expose_gauge 9"));
        assert!(text.contains("ft_obs_test_expose_us{q=\"0.50\"} 64"));
        assert!(text.contains("ft_obs_test_expose_us_count 1"));
        assert!(text.contains("ft_obs_test_expose_us_sum 100"));
        // Deterministic: rendering twice yields identical text.
        assert_eq!(text, expose());
        // Every line is `name[{labels}] value`.
        for line in text.lines() {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap_or("");
            assert!(value.parse::<u64>().is_ok(), "bad value in {line:?}");
            assert!(parts.next().is_some(), "no name in {line:?}");
        }
    }
}
