//! Structured spans: timestamped, parent-linked trace events buffered per
//! thread and drained as JSONL to a process-wide sink.
//!
//! Each span records its name, a process-unique id, the id of the span
//! that was open on the same thread when it began (parent), a small
//! sequential thread id, a start timestamp (µs since the first trace
//! event of the process) and its duration. Events are rendered at span
//! drop into a bounded per-thread buffer ([`RING_CAP`] lines) that is
//! flushed to the sink when full, on [`flush`], and on thread exit (TLS
//! destructor). Every line that fails to reach a sink — a full buffer
//! draining with no sink installed, or a file-sink write error — is
//! counted in [`DROPPED_LINES_COUNTER`] (`ft_obs_dropped_lines_total`),
//! which both sink installers register eagerly so the exposition surface
//! shows a zero even before the first loss.
//!
//! Nothing here runs unless [`crate::enabled`] is true at the [`span!`]
//! site — the disabled cost is one relaxed atomic load.
//!
//! [`span!`]: crate::span!

use crate::registry;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Per-thread buffer capacity, in events; a full buffer flushes to the
/// sink (or is discarded and counted when no sink is installed).
pub const RING_CAP: usize = 4096;

/// Registry counter name for span lines that never reached a sink: a
/// buffer drained with no sink installed, or a file-sink write failure.
pub const DROPPED_LINES_COUNTER: &str = "ft_obs_dropped_lines_total";

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

enum SinkTarget {
    File(BufWriter<File>),
    Memory(Arc<Mutex<Vec<String>>>),
}

static SINK: Mutex<Option<SinkTarget>> = Mutex::new(None);

fn lock_sink() -> MutexGuard<'static, Option<SinkTarget>> {
    // Poison only means a writer thread panicked; the buffered writer is
    // still structurally sound for telemetry purposes.
    SINK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Install a JSONL file sink at `path` (truncating any existing file).
/// Subsequent span events are appended there, one JSON object per line.
pub fn install_file_sink<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    let file = File::create(path)?;
    // Register the loss counter up front so exposition shows it at zero.
    registry::counter(DROPPED_LINES_COUNTER);
    *lock_sink() = Some(SinkTarget::File(BufWriter::new(file)));
    Ok(())
}

/// Install an in-memory sink (for tests) and return the shared vector the
/// event lines land in.
pub fn install_memory_sink() -> Arc<Mutex<Vec<String>>> {
    registry::counter(DROPPED_LINES_COUNTER);
    let store = Arc::new(Mutex::new(Vec::new()));
    *lock_sink() = Some(SinkTarget::Memory(Arc::clone(&store)));
    store
}

/// Flush the calling thread's buffered events into the sink, then flush
/// the sink itself (for file sinks, down to the OS). Other threads'
/// buffers flush when full or when those threads exit.
pub fn flush() {
    let _ = TLS.try_with(|t| {
        if let Ok(mut t) = t.try_borrow_mut() {
            let lines = std::mem::take(&mut t.lines);
            drain(lines);
        }
    });
    if let Some(SinkTarget::File(w)) = lock_sink().as_mut() {
        let _ = w.flush();
    }
}

/// Flush the calling thread's buffer, then remove and flush the installed
/// sink (if any). Call at the end of a traced run so the file is complete
/// before the process exits (TLS destructors do not run on
/// `process::exit`).
pub fn take_sink() {
    flush();
    if let Some(SinkTarget::File(mut w)) = lock_sink().take() {
        let _ = w.flush();
    }
}

fn drain(lines: Vec<String>) {
    if lines.is_empty() {
        return;
    }
    let total = lines.len() as u64;
    let mut dropped = 0u64;
    {
        let mut sink = lock_sink();
        match sink.as_mut() {
            Some(SinkTarget::File(w)) => {
                for l in &lines {
                    if writeln!(w, "{l}").is_err() {
                        dropped += 1;
                    }
                }
            }
            Some(SinkTarget::Memory(store)) => {
                let mut v = store.lock().unwrap_or_else(|p| p.into_inner());
                v.extend(lines);
            }
            None => dropped = total,
        }
    }
    if dropped > 0 {
        registry::counter(DROPPED_LINES_COUNTER).add(dropped);
    }
}

struct ThreadBuf {
    /// Small sequential id for this thread, stamped into its events.
    thread: u64,
    /// Ids of the spans currently open on this thread, innermost last.
    stack: Vec<u64>,
    /// Rendered JSONL events awaiting a flush.
    lines: Vec<String>,
}

impl ThreadBuf {
    fn push_line(&mut self, line: String) {
        self.lines.push(line);
        if self.lines.len() >= RING_CAP {
            let lines = std::mem::take(&mut self.lines);
            drain(lines);
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        let lines = std::mem::take(&mut self.lines);
        drain(lines);
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        lines: Vec::new(),
    });
}

pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
}

/// A value renderable as a JSON span field. Implemented for the integer,
/// float, bool and string types instrumentation sites actually pass.
pub trait FieldValue {
    /// Append `self` as a JSON value.
    fn write_json(&self, out: &mut String);
}

macro_rules! int_field {
    ($($t:ty),*) => {$(
        impl FieldValue for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}
int_field!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FieldValue for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl FieldValue for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // Debug formatting keeps a decimal point / exponent, so the
            // value parses back as a JSON number (Display prints `1`
            // for 1.0, which is also valid JSON — but keep the type).
            let _ = write!(out, "{self:?}");
        } else if self.is_nan() {
            out.push_str("\"NaN\"");
        } else if self.is_sign_negative() {
            out.push_str("\"-inf\"");
        } else {
            out.push_str("\"inf\"");
        }
    }
}

impl FieldValue for &str {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        json_escape_into(out, self);
        out.push('"');
    }
}

impl FieldValue for String {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

/// An open span. Created via [`Span::begin`] (usually through the
/// [`span!`] macro); records its event when dropped.
///
/// [`span!`]: crate::span!
pub struct Span {
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    /// Rendered `"key":value` pairs, comma-joined.
    fields: String,
}

impl Span {
    /// Open a span named `name`, parented to the innermost span currently
    /// open on this thread (parent id 0 = root).
    pub fn begin(name: &'static str) -> Span {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = TLS
            .try_with(|t| {
                t.try_borrow_mut()
                    .map(|mut t| {
                        let p = t.stack.last().copied().unwrap_or(0);
                        t.stack.push(id);
                        p
                    })
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        Span {
            id,
            parent,
            name,
            start_us: now_us(),
            fields: String::new(),
        }
    }

    /// Attach a `key: value` field. May be called any time before the span
    /// drops, so end-of-phase results (α, D(l), λ) can be recorded on the
    /// span that timed the phase.
    pub fn field<V: FieldValue>(&mut self, key: &str, value: V) {
        if !self.fields.is_empty() {
            self.fields.push(',');
        }
        self.fields.push('"');
        json_escape_into(&mut self.fields, key);
        self.fields.push_str("\":");
        value.write_json(&mut self.fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end_us = now_us();
        let dur_us = end_us.saturating_sub(self.start_us);
        let _ = TLS.try_with(|t| {
            if let Ok(mut t) = t.try_borrow_mut() {
                // Unwind the open-span stack; out-of-order drops (spans
                // moved across an await-like boundary do not exist here,
                // but be robust) just remove their own id.
                match t.stack.last() {
                    Some(&top) if top == self.id => {
                        t.stack.pop();
                    }
                    _ => t.stack.retain(|&sid| sid != self.id),
                }
                let mut line = String::with_capacity(96 + self.fields.len());
                let _ = write!(
                    line,
                    "{{\"type\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{},\
                     \"thread\":{},\"start_us\":{},\"dur_us\":{},\"fields\":{{{}}}}}",
                    self.name, self.id, self.parent, t.thread, self.start_us, dur_us, self.fields
                );
                t.push_line(line);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_rendering_is_valid_json_fragments() {
        let mut s = Span::begin("test.fields");
        s.field("k", 8usize);
        s.field("lambda", 0.25f64);
        s.field("tag", "a\"b");
        s.field("ok", true);
        assert_eq!(
            s.fields,
            "\"k\":8,\"lambda\":0.25,\"tag\":\"a\\\"b\",\"ok\":true"
        );
    }

    #[test]
    fn nonfinite_floats_are_quoted() {
        let mut out = String::new();
        f64::NAN.write_json(&mut out);
        assert_eq!(out, "\"NaN\"");
        out.clear();
        f64::INFINITY.write_json(&mut out);
        assert_eq!(out, "\"inf\"");
        out.clear();
        f64::NEG_INFINITY.write_json(&mut out);
        assert_eq!(out, "\"-inf\"");
    }

    #[test]
    fn json_escape_handles_control_chars() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\nb\t\u{1}c");
        assert_eq!(out, "a\\nb\\t\\u0001c");
    }
}
