//! Sliding-window metric primitives: histograms and counters whose
//! readings cover the last [`WINDOW_EPOCHS`] epochs instead of the whole
//! process lifetime.
//!
//! A windowed metric is a ring of epoch slots. Recording lands in the
//! slot the cursor currently points at; an explicit [`WindowedHistogram::
//! tick`] clears the *next* slot and then advances the cursor, so the
//! merged snapshot always covers at most the last `WINDOW_EPOCHS` epochs
//! and a slot is recycled only after its contents have aged out of the
//! window. Who calls `tick()` and how often is the embedder's choice —
//! ft-serve drives it from a [`WindowClock`] at a configurable epoch
//! length, tests drive it by hand.
//!
//! Same discipline as [`crate::metrics`]: relaxed atomics only, no locks
//! on the record path, zero dependencies. Snapshots are advisory — a
//! recorder that read the cursor immediately before a tick may land its
//! sample in a slot that is just about to be (or was just) cleared. That
//! can lose or misplace individual samples at epoch boundaries, which is
//! the accepted trade for a lock-free record path; it never corrupts a
//! slot (every cell is an independent atomic) and never affects the
//! cumulative metrics recorded alongside.

use crate::metrics::{Counter, Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of epoch slots in a window ring. With ft-serve's default 1 s
/// epoch this makes every quoted quantile an "over the last ~8 s" figure.
pub const WINDOW_EPOCHS: usize = 8;

/// Fewest samples in a merged window for which a quantile is considered
/// trustworthy; below this, consumers should flag the reading (the
/// ft-serve stats line appends `<verb>_window_low=true`).
pub const MIN_WINDOW_SAMPLES: u64 = 8;

/// A latency histogram covering the last [`WINDOW_EPOCHS`] epochs.
#[derive(Debug)]
pub struct WindowedHistogram {
    epochs: [Histogram; WINDOW_EPOCHS],
    cursor: AtomicU64,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::new()
    }
}

impl WindowedHistogram {
    /// A fresh all-zero window (const, so it can live in statics).
    pub const fn new() -> Self {
        WindowedHistogram {
            epochs: [const { Histogram::new() }; WINDOW_EPOCHS],
            cursor: AtomicU64::new(0),
        }
    }

    /// Record one sample of `us` microseconds into the current epoch slot.
    #[inline]
    pub fn record_us(&self, us: u64) {
        let c = self.cursor.load(Ordering::Relaxed);
        // bounds: c % WINDOW_EPOCHS < WINDOW_EPOCHS = epochs.len()
        self.epochs[(c % WINDOW_EPOCHS as u64) as usize].record_us(us);
    }

    /// Record one sample from a [`Duration`] (saturating at `u64::MAX` µs).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Advance the window by one epoch: clear the slot about to become
    /// current, then publish the new cursor. Ticks must be serialized by
    /// the caller (ft-serve's [`WindowClock`] admits one winner per epoch
    /// boundary; [`crate::registry::tick_windows`] holds the registry
    /// lock) — concurrent ticks would race the clear against recorders of
    /// the already-published slot.
    pub fn tick(&self) {
        let next = self.cursor.load(Ordering::Relaxed).wrapping_add(1);
        // bounds: next % WINDOW_EPOCHS < WINDOW_EPOCHS = epochs.len()
        self.epochs[(next % WINDOW_EPOCHS as u64) as usize].clear();
        self.cursor.store(next, Ordering::Relaxed);
    }

    /// Number of ticks so far (the cursor value).
    pub fn ticks(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// A merged snapshot over every live epoch slot — the "last window"
    /// reading the `_window` exposition lines and the ft-serve stats line
    /// quote quantiles from.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for e in &self.epochs {
            merged.merge_from(&e.snapshot());
        }
        merged
    }
}

/// An event counter covering the last [`WINDOW_EPOCHS`] epochs.
#[derive(Debug)]
pub struct WindowedCounter {
    epochs: [Counter; WINDOW_EPOCHS],
    cursor: AtomicU64,
}

impl Default for WindowedCounter {
    fn default() -> Self {
        WindowedCounter::new()
    }
}

impl WindowedCounter {
    /// A fresh zero window (const, so it can live in statics).
    pub const fn new() -> Self {
        WindowedCounter {
            epochs: [const { Counter::new() }; WINDOW_EPOCHS],
            cursor: AtomicU64::new(0),
        }
    }

    /// Add `n` events to the current epoch slot.
    #[inline]
    pub fn add(&self, n: u64) {
        let c = self.cursor.load(Ordering::Relaxed);
        // bounds: c % WINDOW_EPOCHS < WINDOW_EPOCHS = epochs.len()
        self.epochs[(c % WINDOW_EPOCHS as u64) as usize].add(n);
    }

    /// Add one event to the current epoch slot.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Advance the window by one epoch (same contract as
    /// [`WindowedHistogram::tick`]).
    pub fn tick(&self) {
        let next = self.cursor.load(Ordering::Relaxed).wrapping_add(1);
        // bounds: next % WINDOW_EPOCHS < WINDOW_EPOCHS = epochs.len()
        self.epochs[(next % WINDOW_EPOCHS as u64) as usize].clear();
        self.cursor.store(next, Ordering::Relaxed);
    }

    /// Number of ticks so far (the cursor value).
    pub fn ticks(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Merged total over every live epoch slot.
    pub fn get(&self) -> u64 {
        self.epochs.iter().map(|e| e.get()).sum()
    }
}

/// Decides *when* windows tick, so embedders outside ft-obs never touch
/// relaxed atomics themselves (the lint's `relaxed-sync` rule is scoped
/// to this crate). Feed it a monotonic µs reading; when at least one
/// epoch has elapsed since the last admitted tick, exactly one caller is
/// told how many epochs to advance (capped at [`WINDOW_EPOCHS`] — after
/// a long idle stretch the whole window has aged out anyway) and every
/// concurrent rival gets 0.
#[derive(Debug, Default)]
pub struct WindowClock {
    last_us: AtomicU64,
}

impl WindowClock {
    /// A clock whose first epoch starts at time 0 (const, for statics).
    pub const fn new() -> Self {
        WindowClock {
            last_us: AtomicU64::new(0),
        }
    }

    /// How many epochs of length `epoch_us` have elapsed at `now_us`
    /// since the last admitted tick. Returns 0 while the epoch is still
    /// running, when `epoch_us` is 0 (windowing disabled), or when a
    /// concurrent caller already claimed this boundary.
    pub fn due_epochs(&self, now_us: u64, epoch_us: u64) -> u64 {
        if epoch_us == 0 {
            return 0;
        }
        let last = self.last_us.load(Ordering::Relaxed);
        let elapsed = now_us.saturating_sub(last);
        if elapsed < epoch_us {
            return 0;
        }
        let steps = elapsed / epoch_us;
        let next = last.saturating_add(steps.saturating_mul(epoch_us));
        // Relaxed CAS is enough: this atomic only elects a ticker, it
        // does not publish data (the slots are themselves atomics).
        if self
            .last_us
            .compare_exchange(last, next, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            steps.min(WINDOW_EPOCHS as u64)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_merges_live_epochs() {
        let w = WindowedHistogram::new();
        w.record_us(100);
        w.tick();
        w.record_us(200);
        let s = w.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum_us, 300);
    }

    #[test]
    fn old_epochs_age_out() {
        let w = WindowedHistogram::new();
        w.record_us(100);
        w.tick();
        w.record_us(200);
        // 100 lives in slot 0; WINDOW_EPOCHS - 1 more ticks bring the
        // cursor back around and the final tick recycles slot 0.
        for _ in 0..WINDOW_EPOCHS - 1 {
            w.tick();
        }
        let s = w.snapshot();
        assert_eq!(s.count, 1, "oldest epoch must have aged out");
        assert_eq!(s.sum_us, 200);
        assert_eq!(w.ticks(), WINDOW_EPOCHS as u64);
    }

    #[test]
    fn full_rotation_empties_the_window() {
        let w = WindowedHistogram::new();
        for i in 0..100 {
            w.record_us(i);
            w.tick();
        }
        for _ in 0..WINDOW_EPOCHS {
            w.tick();
        }
        assert_eq!(w.snapshot().count, 0);
    }

    #[test]
    fn windowed_counter_roundtrip() {
        let c = WindowedCounter::new();
        c.add(5);
        c.tick();
        c.incr();
        assert_eq!(c.get(), 6);
        for _ in 0..WINDOW_EPOCHS {
            c.tick();
        }
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn clock_admits_one_ticker_per_boundary() {
        let clk = WindowClock::new();
        assert_eq!(clk.due_epochs(500, 1000), 0, "epoch still running");
        assert_eq!(clk.due_epochs(1000, 1000), 1);
        assert_eq!(clk.due_epochs(1000, 1000), 0, "boundary already claimed");
        assert_eq!(clk.due_epochs(3500, 1000), 2, "two epochs elapsed");
        assert_eq!(
            clk.due_epochs(u64::MAX / 2, 1000),
            WINDOW_EPOCHS as u64,
            "long idle stretches cap at a full-window rotation"
        );
        assert_eq!(clk.due_epochs(123, 0), 0, "epoch 0 disables windowing");
    }
}
