//! Concurrency and sink-integrity tests for ft-obs: a multi-threaded
//! counter/histogram hammer asserting exact totals (no lost updates), and
//! span-nesting tests on the JSONL sink (events parse, parent ids
//! resolve, thread ids differ across threads).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ft_obs::{registry, HistogramSnapshot, Span};
use std::collections::HashMap;
use std::sync::Mutex;
use std::thread;

/// The sink and the `enabled` flag are process-wide; tests that touch them
/// serialize on this lock so they cannot observe each other's events.
static SINK_LOCK: Mutex<()> = Mutex::new(());

const THREADS: usize = 8;
const ITERS: u64 = 10_000;

#[test]
fn hammer_counters_and_histograms_lose_no_updates() {
    let c = registry::counter("hammer_total");
    let h = registry::histogram("hammer_us");
    thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..ITERS {
                    c.incr();
                    // Spread samples across buckets deterministically.
                    h.record_us((t as u64 * ITERS + i) % 4096);
                }
            });
        }
    });
    let n = THREADS as u64 * ITERS;
    assert_eq!(c.get(), n, "counter lost updates");
    let snap: HistogramSnapshot = h.snapshot();
    assert_eq!(snap.count, n, "histogram lost samples");
    assert_eq!(
        snap.buckets.iter().sum::<u64>(),
        n,
        "bucket mass does not match count"
    );
    // Every thread recorded the same sample multiset modulo 4096, so the
    // sum is exactly THREADS * (0 + 1 + ... + 4095) * (ITERS / 4096)...
    // ITERS isn't a multiple of 4096; just recompute sequentially.
    let mut expect_sum = 0u64;
    for t in 0..THREADS as u64 {
        for i in 0..ITERS {
            expect_sum += (t * ITERS + i) % 4096;
        }
    }
    assert_eq!(snap.sum_us, expect_sum, "histogram sum lost updates");
    // The hammered metrics show up in exposition text.
    let text = registry::expose();
    assert!(text.contains(&format!("hammer_total {n}")));
    assert!(text.contains(&format!("hammer_us_count {n}")));
}

/// Pulls `"key":<integer>` out of a rendered JSONL event.
fn int_field(line: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Shallow JSONL sanity check: balanced braces/quotes, expected keys.
fn assert_parses(line: &str) {
    assert!(line.starts_with('{') && line.ends_with('}'), "{line:?}");
    assert_eq!(line.matches('{').count(), line.matches('}').count());
    assert_eq!(
        line.matches('"').count() % 2,
        0,
        "unbalanced quotes: {line:?}"
    );
    for key in [
        "type", "name", "id", "parent", "thread", "start_us", "dur_us", "fields",
    ] {
        assert!(
            line.contains(&format!("\"{key}\":")),
            "missing {key}: {line:?}"
        );
    }
    assert_eq!(str_field(line, "type").as_deref(), Some("span"));
}

#[test]
fn span_nesting_resolves_parent_ids_in_jsonl() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let store = ft_obs::install_memory_sink();
    ft_obs::set_enabled(true);

    {
        let mut outer = Span::begin("test.outer");
        outer.field("k", 8usize);
        {
            let _mid = ft_obs::span!("test.mid", step = 1u64);
            let _inner = ft_obs::span!("test.inner");
        }
        let _sibling = ft_obs::span!("test.sibling", lambda = 0.5f64);
    }
    ft_obs::set_enabled(false);
    ft_obs::take_sink();

    let lines = store.lock().unwrap_or_else(|p| p.into_inner());
    assert_eq!(lines.len(), 4, "one event per closed span: {lines:?}");

    let mut by_name: HashMap<String, &String> = HashMap::new();
    for line in lines.iter() {
        assert_parses(line);
        by_name.insert(str_field(line, "name").expect("name"), line);
    }
    let id = |n: &str| int_field(by_name[n], "id").expect("id");
    let parent = |n: &str| int_field(by_name[n], "parent").expect("parent");

    assert_eq!(parent("test.outer"), 0, "outer span is a root");
    assert_eq!(parent("test.mid"), id("test.outer"));
    assert_eq!(parent("test.inner"), id("test.mid"));
    assert_eq!(parent("test.sibling"), id("test.outer"));

    // Fields round-trip.
    assert!(by_name["test.outer"].contains("\"k\":8"));
    assert!(by_name["test.mid"].contains("\"step\":1"));
    assert!(by_name["test.sibling"].contains("\"lambda\":0.5"));

    // Inner spans close first, so they appear before their parents; all
    // on the same thread.
    let threads: Vec<i64> = lines
        .iter()
        .map(|l| int_field(l, "thread").expect("thread"))
        .collect();
    assert!(threads.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn spans_on_separate_threads_are_roots_with_distinct_thread_ids() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let store = ft_obs::install_memory_sink();
    ft_obs::set_enabled(true);

    thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                {
                    let _sp = ft_obs::span!("test.worker");
                }
                // Drain this worker's buffer before the scope joins: the
                // TLS destructor also drains, but only at actual thread
                // exit, which can land after `scope` returns.
                ft_obs::flush();
            });
        }
    });
    ft_obs::set_enabled(false);
    ft_obs::take_sink();

    let lines = store.lock().unwrap_or_else(|p| p.into_inner());
    let workers: Vec<&String> = lines
        .iter()
        .filter(|l| str_field(l, "name").as_deref() == Some("test.worker"))
        .collect();
    assert_eq!(workers.len(), 2, "{lines:?}");
    for l in &workers {
        assert_parses(l);
        assert_eq!(int_field(l, "parent"), Some(0));
    }
    let t0 = int_field(workers[0], "thread").expect("thread");
    let t1 = int_field(workers[1], "thread").expect("thread");
    assert_ne!(t0, t1, "distinct threads must get distinct ids");
}

#[test]
fn spans_without_a_sink_count_as_dropped_lines() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    ft_obs::take_sink(); // make sure no sink is installed
    let dropped = registry::counter(ft_obs::span::DROPPED_LINES_COUNTER);
    let before = dropped.get();
    ft_obs::set_enabled(true);
    // A dedicated thread overflows its ring buffer (drains at RING_CAP)
    // and flushes the remainder — all with nowhere to go.
    let n = (ft_obs::span::RING_CAP + 10) as u64;
    thread::spawn(move || {
        for _ in 0..n {
            let _s = ft_obs::span!("test.dropped");
        }
        ft_obs::flush();
    })
    .join()
    .expect("emitter thread");
    ft_obs::set_enabled(false);
    assert_eq!(
        dropped.get() - before,
        n,
        "every sink-less line must be counted as dropped"
    );
    // The loss is visible on the exposition surface.
    let text = registry::expose();
    assert!(text.contains("ft_obs_dropped_lines_total"), "{text}");
}

#[test]
fn disabled_span_macro_returns_none() {
    // Takes the sink lock: flipping the global flag must not race the
    // enabled-window of the sink tests.
    let _guard = SINK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    ft_obs::set_enabled(false);
    let g = ft_obs::span!("test.disabled", expensive = 1u64);
    assert!(g.is_none());
}
