//! Sliding-window integration tests: rotation under concurrent recording,
//! age-out through the registry tick, `_window` exposition lines, and
//! prefix-filtered determinism of the exposition text (this binary's tests
//! run in parallel threads, so whole-text comparisons would race other
//! tests' metrics — each test owns a unique name prefix instead).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ft_obs::{registry, WindowedHistogram, WINDOW_EPOCHS};
use std::thread;

#[test]
fn window_hammer_without_ticks_loses_no_updates() {
    let w = WindowedHistogram::new();
    const THREADS: usize = 8;
    const ITERS: u64 = 10_000;
    thread::scope(|s| {
        for t in 0..THREADS {
            let w = &w;
            s.spawn(move || {
                for i in 0..ITERS {
                    w.record_us((t as u64 * ITERS + i) % 2048);
                }
            });
        }
    });
    let snap = w.snapshot();
    let n = THREADS as u64 * ITERS;
    assert_eq!(snap.count, n, "window lost samples with no ticks");
    assert_eq!(snap.buckets.iter().sum::<u64>(), n);
    let mut expect_sum = 0u64;
    for t in 0..THREADS as u64 {
        for i in 0..ITERS {
            expect_sum += (t * ITERS + i) % 2048;
        }
    }
    assert_eq!(snap.sum_us, expect_sum);
}

#[test]
fn window_rotation_under_concurrent_recording_is_sound() {
    let w = WindowedHistogram::new();
    const THREADS: usize = 4;
    const ITERS: u64 = 20_000;
    thread::scope(|s| {
        for _ in 0..THREADS {
            let w = &w;
            s.spawn(move || {
                for i in 0..ITERS {
                    w.record_us(i % 1000);
                }
            });
        }
        // One ticker (ticks must be serialized on a single caller) racing
        // the recorders: samples landing in a slot mid-recycle may be
        // shed — that loss is the documented epoch-boundary tearing — but
        // the ring must never invent samples or corrupt its accounting.
        let w = &w;
        s.spawn(move || {
            for _ in 0..(WINDOW_EPOCHS / 2) {
                w.tick();
                thread::yield_now();
            }
        });
    });
    // Quiesced: reads are exact now.
    let snap = w.snapshot();
    let total = THREADS as u64 * ITERS;
    assert!(
        snap.count <= total,
        "window invented samples: {}",
        snap.count
    );
    assert!(snap.count > 0, "everything was shed");
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    assert_eq!(w.ticks(), (WINDOW_EPOCHS / 2) as u64);

    // A full ring of further ticks ages every survivor out …
    for _ in 0..WINDOW_EPOCHS {
        w.tick();
    }
    assert_eq!(w.snapshot().count, 0, "full rotation must empty the window");
    // … and the ring is immediately usable again.
    for _ in 0..5 {
        w.record_us(42);
    }
    assert_eq!(w.snapshot().count, 5);
}

#[test]
fn registry_windowed_metrics_render_window_lines_and_age_out() {
    let h = registry::windowed_histogram("wintest_lat_us");
    let c = registry::windowed_counter("wintest_events");
    h.record_us(100);
    c.add(3);
    let text = registry::expose();
    assert!(
        text.contains("wintest_lat_us_window{q=\"0.50\"} 64"),
        "{text}"
    );
    assert!(text.contains("wintest_lat_us_window_count 1"), "{text}");
    assert!(text.contains("wintest_lat_us_window_sum 100"), "{text}");
    assert!(text.contains("wintest_events_window 3"), "{text}");

    // registry::tick_windows advances every windowed metric; a full ring
    // of ticks leaves both empty.
    for _ in 0..WINDOW_EPOCHS {
        registry::tick_windows();
    }
    let text = registry::expose();
    assert!(text.contains("wintest_lat_us_window_count 0"), "{text}");
    assert!(text.contains("wintest_events_window 0"), "{text}");
}

#[test]
fn exposition_is_deterministic_and_sorted() {
    registry::counter("dettest_total").add(7);
    registry::windowed_histogram("dettest_us").record_us(300);
    let filtered = |text: &str| {
        text.lines()
            .filter(|l| l.starts_with("dettest_"))
            .map(String::from)
            .collect::<Vec<_>>()
    };
    let a = filtered(&registry::expose());
    let b = filtered(&registry::expose());
    assert_eq!(a, b, "repeat renders must be byte-identical");
    assert!(!a.is_empty());
    let mut sorted = a.clone();
    sorted.sort_unstable();
    assert_eq!(a, sorted, "exposition lines must come out sorted");
    // The full text is sorted too (global property, stable under races
    // because sortedness holds for any interleaving of registrations).
    let text = registry::expose();
    let lines: Vec<&str> = text.lines().collect();
    let mut all_sorted = lines.clone();
    all_sorted.sort_unstable();
    assert_eq!(lines, all_sorted);
}
