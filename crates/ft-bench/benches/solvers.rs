//! Flow-solver benchmarks backing Figures 7 and 8: the exact simplex LP on
//! small instances and the Garg–Könemann FPTAS on realistic ones.
//!
//! One fig7/fig8 sweep point is one `fptas` solve below; the harness runs
//! dozens, so FPTAS cost dominates the throughput experiments end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_mcf::{
    aggregate_commodities, max_concurrent_flow, max_concurrent_flow_exact,
    max_concurrent_flow_sharded, CapGraph, Commodity, FptasOptions, ShardConfig,
};
use ft_metrics::path_length::SwitchDistances;
use ft_metrics::throughput::{throughput_all_to_all, SolverKind, ThroughputOptions};
use ft_topo::{fat_tree, Network};
use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};
use std::hint::black_box;

fn commodities(net: &Network, pattern: TrafficPattern, cluster: usize) -> Vec<Commodity> {
    let spec = WorkloadSpec {
        pattern,
        cluster_size: cluster,
        locality: Locality::Strong,
    };
    let tm = generate(net, &spec, 7);
    aggregate_commodities(tm.switch_triples(net))
}

fn bench_exact_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact-lp");
    g.sample_size(10);
    let net = fat_tree(4).unwrap();
    let cg = CapGraph::from_graph(&net.switch_graph(), 1.0);
    let cs = commodities(&net, TrafficPattern::AllToAll, 8);
    g.bench_function("fat-tree-k4-all-to-all", |b| {
        b.iter(|| black_box(max_concurrent_flow_exact(&cg, &cs)))
    });
    g.finish();
}

fn bench_fptas(c: &mut Criterion) {
    let mut g = c.benchmark_group("fptas");
    g.sample_size(10);
    for k in [6usize, 8] {
        // Figure 7 point: hot-spot workload on flat-tree global mode
        let flat = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
            .unwrap()
            .materialize(&Mode::GlobalRandom)
            .unwrap();
        let cg = CapGraph::from_graph(&flat.switch_graph(), 1.0);
        let cs = commodities(&flat, TrafficPattern::HotSpot, 1000);
        g.bench_with_input(
            BenchmarkId::new("fig7-hotspot-flat-tree", k),
            &(&cg, &cs),
            |b, (cg, cs)| {
                b.iter(|| black_box(max_concurrent_flow(cg, cs, FptasOptions::with_epsilon(0.2))))
            },
        );
        // Figure 8 point: all-to-all on flat-tree local mode
        let local = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
            .unwrap()
            .materialize(&Mode::LocalRandom)
            .unwrap();
        let cg2 = CapGraph::from_graph(&local.switch_graph(), 1.0);
        let cs2 = commodities(&local, TrafficPattern::AllToAll, 20);
        g.bench_with_input(
            BenchmarkId::new("fig8-all-to-all-flat-tree", k),
            &(&cg2, &cs2),
            |b, (cg, cs)| {
                b.iter(|| black_box(max_concurrent_flow(cg, cs, FptasOptions::with_epsilon(0.2))))
            },
        );
    }
    g.finish();
}

/// The fig7 hot-spot point through the three FPTAS engines: the batched
/// baseline, the round-sharded engine (cold and warm-started from the
/// switch distance table), and — on the symmetric Clos layout — the
/// orbit-aggregated all-to-all solve whose cost is dominated by the
/// distance/symmetry preprocessing, not the quotient FPTAS itself.
fn bench_fptas_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("fptas-engines");
    g.sample_size(10);
    let k = 8usize;
    let flat = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
        .unwrap()
        .materialize(&Mode::GlobalRandom)
        .unwrap();
    let cg = CapGraph::from_graph(&flat.switch_graph(), 1.0);
    let cs = commodities(&flat, TrafficPattern::HotSpot, 1000);
    let opts = FptasOptions::with_epsilon(0.2);
    g.bench_with_input(BenchmarkId::new("batched", k), &(), |b, ()| {
        b.iter(|| black_box(max_concurrent_flow(&cg, &cs, opts)))
    });
    g.bench_with_input(BenchmarkId::new("sharded-cold", k), &(), |b, ()| {
        b.iter(|| {
            black_box(max_concurrent_flow_sharded(
                &cg,
                &cs,
                opts,
                &ShardConfig::default(),
            ))
        })
    });
    let dist = SwitchDistances::compute(&flat);
    let oracle = move |a: usize, b: usize| dist.switch_distance(a, b);
    let cfg = ShardConfig {
        threads: 0,
        warm: Some(&oracle),
    };
    g.bench_with_input(BenchmarkId::new("sharded-warm", k), &(), |b, ()| {
        b.iter(|| black_box(max_concurrent_flow_sharded(&cg, &cs, opts, &cfg)))
    });
    let clos = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
        .unwrap()
        .materialize(&Mode::Clos)
        .unwrap();
    g.bench_with_input(
        BenchmarkId::new("aggregated-all-to-all", k),
        &(),
        |b, ()| {
            b.iter(|| {
                black_box(throughput_all_to_all(
                    &clos,
                    ThroughputOptions::fptas_with(0.2, SolverKind::Aggregated),
                ))
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_exact_lp, bench_fptas, bench_fptas_engines);
criterion_main!(benches);
