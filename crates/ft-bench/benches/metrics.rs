//! Metric-computation benchmarks backing Figures 5 and 6: average
//! server-pair path length, network-wide and intra-Pod.
//!
//! These are the hot loops of the fig5/fig6 harness binaries; one full
//! figure evaluates them ~100 times across k and (m, n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_metrics::path_length::{
    average_intra_pod_path_length, average_server_path_length, path_length_histogram,
};
use ft_topo::fat_tree;
use std::hint::black_box;

fn bench_apl(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5-apl");
    g.sample_size(10);
    for k in [8usize, 16] {
        let ftree = fat_tree(k).unwrap();
        let flat = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
            .unwrap()
            .materialize(&Mode::GlobalRandom)
            .unwrap();
        g.bench_with_input(BenchmarkId::new("fat-tree", k), &ftree, |b, n| {
            b.iter(|| black_box(average_server_path_length(n)))
        });
        g.bench_with_input(BenchmarkId::new("flat-tree-global", k), &flat, |b, n| {
            b.iter(|| black_box(average_server_path_length(n)))
        });
    }
    g.finish();
}

fn bench_intra_pod(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6-intra-pod-apl");
    g.sample_size(10);
    for k in [8usize, 16] {
        let flat = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
            .unwrap()
            .materialize(&Mode::LocalRandom)
            .unwrap();
        g.bench_with_input(BenchmarkId::new("flat-tree-local", k), &flat, |b, n| {
            b.iter(|| black_box(average_intra_pod_path_length(n, k * k / 4)))
        });
    }
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("path-length-histogram");
    g.sample_size(10);
    let net = fat_tree(8).unwrap();
    g.bench_function("fat-tree-k8", |b| {
        b.iter(|| black_box(path_length_histogram(&net)))
    });
    g.finish();
}

criterion_group!(benches, bench_apl, bench_intra_pod, bench_histogram);
criterion_main!(benches);
