//! Control-plane benchmarks: conversion planning and routing-table
//! computation — what the centralized controller (§2.6) pays per topology
//! change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_control::{plan_transition, EcmpRoutes, KspRoutes};
use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_graph::NodeId;
use std::hint::black_box;

fn bench_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconfig-plan");
    g.sample_size(10);
    for k in [8usize, 16] {
        let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
        let clos = ft.resolve(&Mode::Clos).unwrap();
        let global = ft.resolve(&Mode::GlobalRandom).unwrap();
        g.bench_with_input(
            BenchmarkId::new("clos-to-global", k),
            &(&ft, &clos, &global),
            |b, (ft, from, to)| b.iter(|| black_box(plan_transition(ft, from, to).unwrap())),
        );
    }
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    g.sample_size(10);
    for k in [8usize, 16] {
        let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
        let clos = ft.materialize(&Mode::Clos).unwrap();
        let global = ft.materialize(&Mode::GlobalRandom).unwrap();
        g.bench_with_input(BenchmarkId::new("ecmp-full-tables", k), &clos, |b, net| {
            b.iter(|| black_box(EcmpRoutes::compute(net)))
        });
        g.bench_with_input(BenchmarkId::new("ksp8-100-pairs", k), &global, |b, net| {
            b.iter(|| {
                let r = KspRoutes::new(net, 8);
                for i in 0..10u32 {
                    for j in 0..10u32 {
                        black_box(r.paths(NodeId(i), NodeId(net.num_switches() as u32 - 1 - j)));
                    }
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_planning, bench_routing);
criterion_main!(benches);
