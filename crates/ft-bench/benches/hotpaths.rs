//! Hot-path kernel benchmarks: the CSR BFS-APSP (sequential vs parallel
//! worker pool), the compact distance stack (scalar u16 BFS vs the
//! multi-source bitset kernel vs symmetry-deduped APSP, DESIGN.md §15),
//! Dijkstra scratch reuse, and the CSR-ported filtered Dijkstra that
//! Yen's algorithm drives.
//!
//! These are the micro counterparts of `ftctl bench --json` (which produces
//! the checked-in `BENCH_hotpaths.json` baseline); run them for
//! statistically solid per-kernel numbers on a quiet machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_graph::{dijkstra_csr, AllPairs, Csr, DistMatrix};
use ft_mcf::{CapGraph, DijkstraScratch};
use ft_topo::{fat_tree, DedupedApsp};
use std::hint::black_box;

fn bench_apsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("csr-apsp");
    g.sample_size(10);
    for k in [8usize, 16] {
        let net = fat_tree(k).unwrap();
        let sg = net.switch_graph();
        let csr = Csr::from_graph(&sg);
        g.bench_with_input(BenchmarkId::new("seq", k), &csr, |b, csr| {
            b.iter(|| black_box(AllPairs::compute_csr_with_threads(csr, 1)))
        });
        let workers = ft_graph::par::thread_count();
        g.bench_with_input(BenchmarkId::new("par", k), &csr, |b, csr| {
            b.iter(|| black_box(AllPairs::compute_csr_with_threads(csr, workers)))
        });
    }
    g.finish();
}

fn bench_dist_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("dist-matrix");
    g.sample_size(10);
    for k in [8usize, 16] {
        let net = fat_tree(k).unwrap();
        let sg = net.switch_graph();
        let csr = Csr::from_graph(&sg);
        // scalar reference: one u16 BFS row per source
        g.bench_with_input(BenchmarkId::new("scalar", k), &csr, |b, csr| {
            b.iter(|| black_box(DistMatrix::compute_scalar_csr(csr)))
        });
        // the multi-source bitset kernel (DESIGN.md §15.2)
        g.bench_with_input(BenchmarkId::new("bitset", k), &csr, |b, csr| {
            b.iter(|| black_box(DistMatrix::compute_csr_with_threads(csr, 1)))
        });
        // symmetry-deduped: k + 1 representative rows instead of 5k²/4
        g.bench_with_input(BenchmarkId::new("dedup", k), &net, |b, net| {
            b.iter(|| black_box(DedupedApsp::compute(net)))
        });
    }
    g.finish();
}

fn bench_dijkstra_scratch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dijkstra");
    g.sample_size(10);
    for k in [8usize, 16] {
        let net = fat_tree(k).unwrap();
        let sg = net.switch_graph();
        let cg = CapGraph::from_graph(&sg, 1.0);
        let ones = vec![1.0f64; cg.arc_count()];
        let n = cg.node_count();
        g.bench_with_input(BenchmarkId::new("alloc-64-calls", k), &cg, |b, cg| {
            b.iter(|| {
                for i in 0..64usize {
                    black_box(cg.shortest_path((i * 37) % n, (i * 97 + n / 2) % n, &ones));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("scratch-64-calls", k), &cg, |b, cg| {
            let mut scratch = DijkstraScratch::new();
            b.iter(|| {
                for i in 0..64usize {
                    black_box(cg.shortest_path_with(
                        (i * 37) % n,
                        (i * 97 + n / 2) % n,
                        &ones,
                        &mut scratch,
                    ));
                }
            })
        });
        let csr = Csr::from_graph(&sg);
        let lengths = vec![1.0f64; sg.edge_count()];
        g.bench_with_input(BenchmarkId::new("csr-weighted", k), &csr, |b, csr| {
            b.iter(|| black_box(dijkstra_csr(csr, ft_graph::NodeId(0), &lengths)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_apsp,
    bench_dist_matrix,
    bench_dijkstra_scratch
);
criterion_main!(benches);
