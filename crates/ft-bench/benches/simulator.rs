//! Flow-level simulator benchmarks: rate allocation and full event-loop
//! runs — the hot paths of the `ft-sim` extension crate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_sim::{flows_from_matrix, RouterPolicy, Simulator};
use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow-simulation");
    g.sample_size(10);
    for k in [4usize, 8] {
        let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
        for (mode, policy, label) in [
            (Mode::Clos, RouterPolicy::Ecmp, "clos-ecmp"),
            (Mode::GlobalRandom, RouterPolicy::Ksp(8), "global-ksp8"),
        ] {
            let net = ft.materialize(&mode).unwrap();
            let tm = generate(
                &net,
                &WorkloadSpec {
                    pattern: TrafficPattern::HotSpot,
                    cluster_size: 64,
                    locality: Locality::Strong,
                },
                1,
            );
            let flows = flows_from_matrix(&tm, 2.0, 0.0);
            g.bench_with_input(
                BenchmarkId::new(label, k),
                &(&net, &flows),
                |b, (net, flows)| {
                    b.iter(|| black_box(Simulator::new(net, policy).run(flows, &[], 1e9)))
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
