//! Topology construction benchmarks: how fast the four topology families
//! build, and how fast flat-tree converts between modes.
//!
//! Relevant to the paper's deployment story: conversions are infrequent
//! (§2.7) but the controller materializes candidate topologies when
//! planning, so construction must stay cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_topo::{fat_tree, jellyfish_matching_fat_tree, two_stage_random_graph, TwoStageParams};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    for k in [8usize, 16] {
        g.bench_with_input(BenchmarkId::new("fat-tree", k), &k, |b, &k| {
            b.iter(|| black_box(fat_tree(k).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("jellyfish", k), &k, |b, &k| {
            b.iter(|| black_box(jellyfish_matching_fat_tree(k, 1).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("two-stage-rg", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), 1)
                        .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("flat-tree-build", k), &k, |b, &k| {
            b.iter(|| black_box(FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap()))
        });
    }
    g.finish();
}

fn bench_materialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("materialize");
    g.sample_size(10);
    for k in [8usize, 16] {
        let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
        for mode in [Mode::Clos, Mode::GlobalRandom, Mode::LocalRandom] {
            g.bench_with_input(
                BenchmarkId::new(mode.label(), k),
                &(&ft, &mode),
                |b, (ft, mode)| b.iter(|| black_box(ft.materialize(mode).unwrap())),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_construction, bench_materialization);
criterion_main!(benches);
