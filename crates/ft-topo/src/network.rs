//! The shared logical-topology type consumed by every crate in the
//! workspace.
//!
//! A [`Network`] is an undirected multigraph of devices (switches and
//! servers) with per-device port budgets. Two layout invariants keep the
//! rest of the workspace simple and are enforced by the builder:
//!
//! 1. **Switches first**: all switch nodes have ids `0..num_switches()`,
//!    servers follow. Metrics code can therefore run BFS on a compact
//!    switch-only subgraph and treat server attachment as "+1 hop" on each
//!    end.
//! 2. **Servers are single-homed**: every server has exactly one link, to a
//!    switch. This matches the paper — converter switches *relocate* a
//!    server's one uplink, they never multi-home it.

use ft_graph::{EdgeId, Graph, NodeId};
use std::fmt;

/// The role a device plays in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum DeviceKind {
    /// A host.
    Server,
    /// Top-of-rack / edge switch inside a Pod.
    Edge,
    /// Aggregation switch inside a Pod.
    Aggregation,
    /// Core switch (connecting Pods).
    Core,
    /// An undifferentiated switch (random-graph topologies have no layers).
    Generic,
}

impl DeviceKind {
    /// Whether this device is any kind of switch.
    pub fn is_switch(self) -> bool {
        self != DeviceKind::Server
    }
}

/// Errors raised while building or validating a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A device would exceed its port budget.
    PortExhausted {
        /// The device out of ports.
        node: u32,
        /// Its port budget.
        ports: u32,
    },
    /// A server was added before a switch (layout invariant 1).
    SwitchAfterServer,
    /// A link endpoint does not exist.
    NoSuchNode(u32),
    /// A self-link was requested.
    SelfLink(u32),
    /// A server has zero or more than one link (layout invariant 2).
    BadServerDegree {
        /// The offending server node.
        node: u32,
        /// Its link count.
        degree: usize,
    },
    /// A link connects two servers.
    ServerToServerLink(u32, u32),
    /// Configuration parameters are invalid (message explains).
    BadParameters(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PortExhausted { node, ports } => {
                write!(f, "device {node} exceeded its {ports}-port budget")
            }
            TopologyError::SwitchAfterServer => {
                write!(f, "all switches must be added before the first server")
            }
            TopologyError::NoSuchNode(n) => write!(f, "node {n} does not exist"),
            TopologyError::SelfLink(n) => write!(f, "self-link on node {n}"),
            TopologyError::BadServerDegree { node, degree } => {
                write!(f, "server {node} has degree {degree}, expected exactly 1")
            }
            TopologyError::ServerToServerLink(a, b) => {
                write!(f, "link {a}-{b} connects two servers")
            }
            TopologyError::BadParameters(msg) => write!(f, "bad parameters: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Equipment inventory of a network, used to assert that two topologies are
/// built from the same hardware (the paper's "same equipments" requirement,
/// §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Equipment {
    /// Number of switches.
    pub switches: usize,
    /// Number of servers.
    pub servers: usize,
    /// Total number of links (switch–switch + server–switch).
    pub links: usize,
    /// Total switch ports across the network.
    pub total_switch_ports: u64,
}

/// Incremental builder for a [`Network`], enforcing the layout invariants
/// and port budgets as devices and links are added.
pub struct NetworkBuilder {
    graph: Graph,
    kinds: Vec<DeviceKind>,
    pods: Vec<Option<u32>>,
    ports: Vec<u32>,
    used_ports: Vec<u32>,
    num_switches: usize,
    saw_server: bool,
    name: String,
}

impl NetworkBuilder {
    /// Starts a new, empty network with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkBuilder {
            graph: Graph::new(0),
            kinds: Vec::new(),
            pods: Vec::new(),
            ports: Vec::new(),
            used_ports: Vec::new(),
            num_switches: 0,
            saw_server: false,
            name: name.into(),
        }
    }

    /// Adds a switch with the given kind, port budget and optional Pod id.
    ///
    /// # Errors
    /// [`TopologyError::SwitchAfterServer`] if a server was already added.
    pub fn add_switch(
        &mut self,
        kind: DeviceKind,
        ports: u32,
        pod: Option<u32>,
    ) -> Result<NodeId, TopologyError> {
        assert!(kind.is_switch(), "use add_server for servers");
        if self.saw_server {
            return Err(TopologyError::SwitchAfterServer);
        }
        let id = self.graph.add_node();
        self.kinds.push(kind);
        self.pods.push(pod);
        self.ports.push(ports);
        self.used_ports.push(0);
        self.num_switches += 1;
        Ok(id)
    }

    /// Adds a server (one implicit NIC port) with an optional Pod id.
    pub fn add_server(&mut self, pod: Option<u32>) -> NodeId {
        self.saw_server = true;
        let id = self.graph.add_node();
        self.kinds.push(DeviceKind::Server);
        self.pods.push(pod);
        self.ports.push(1);
        self.used_ports.push(0);
        id
    }

    /// Adds an undirected link, consuming one port on each endpoint.
    ///
    /// # Errors
    /// Port budget violations, self-links, server–server links and unknown
    /// nodes are rejected.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> Result<EdgeId, TopologyError> {
        let n = self.graph.node_count() as u32;
        if a.0 >= n {
            return Err(TopologyError::NoSuchNode(a.0));
        }
        if b.0 >= n {
            return Err(TopologyError::NoSuchNode(b.0));
        }
        if a == b {
            return Err(TopologyError::SelfLink(a.0));
        }
        if self.kinds[a.index()] == DeviceKind::Server
            && self.kinds[b.index()] == DeviceKind::Server
        {
            return Err(TopologyError::ServerToServerLink(a.0, b.0));
        }
        for &v in &[a, b] {
            if self.used_ports[v.index()] + 1 > self.ports[v.index()] {
                return Err(TopologyError::PortExhausted {
                    node: v.0,
                    ports: self.ports[v.index()],
                });
            }
        }
        self.used_ports[a.index()] += 1;
        self.used_ports[b.index()] += 1;
        Ok(self.graph.add_edge(a, b))
    }

    /// Finishes the build, verifying that every server has exactly one link.
    pub fn build(self) -> Result<Network, TopologyError> {
        for i in self.num_switches..self.graph.node_count() {
            let deg = self.graph.degree(NodeId(i as u32));
            if deg != 1 {
                return Err(TopologyError::BadServerDegree {
                    node: i as u32,
                    degree: deg,
                });
            }
        }
        Ok(Network {
            graph: self.graph,
            kinds: self.kinds,
            pods: self.pods,
            ports: self.ports,
            num_switches: self.num_switches,
            name: self.name,
        })
    }
}

/// A logical data center topology: switches, servers, links.
///
/// Produced by the topology constructors in this crate and by
/// `ft-core`'s flat-tree materialization; consumed by metrics, routing, the
/// flow solvers and the simulator.
#[derive(Clone)]
pub struct Network {
    graph: Graph,
    kinds: Vec<DeviceKind>,
    pods: Vec<Option<u32>>,
    ports: Vec<u32>,
    num_switches: usize,
    name: String,
}

impl Network {
    /// The underlying multigraph (switches and servers).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the underlying graph, for failure injection
    /// (removing/restoring links). Structural edits that violate the layout
    /// invariants are the caller's responsibility.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Descriptive name (e.g. `"fat-tree(k=8)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the descriptive name. Constructors use this to attach a
    /// friendlier label than the builder default.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of switch nodes; their ids are `0..num_switches`.
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Number of server nodes; their ids are `num_switches..node_count`.
    pub fn num_servers(&self) -> usize {
        self.graph.node_count() - self.num_switches
    }

    /// Device kind of a node.
    pub fn kind(&self, v: NodeId) -> DeviceKind {
        self.kinds[v.index()]
    }

    /// Pod a node belongs to, if any (core and random-graph switches have
    /// none).
    pub fn pod(&self, v: NodeId) -> Option<u32> {
        self.pods[v.index()]
    }

    /// Port budget of a node.
    pub fn ports(&self, v: NodeId) -> u32 {
        self.ports[v.index()]
    }

    /// Whether the node is a server.
    pub fn is_server(&self, v: NodeId) -> bool {
        self.kinds[v.index()] == DeviceKind::Server
    }

    /// Iterates over all server node ids.
    pub fn servers(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.num_switches as u32..self.graph.node_count() as u32).map(NodeId)
    }

    /// Iterates over all switch node ids.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_switches as u32).map(NodeId)
    }

    /// The switch a server is attached to.
    ///
    /// # Panics
    /// Panics if `s` is not a server or is detached (cannot happen for
    /// builder-validated networks unless its uplink was removed; failure
    /// scenarios should use [`Network::try_attachment`]).
    pub fn attachment(&self, s: NodeId) -> NodeId {
        self.try_attachment(s).expect("server is detached")
    }

    /// The switch a server is attached to, or `None` if its uplink was
    /// removed (failure injection).
    pub fn try_attachment(&self, s: NodeId) -> Option<NodeId> {
        debug_assert!(self.is_server(s), "{s:?} is not a server");
        self.graph.neighbors(s).next().map(|(sw, _)| sw)
    }

    /// Servers attached to each switch: entry `i` lists the servers on
    /// switch `i`.
    /// Servers whose uplink has been removed (failure injection) are
    /// skipped.
    pub fn servers_per_switch(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.num_switches];
        for s in self.servers() {
            if let Some(sw) = self.try_attachment(s) {
                out[sw.index()].push(s);
            }
        }
        out
    }

    /// Number of servers attached to each switch.
    /// Detached servers (removed uplinks) are skipped.
    pub fn server_counts(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.num_switches];
        for s in self.servers() {
            if let Some(sw) = self.try_attachment(s) {
                out[sw.index()] += 1;
            }
        }
        out
    }

    /// A compact switch-only copy of the graph: node `i` of the result is
    /// switch `i` of this network; only switch–switch links are retained
    /// (including multiplicity).
    pub fn switch_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_switches);
        for (_, a, b) in self.graph.edges() {
            if a.index() < self.num_switches && b.index() < self.num_switches {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// An **id-preserving** switch-only view: node and edge ids mean the
    /// same thing as in the full network graph (the layout is
    /// switches-first, so switch ids survive [`Graph::prefix_subgraph`]
    /// unchanged), with server uplinks tombstoned.
    ///
    /// Unlike [`Network::switch_graph`] — which renumbers edges and is
    /// therefore only safe on a never-mutated network — paths computed on
    /// this view name the network's own edges, which is what lets the DES
    /// simulator remove/restore/add links on both in lockstep during
    /// failures and zone conversions.
    pub fn switch_view(&self) -> Graph {
        self.graph.prefix_subgraph(self.num_switches)
    }

    /// Equipment inventory, for cross-topology equivalence assertions.
    pub fn equipment(&self) -> Equipment {
        Equipment {
            switches: self.num_switches,
            servers: self.num_servers(),
            links: self.graph.edge_count(),
            total_switch_ports: self.switches().map(|v| self.ports[v.index()] as u64).sum(),
        }
    }

    /// Number of switch–switch links (excluding server uplinks).
    pub fn switch_link_count(&self) -> usize {
        self.graph
            .edges()
            .filter(|&(_, a, b)| a.index() < self.num_switches && b.index() < self.num_switches)
            .count()
    }

    /// Re-checks all structural invariants (port budgets, server degree,
    /// no server–server links). Useful after manual graph edits.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for v in self.graph.nodes() {
            let deg = self.graph.degree(v) as u32;
            if deg > self.ports[v.index()] {
                return Err(TopologyError::PortExhausted {
                    node: v.0,
                    ports: self.ports[v.index()],
                });
            }
            if self.is_server(v) && deg != 1 {
                return Err(TopologyError::BadServerDegree {
                    node: v.0,
                    degree: deg as usize,
                });
            }
        }
        for (_, a, b) in self.graph.edges() {
            if self.is_server(a) && self.is_server(b) {
                return Err(TopologyError::ServerToServerLink(a.0, b.0));
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network({}: {} switches, {} servers, {} links)",
            self.name,
            self.num_switches,
            self.num_servers(),
            self.graph.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        // two switches, two servers
        let mut b = NetworkBuilder::new("tiny");
        let s0 = b.add_switch(DeviceKind::Edge, 4, Some(0)).unwrap();
        let s1 = b.add_switch(DeviceKind::Core, 4, None).unwrap();
        b.add_link(s0, s1).unwrap();
        let h0 = b.add_server(Some(0));
        let h1 = b.add_server(Some(0));
        b.add_link(h0, s0).unwrap();
        b.add_link(h1, s1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn switch_view_preserves_network_ids() {
        let mut n = tiny();
        let view = n.switch_view();
        assert_eq!(view.node_count(), 2);
        assert_eq!(view.edge_id_bound(), n.graph().edge_id_bound());
        // exactly the switch-switch link survives, under its network id
        let live: Vec<_> = view.edges().collect();
        assert_eq!(live.len(), 1);
        let (e, a, b) = live[0];
        assert!(n.graph().edge_alive(e));
        assert_eq!(n.graph().endpoints(e), (a, b));
        // a removal in the network is visible in a fresh view, same id
        n.graph_mut().remove_edge(e);
        assert_eq!(n.switch_view().edge_count(), 0);
    }

    #[test]
    fn basic_accessors() {
        let n = tiny();
        assert_eq!(n.num_switches(), 2);
        assert_eq!(n.num_servers(), 2);
        assert_eq!(n.kind(NodeId(0)), DeviceKind::Edge);
        assert_eq!(n.kind(NodeId(2)), DeviceKind::Server);
        assert_eq!(n.pod(NodeId(0)), Some(0));
        assert_eq!(n.pod(NodeId(1)), None);
        assert!(n.is_server(NodeId(3)));
        assert_eq!(n.attachment(NodeId(2)), NodeId(0));
        assert_eq!(n.attachment(NodeId(3)), NodeId(1));
        assert_eq!(n.server_counts(), vec![1, 1]);
        n.validate().unwrap();
    }

    #[test]
    fn switch_graph_excludes_servers() {
        let n = tiny();
        let sg = n.switch_graph();
        assert_eq!(sg.node_count(), 2);
        assert_eq!(sg.edge_count(), 1);
    }

    #[test]
    fn equipment_counts() {
        let n = tiny();
        let eq = n.equipment();
        assert_eq!(eq.switches, 2);
        assert_eq!(eq.servers, 2);
        assert_eq!(eq.links, 3);
        assert_eq!(eq.total_switch_ports, 8);
        assert_eq!(n.switch_link_count(), 1);
    }

    #[test]
    fn port_budget_enforced() {
        let mut b = NetworkBuilder::new("x");
        let s0 = b.add_switch(DeviceKind::Generic, 1, None).unwrap();
        let s1 = b.add_switch(DeviceKind::Generic, 2, None).unwrap();
        b.add_link(s0, s1).unwrap();
        assert_eq!(
            b.add_link(s0, s1),
            Err(TopologyError::PortExhausted { node: 0, ports: 1 })
        );
    }

    #[test]
    fn switch_after_server_rejected() {
        let mut b = NetworkBuilder::new("x");
        b.add_server(None);
        assert_eq!(
            b.add_switch(DeviceKind::Core, 4, None).unwrap_err(),
            TopologyError::SwitchAfterServer
        );
    }

    #[test]
    fn self_link_rejected() {
        let mut b = NetworkBuilder::new("x");
        let s = b.add_switch(DeviceKind::Core, 4, None).unwrap();
        assert_eq!(b.add_link(s, s), Err(TopologyError::SelfLink(0)));
    }

    #[test]
    fn server_server_link_rejected() {
        let mut b = NetworkBuilder::new("x");
        let _s = b.add_switch(DeviceKind::Core, 4, None).unwrap();
        let h0 = b.add_server(None);
        let h1 = b.add_server(None);
        assert_eq!(
            b.add_link(h0, h1),
            Err(TopologyError::ServerToServerLink(1, 2))
        );
    }

    #[test]
    fn detached_server_rejected_at_build() {
        let mut b = NetworkBuilder::new("x");
        let _s = b.add_switch(DeviceKind::Core, 4, None).unwrap();
        let _h = b.add_server(None);
        assert!(matches!(
            b.build(),
            Err(TopologyError::BadServerDegree { degree: 0, .. })
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = NetworkBuilder::new("x");
        let s = b.add_switch(DeviceKind::Core, 4, None).unwrap();
        assert_eq!(b.add_link(s, NodeId(9)), Err(TopologyError::NoSuchNode(9)));
    }

    #[test]
    fn parallel_switch_links_allowed() {
        let mut b = NetworkBuilder::new("x");
        let a = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        let c = b.add_switch(DeviceKind::Generic, 4, None).unwrap();
        b.add_link(a, c).unwrap();
        b.add_link(a, c).unwrap();
        let n = b.build().unwrap();
        assert_eq!(n.switch_link_count(), 2);
        n.validate().unwrap();
    }

    #[test]
    fn validate_catches_manual_damage() {
        let mut n = tiny();
        // remove the server 2 uplink
        let uplink = n
            .graph()
            .edges()
            .find(|&(_, a, b)| a == NodeId(2) || b == NodeId(2))
            .map(|(e, _, _)| e)
            .unwrap();
        n.graph_mut().remove_edge(uplink);
        assert!(matches!(
            n.validate(),
            Err(TopologyError::BadServerDegree { degree: 0, .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = TopologyError::PortExhausted { node: 3, ports: 8 };
        assert!(e.to_string().contains("8-port"));
        let e = TopologyError::BadParameters("k must be even".into());
        assert!(e.to_string().contains("k must be even"));
    }
}
