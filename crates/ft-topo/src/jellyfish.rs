//! Jellyfish-style random graphs (Singla et al., NSDI'12).
//!
//! The paper's "random graph" baseline is a Jellyfish network built from the
//! *same equipment* as the fat-tree under test (§3.1): `5k²/4` switches of
//! `k` ports each and `k³/4` servers. Servers are spread as evenly as
//! possible over the switches; the remaining ports form a uniform random
//! (near-)regular simple graph using the standard Jellyfish incremental
//! construction with pair-swap completion.

use crate::network::{DeviceKind, Network, NetworkBuilder, TopologyError};
use ft_graph::NodeId;
use rand::prelude::*;
use std::collections::HashSet;

/// Parameters of a Jellyfish random graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct JellyfishParams {
    /// Number of switches.
    pub switches: usize,
    /// Ports per switch.
    pub ports: u32,
    /// Total servers, spread as evenly as possible.
    pub servers: usize,
}

impl JellyfishParams {
    /// Equipment-equivalent parameters for a fat-tree of parameter `k`.
    pub fn matching_fat_tree(k: usize) -> Result<Self, TopologyError> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(TopologyError::BadParameters(format!(
                "fat-tree parameter k must be even and ≥ 2, got {k}"
            )));
        }
        Ok(JellyfishParams {
            switches: 5 * k * k / 4,
            ports: k as u32,
            servers: k * k * k / 4,
        })
    }

    /// Servers attached to each switch: the first `servers % switches`
    /// switches take `⌈servers/switches⌉`, the rest `⌊servers/switches⌋`.
    pub fn servers_on(&self, switch: usize) -> usize {
        let base = self.servers / self.switches;
        let extra = self.servers % self.switches;
        if switch < extra {
            base + 1
        } else {
            base
        }
    }

    fn validate(&self) -> Result<(), TopologyError> {
        if self.switches == 0 {
            return Err(TopologyError::BadParameters("need ≥ 1 switch".into()));
        }
        let max_servers = self.servers_on(0);
        if max_servers as u32 >= self.ports {
            return Err(TopologyError::BadParameters(format!(
                "{} servers on a {}-port switch leaves no network ports",
                max_servers, self.ports
            )));
        }
        Ok(())
    }
}

/// Builds a random simple graph over `n` nodes where node `i` has at most
/// `degrees[i]` incident edges, using the Jellyfish procedure: repeatedly
/// join random non-adjacent pairs with free ports; when blocked with one
/// node `x` holding ≥ 2 free ports, break a random existing edge `(u, v)`
/// (with `u, v` both non-adjacent to `x`) and rewire as `(x,u)`, `(x,v)`.
///
/// Returns the edge list. A small number of ports may remain unused when
/// completion is impossible (e.g. an odd total of free ports) — Jellyfish
/// tolerates spare ports, and so do we.
pub fn random_graph_with_degrees(degrees: &[u32], rng: &mut StdRng) -> Vec<(u32, u32)> {
    let n = degrees.len();
    let mut free: Vec<u32> = degrees.to_vec();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut adj: HashSet<(u32, u32)> = HashSet::new();
    let norm = |a: u32, b: u32| (a.min(b), a.max(b));

    // Phase 1: random incremental joining.
    // Keep a pool of nodes with free ports; resample with bounded retries,
    // falling back to an exhaustive scan for correctness on small graphs.
    loop {
        let candidates: Vec<u32> = (0..n as u32).filter(|&v| free[v as usize] > 0).collect();
        let total_free: u32 = candidates.iter().map(|&v| free[v as usize]).sum();
        if total_free < 2 {
            break; // at most one spare port; nothing more to wire
        }
        if candidates.len() >= 2 {
            // bounded random sampling
            let mut joined = false;
            for _ in 0..64 {
                let a = candidates[rng.random_range(0..candidates.len())];
                let b = candidates[rng.random_range(0..candidates.len())];
                if a != b && !adj.contains(&norm(a, b)) {
                    adj.insert(norm(a, b));
                    edges.push((a, b));
                    free[a as usize] -= 1;
                    free[b as usize] -= 1;
                    joined = true;
                    break;
                }
            }
            if joined {
                continue;
            }
            // exhaustive scan for any valid pair
            let mut found = None;
            'scan: for (i, &a) in candidates.iter().enumerate() {
                for &b in &candidates[i + 1..] {
                    if !adj.contains(&norm(a, b)) {
                        found = Some((a, b));
                        break 'scan;
                    }
                }
            }
            if let Some((a, b)) = found {
                adj.insert(norm(a, b));
                edges.push((a, b));
                free[a as usize] -= 1;
                free[b as usize] -= 1;
                continue;
            }
        }
        // Phase 2: pair-swap completion. Some node x has free ports but all
        // its non-neighbors are saturated. While x has ≥ 2 free ports, break
        // a random edge (u, v) disjoint from x's neighborhood and rewire.
        let mut progressed = false;
        for &x in &candidates {
            while free[x as usize] >= 2 {
                let swap = pick_swappable_edge(&edges, &adj, x, rng);
                let Some(idx) = swap else { break };
                let (u, v) = edges.swap_remove(idx);
                adj.remove(&norm(u, v));
                adj.insert(norm(x, u));
                adj.insert(norm(x, v));
                edges.push((x, u));
                edges.push((x, v));
                free[x as usize] -= 2;
                progressed = true;
            }
        }
        if progressed {
            continue;
        }
        // Phase 3: 2-opt completion. Two distinct nodes u, v each hold one
        // free port but are already adjacent (phase 1 cannot join them) and
        // neither has ≥ 2 free ports (phase 2 cannot help). Break an edge
        // (a, b) disjoint from {u, v} and rewire as (u,a), (v,b) — degrees
        // of a and b are unchanged, u and v each gain one edge.
        'outer: for (ci, &u) in candidates.iter().enumerate() {
            for &v in &candidates[ci + 1..] {
                for idx in 0..edges.len() {
                    let (a, bb) = edges[idx];
                    if a == u || a == v || bb == u || bb == v {
                        continue;
                    }
                    let (x, y) = if !adj.contains(&norm(u, a)) && !adj.contains(&norm(v, bb)) {
                        (a, bb)
                    } else if !adj.contains(&norm(u, bb)) && !adj.contains(&norm(v, a)) {
                        (bb, a)
                    } else {
                        continue;
                    };
                    edges.swap_remove(idx);
                    adj.remove(&norm(a, bb));
                    adj.insert(norm(u, x));
                    adj.insert(norm(v, y));
                    edges.push((u, x));
                    edges.push((v, y));
                    free[u as usize] -= 1;
                    free[v as usize] -= 1;
                    progressed = true;
                    break 'outer;
                }
            }
        }
        if !progressed {
            break; // spare ports remain; acceptable
        }
    }
    edges
}

/// Finds a random edge `(u, v)` such that neither endpoint equals or is
/// adjacent to `x`. Returns its index in `edges`.
fn pick_swappable_edge(
    edges: &[(u32, u32)],
    adj: &HashSet<(u32, u32)>,
    x: u32,
    rng: &mut StdRng,
) -> Option<usize> {
    let norm = |a: u32, b: u32| (a.min(b), a.max(b));
    let ok = |&(u, v): &(u32, u32)| {
        u != x && v != x && !adj.contains(&norm(x, u)) && !adj.contains(&norm(x, v))
    };
    // bounded random probes, then exhaustive
    for _ in 0..64 {
        if edges.is_empty() {
            return None;
        }
        let i = rng.random_range(0..edges.len());
        if ok(&edges[i]) {
            return Some(i);
        }
    }
    edges.iter().position(ok)
}

/// Builds a Jellyfish random-graph network.
///
/// Deterministic for a given `seed`.
pub fn jellyfish(params: JellyfishParams, seed: u64) -> Result<Network, TopologyError> {
    params.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(format!(
        "jellyfish(switches={}, ports={}, servers={}, seed={seed})",
        params.switches, params.ports, params.servers
    ));
    for _ in 0..params.switches {
        b.add_switch(DeviceKind::Generic, params.ports, None)?;
    }
    let degrees: Vec<u32> = (0..params.switches)
        .map(|i| params.ports - params.servers_on(i) as u32)
        .collect();
    for (u, v) in random_graph_with_degrees(&degrees, &mut rng) {
        b.add_link(NodeId(u), NodeId(v))?;
    }
    for i in 0..params.switches {
        for _ in 0..params.servers_on(i) {
            let s = b.add_server(None);
            b.add_link(s, NodeId(i as u32))?;
        }
    }
    b.build()
}

/// Jellyfish with the same equipment as `fat_tree(k)`.
pub fn jellyfish_matching_fat_tree(k: usize, seed: u64) -> Result<Network, TopologyError> {
    let params = JellyfishParams::matching_fat_tree(k)?;
    let mut net = jellyfish(params, seed)?;
    net.set_name(format!("random-graph(k={k}, seed={seed})"));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::fat_tree;
    use ft_graph::stats::is_connected;

    #[test]
    fn equipment_matches_fat_tree() {
        for k in [4, 6, 8] {
            let ft = fat_tree(k).unwrap();
            let jf = jellyfish_matching_fat_tree(k, 7).unwrap();
            let (a, b) = (ft.equipment(), jf.equipment());
            assert_eq!(a.switches, b.switches, "k = {k}");
            assert_eq!(a.servers, b.servers, "k = {k}");
            assert_eq!(a.total_switch_ports, b.total_switch_ports, "k = {k}");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = jellyfish_matching_fat_tree(6, 42).unwrap();
        let b = jellyfish_matching_fat_tree(6, 42).unwrap();
        assert_eq!(a.graph().canonical_edges(), b.graph().canonical_edges());
        let c = jellyfish_matching_fat_tree(6, 43).unwrap();
        assert_ne!(a.graph().canonical_edges(), c.graph().canonical_edges());
    }

    #[test]
    fn connected_and_port_respecting() {
        for seed in 0..5 {
            let n = jellyfish_matching_fat_tree(8, seed).unwrap();
            n.validate().unwrap();
            assert!(
                is_connected(n.graph()),
                "seed {seed} produced a disconnected graph"
            );
        }
    }

    #[test]
    fn simple_graph_no_duplicate_switch_links() {
        let n = jellyfish_matching_fat_tree(6, 3).unwrap();
        let mut seen = HashSet::new();
        for (_, a, b) in n.graph().edges() {
            if a.index() < n.num_switches() && b.index() < n.num_switches() {
                let key = (a.0.min(b.0), a.0.max(b.0));
                assert!(seen.insert(key), "duplicate link {key:?}");
            }
        }
    }

    #[test]
    fn server_distribution_even() {
        let p = JellyfishParams::matching_fat_tree(8).unwrap();
        let n = jellyfish(p, 1).unwrap();
        let counts = n.server_counts();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max - min <= 1, "spread {min}..{max}");
        assert_eq!(counts.iter().sum::<u32>() as usize, p.servers);
    }

    #[test]
    fn nearly_all_ports_used() {
        // Jellyfish may leave a few spare ports; for these sizes the
        // construction should complete fully or nearly so.
        let n = jellyfish_matching_fat_tree(8, 11).unwrap();
        let total_ports: u32 = 8 * n.num_switches() as u32;
        let used: u32 = 2 * n.switch_link_count() as u32 + n.num_servers() as u32;
        assert!(
            total_ports - used <= 2,
            "too many spare ports: {}",
            total_ports - used
        );
    }

    #[test]
    fn random_graph_with_degrees_regular() {
        let mut rng = StdRng::seed_from_u64(5);
        let degrees = vec![3u32; 16];
        let edges = random_graph_with_degrees(&degrees, &mut rng);
        assert_eq!(edges.len(), 16 * 3 / 2);
        let mut deg = [0u32; 16];
        let mut seen = HashSet::new();
        for &(u, v) in &edges {
            assert_ne!(u, v, "self-loop");
            assert!(seen.insert((u.min(v), u.max(v))), "duplicate edge");
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d == 3));
    }

    #[test]
    fn random_graph_odd_total_leaves_spare() {
        let mut rng = StdRng::seed_from_u64(5);
        // sum of degrees is odd → one port must stay free
        let degrees = vec![1u32, 1, 1];
        let edges = random_graph_with_degrees(&degrees, &mut rng);
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn rejects_too_many_servers() {
        let p = JellyfishParams {
            switches: 4,
            ports: 4,
            servers: 16,
        };
        assert!(jellyfish(p, 0).is_err());
    }

    #[test]
    fn zero_servers_pure_switch_fabric() {
        let p = JellyfishParams {
            switches: 10,
            ports: 4,
            servers: 0,
        };
        let n = jellyfish(p, 2).unwrap();
        assert_eq!(n.num_servers(), 0);
        assert_eq!(n.switch_link_count(), 10 * 4 / 2);
    }
}
