//! The k-ary fat-tree (Al-Fares et al., SIGCOMM'08) and the generic 3-layer
//! Clos parameterization used by the paper's Pod notation (§2.2).
//!
//! The paper describes flat-tree over a *generic* Clos Pod with `d` edge
//! switches, `d/r` aggregation switches and `h` uplinks per aggregation
//! switch, but evaluates on fat-tree (`d = k/2`, `r = 1`, `h = k/2`,
//! `k/2` servers per edge switch, `k` Pods) because fat-tree is the
//! upper-bound "stress test" for Clos performance. [`FatTreeLayout`] owns
//! the node-id assignment for this family so that `ft-core` can build
//! flat-tree networks whose Clos mode is *bit-identical* to [`fat_tree`].

use crate::network::{DeviceKind, Network, NetworkBuilder, TopologyError};
use ft_graph::NodeId;
use std::ops::Range;

/// Parameters of a 3-layer Clos network in the paper's Pod notation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct ClosParams {
    /// Number of Pods.
    pub pods: usize,
    /// Edge switches per Pod (`d`).
    pub d: usize,
    /// Edge switches per aggregation switch (`r`); `d % r == 0`.
    pub r: usize,
    /// Core-facing uplinks per aggregation switch (`h`); `h % r == 0`.
    pub h: usize,
    /// Servers attached to each edge switch.
    pub servers_per_edge: usize,
}

impl ClosParams {
    /// The fat-tree special case for switch port count `k` (must be even,
    /// ≥ 2): `k` Pods of `k/2` edge + `k/2` aggregation switches, `k/2`
    /// servers per edge switch, `k²/4` core switches.
    pub fn fat_tree(k: usize) -> Result<Self, TopologyError> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(TopologyError::BadParameters(format!(
                "fat-tree parameter k must be even and ≥ 2, got {k}"
            )));
        }
        Ok(ClosParams {
            pods: k,
            d: k / 2,
            r: 1,
            h: k / 2,
            servers_per_edge: k / 2,
        })
    }

    /// Validates divisibility and positivity requirements.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let bad = |msg: String| Err(TopologyError::BadParameters(msg));
        if self.pods == 0 || self.d == 0 || self.r == 0 || self.h == 0 || self.servers_per_edge == 0
        {
            return bad("all Clos parameters must be positive".into());
        }
        if !self.d.is_multiple_of(self.r) {
            return bad(format!(
                "d = {} must be divisible by r = {}",
                self.d, self.r
            ));
        }
        if !self.h.is_multiple_of(self.r) {
            return bad(format!(
                "h = {} must be divisible by r = {}",
                self.h, self.r
            ));
        }
        Ok(())
    }

    /// Aggregation switches per Pod (`d/r`).
    pub fn aggs_per_pod(&self) -> usize {
        self.d / self.r
    }

    /// Core switches (`d · h / r`, one group of `h/r` per edge index).
    pub fn cores(&self) -> usize {
        self.d * self.h / self.r
    }

    /// Cores in the group serving edge index `j` (the flat-tree grouping of
    /// §2.3: consecutive `h/r` cores per edge index).
    pub fn core_group(&self, j: usize) -> Range<usize> {
        let g = self.h / self.r;
        j * g..(j + 1) * g
    }

    /// Size of each edge-index core group (`h/r`).
    pub fn group_size(&self) -> usize {
        self.h / self.r
    }

    /// Port budget of an edge switch (servers + uplinks to every agg).
    pub fn edge_ports(&self) -> u32 {
        (self.servers_per_edge + self.aggs_per_pod()) as u32
    }

    /// Port budget of an aggregation switch (`d` downlinks + `h` uplinks).
    pub fn agg_ports(&self) -> u32 {
        (self.d + self.h) as u32
    }

    /// Port budget of a core switch (one link per Pod).
    pub fn core_ports(&self) -> u32 {
        self.pods as u32
    }

    /// Total switches.
    pub fn switches(&self) -> usize {
        self.cores() + self.pods * (self.d + self.aggs_per_pod())
    }

    /// Total servers.
    pub fn servers(&self) -> usize {
        self.pods * self.d * self.servers_per_edge
    }
}

/// Node-id layout of the Clos/fat-tree family, shared between [`fat_tree`]
/// and `ft-core`'s flat-tree so that both use identical ids:
///
/// * cores: `0 .. cores`
/// * Pod `p` edge `j`: `cores + p·(d + d/r) + j`
/// * Pod `p` agg `a`: `cores + p·(d + d/r) + d + a`
/// * server `(p, j, slot)`: `switches + p·d·spe + j·spe + slot`
#[derive(Clone, Copy, Debug)]
pub struct FatTreeLayout {
    /// The Clos parameters this layout is derived from.
    pub params: ClosParams,
}

impl FatTreeLayout {
    /// Creates a layout after validating the parameters.
    pub fn new(params: ClosParams) -> Result<Self, TopologyError> {
        params.validate()?;
        Ok(FatTreeLayout { params })
    }

    /// Node id of core switch `c`.
    pub fn core(&self, c: usize) -> NodeId {
        debug_assert!(c < self.params.cores());
        NodeId(c as u32)
    }

    /// Node id of edge switch `j` in Pod `p`.
    pub fn edge(&self, p: usize, j: usize) -> NodeId {
        let pr = &self.params;
        debug_assert!(p < pr.pods && j < pr.d);
        NodeId((pr.cores() + p * (pr.d + pr.aggs_per_pod()) + j) as u32)
    }

    /// Node id of aggregation switch `a` in Pod `p`.
    pub fn agg(&self, p: usize, a: usize) -> NodeId {
        let pr = &self.params;
        debug_assert!(p < pr.pods && a < pr.aggs_per_pod());
        NodeId((pr.cores() + p * (pr.d + pr.aggs_per_pod()) + pr.d + a) as u32)
    }

    /// The aggregation switch paired with edge `j` (the paper's `A_{j/r}`).
    pub fn agg_of_edge(&self, p: usize, j: usize) -> NodeId {
        self.agg(p, j / self.params.r)
    }

    /// Node id of server `slot` on edge `j` of Pod `p`.
    pub fn server(&self, p: usize, j: usize, slot: usize) -> NodeId {
        let pr = &self.params;
        debug_assert!(p < pr.pods && j < pr.d && slot < pr.servers_per_edge);
        NodeId(
            (pr.switches() + p * pr.d * pr.servers_per_edge + j * pr.servers_per_edge + slot)
                as u32,
        )
    }

    /// Inverse of [`FatTreeLayout::server`]: Pod, edge index and slot of a
    /// server node.
    pub fn server_coords(&self, s: NodeId) -> (usize, usize, usize) {
        let pr = &self.params;
        let idx = s.index() - pr.switches();
        let per_pod = pr.d * pr.servers_per_edge;
        (
            idx / per_pod,
            (idx % per_pod) / pr.servers_per_edge,
            idx % pr.servers_per_edge,
        )
    }

    /// Adds all switches and servers (no links) to a builder, in layout
    /// order. Returns an error only on internal budget violations.
    pub fn add_devices(&self, b: &mut NetworkBuilder) -> Result<(), TopologyError> {
        let pr = &self.params;
        for _ in 0..pr.cores() {
            b.add_switch(DeviceKind::Core, pr.core_ports(), None)?;
        }
        for p in 0..pr.pods {
            for _ in 0..pr.d {
                b.add_switch(DeviceKind::Edge, pr.edge_ports(), Some(p as u32))?;
            }
            for _ in 0..pr.aggs_per_pod() {
                b.add_switch(DeviceKind::Aggregation, pr.agg_ports(), Some(p as u32))?;
            }
        }
        for p in 0..pr.pods {
            for _ in 0..pr.d * pr.servers_per_edge {
                b.add_server(Some(p as u32));
            }
        }
        Ok(())
    }

    /// Adds the intra-Pod links every member of the family shares: the
    /// complete bipartite edge–aggregation mesh (these links are never
    /// broken by converter switches).
    pub fn add_edge_agg_mesh(&self, b: &mut NetworkBuilder) -> Result<(), TopologyError> {
        let pr = &self.params;
        for p in 0..pr.pods {
            for j in 0..pr.d {
                for a in 0..pr.aggs_per_pod() {
                    b.add_link(self.edge(p, j), self.agg(p, a))?;
                }
            }
        }
        Ok(())
    }
}

/// Builds the classic Clos network for the given parameters.
///
/// Wiring follows the paper's Figure 4a: aggregation switch `a` of every Pod
/// connects to the same group of `h` consecutive core switches
/// `[a·h, (a+1)·h)`. For `r = 1` (fat-tree) this coincides with the
/// flat-tree edge-index grouping, which is what makes flat-tree's Clos mode
/// reproduce [`fat_tree`] exactly.
pub fn clos(params: ClosParams) -> Result<Network, TopologyError> {
    let layout = FatTreeLayout::new(params)?;
    let pr = &layout.params;
    let mut b = NetworkBuilder::new(format!(
        "clos(pods={}, d={}, r={}, h={}, spe={})",
        pr.pods, pr.d, pr.r, pr.h, pr.servers_per_edge
    ));
    layout.add_devices(&mut b)?;
    layout.add_edge_agg_mesh(&mut b)?;
    // aggregation → core: Figure 4a grouping by aggregation index
    for p in 0..pr.pods {
        for a in 0..pr.aggs_per_pod() {
            for u in 0..pr.h {
                b.add_link(layout.agg(p, a), layout.core(a * pr.h + u))?;
            }
        }
    }
    // edge → server
    for p in 0..pr.pods {
        for j in 0..pr.d {
            for s in 0..pr.servers_per_edge {
                b.add_link(layout.server(p, j, s), layout.edge(p, j))?;
            }
        }
    }
    b.build()
}

/// Builds the k-ary fat-tree.
///
/// `k` must be even and ≥ 2. The result has `5k²/4` switches of `k` ports
/// and `k³/4` servers.
pub fn fat_tree(k: usize) -> Result<Network, TopologyError> {
    let params = ClosParams::fat_tree(k)?;
    let mut net = clos(params)?;
    net.set_name(format!("fat-tree(k={k})"));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::stats::{degree_histogram, is_connected};

    #[test]
    fn fat_tree_k4_counts() {
        let n = fat_tree(4).unwrap();
        assert_eq!(n.num_switches(), 20); // 4 cores + 4 pods × 4
        assert_eq!(n.num_servers(), 16);
        // links: 16 server + 16 edge-agg + 16 agg-core
        assert_eq!(n.graph().edge_count(), 48);
        n.validate().unwrap();
        assert!(is_connected(n.graph()));
    }

    #[test]
    fn fat_tree_k8_every_switch_uses_all_ports() {
        let n = fat_tree(8).unwrap();
        for sw in n.switches() {
            assert_eq!(
                n.graph().degree(sw),
                8,
                "switch {sw:?} must use all k ports"
            );
        }
    }

    #[test]
    fn fat_tree_server_count_formula() {
        for k in [2, 4, 6, 8, 10] {
            let n = fat_tree(k).unwrap();
            assert_eq!(n.num_servers(), k * k * k / 4, "k = {k}");
            assert_eq!(n.num_switches(), 5 * k * k / 4, "k = {k}");
        }
    }

    #[test]
    fn fat_tree_rejects_odd_or_tiny_k() {
        assert!(fat_tree(3).is_err());
        assert!(fat_tree(0).is_err());
        assert!(fat_tree(7).is_err());
    }

    #[test]
    fn fat_tree_path_lengths() {
        use ft_graph::bfs_distances;
        let n = fat_tree(4).unwrap();
        let layout = FatTreeLayout::new(ClosParams::fat_tree(4).unwrap()).unwrap();
        // same edge switch: server-server = 2 hops
        let d = bfs_distances(n.graph(), layout.server(0, 0, 0));
        assert_eq!(d[layout.server(0, 0, 1).index()], 2);
        // same pod, different edge: 4 hops via aggregation
        assert_eq!(d[layout.server(0, 1, 0).index()], 4);
        // different pod: 6 hops via core
        assert_eq!(d[layout.server(1, 0, 0).index()], 6);
    }

    #[test]
    fn clos_oversubscribed() {
        // 4 pods, 4 edges per pod, 2 aggs (r = 2), 4 uplinks each (h = 4),
        // 6 servers per edge → oversubscription at the edge layer.
        let p = ClosParams {
            pods: 4,
            d: 4,
            r: 2,
            h: 4,
            servers_per_edge: 6,
        };
        let n = clos(p).unwrap();
        assert_eq!(n.num_switches(), p.switches());
        assert_eq!(n.num_servers(), 4 * 4 * 6);
        assert_eq!(p.cores(), 8);
        n.validate().unwrap();
        assert!(is_connected(n.graph()));
    }

    #[test]
    fn clos_invalid_divisibility() {
        let p = ClosParams {
            pods: 2,
            d: 3,
            r: 2,
            h: 4,
            servers_per_edge: 1,
        };
        assert!(clos(p).is_err());
        let p = ClosParams {
            pods: 2,
            d: 4,
            r: 2,
            h: 3,
            servers_per_edge: 1,
        };
        assert!(clos(p).is_err());
    }

    #[test]
    fn layout_ids_disjoint_and_dense() {
        let params = ClosParams::fat_tree(4).unwrap();
        let l = FatTreeLayout::new(params).unwrap();
        let mut seen = std::collections::HashSet::new();
        for c in 0..params.cores() {
            assert!(seen.insert(l.core(c)));
        }
        for p in 0..params.pods {
            for j in 0..params.d {
                assert!(seen.insert(l.edge(p, j)));
            }
            for a in 0..params.aggs_per_pod() {
                assert!(seen.insert(l.agg(p, a)));
            }
        }
        assert_eq!(seen.len(), params.switches());
        for p in 0..params.pods {
            for j in 0..params.d {
                for s in 0..params.servers_per_edge {
                    assert!(seen.insert(l.server(p, j, s)));
                }
            }
        }
        assert_eq!(seen.len(), params.switches() + params.servers());
        // dense: ids cover 0..total
        let max = seen.iter().map(|n| n.0).max().unwrap() as usize;
        assert_eq!(max + 1, seen.len());
    }

    #[test]
    fn server_coords_roundtrip() {
        let params = ClosParams::fat_tree(6).unwrap();
        let l = FatTreeLayout::new(params).unwrap();
        for p in 0..params.pods {
            for j in 0..params.d {
                for s in 0..params.servers_per_edge {
                    let node = l.server(p, j, s);
                    assert_eq!(l.server_coords(node), (p, j, s));
                }
            }
        }
    }

    #[test]
    fn agg_of_edge_respects_r() {
        let p = ClosParams {
            pods: 1,
            d: 4,
            r: 2,
            h: 2,
            servers_per_edge: 1,
        };
        let l = FatTreeLayout::new(p).unwrap();
        assert_eq!(l.agg_of_edge(0, 0), l.agg(0, 0));
        assert_eq!(l.agg_of_edge(0, 1), l.agg(0, 0));
        assert_eq!(l.agg_of_edge(0, 2), l.agg(0, 1));
        assert_eq!(l.agg_of_edge(0, 3), l.agg(0, 1));
    }

    #[test]
    fn degree_histogram_shape_k6() {
        let n = fat_tree(6).unwrap();
        let h = degree_histogram(n.graph());
        // servers have degree 1, every switch degree 6
        assert_eq!(h[1], n.num_servers());
        assert_eq!(h[6], n.num_switches());
    }

    #[test]
    fn core_group_partition() {
        let p = ClosParams::fat_tree(8).unwrap();
        let mut covered = vec![false; p.cores()];
        for j in 0..p.d {
            for c in p.core_group(j) {
                assert!(!covered[c], "core {c} in two groups");
                covered[c] = true;
            }
        }
        assert!(covered.iter().all(|&x| x));
    }
}
