//! The two-stage random graph baseline (paper §3.1, Figures 6 and 8).
//!
//! The paper describes it in one sentence: *"two-stage random graph … first
//! forms random graphs in each Pod with the same number of links as
//! flat-tree, and takes the Pods as super nodes to form another layer of
//! random graph together with core switches."* This module is the literal
//! reconstruction (documented in DESIGN.md):
//!
//! * **Stage 1** — within each Pod, the Pod's switches form a uniform random
//!   simple graph with exactly as many intra-Pod links as flat-tree retains
//!   (the Clos edge–aggregation mesh: `d · d/r` links per Pod), and the
//!   Pod's servers are spread evenly over its switches.
//! * **Stage 2** — Pods become super-nodes whose ports are their switches'
//!   remaining ports; together with the core switches they form a second
//!   random graph via a configuration-model port matching (Pod–Pod,
//!   Pod–core and core–core links all permitted, parallel super-links
//!   allowed since they land on distinct concrete switches). Each Pod stub
//!   is assigned to a concrete switch with free ports uniformly at random.

use crate::network::{DeviceKind, Network, NetworkBuilder, TopologyError};
use ft_graph::NodeId;
use rand::prelude::*;

/// Parameters of the two-stage random graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct TwoStageParams {
    /// Number of Pods.
    pub pods: usize,
    /// Switches per Pod.
    pub switches_per_pod: usize,
    /// Servers per Pod (spread evenly over its switches).
    pub servers_per_pod: usize,
    /// Intra-Pod random-graph links per Pod.
    pub intra_links: usize,
    /// Core switches.
    pub cores: usize,
    /// Ports per switch (Pod switches and cores alike).
    pub ports: u32,
}

impl TwoStageParams {
    /// Equipment-equivalent parameters for a fat-tree of parameter `k`,
    /// with the intra-Pod link budget flat-tree retains (`k²/4`).
    pub fn matching_fat_tree(k: usize) -> Result<Self, TopologyError> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(TopologyError::BadParameters(format!(
                "fat-tree parameter k must be even and ≥ 2, got {k}"
            )));
        }
        Ok(TwoStageParams {
            pods: k,
            switches_per_pod: k,
            servers_per_pod: k * k / 4,
            intra_links: k * k / 4,
            cores: k * k / 4,
            ports: k as u32,
        })
    }

    fn validate(&self) -> Result<(), TopologyError> {
        if self.pods == 0 || self.switches_per_pod == 0 {
            return Err(TopologyError::BadParameters("empty pod layout".into()));
        }
        // Rough feasibility: each pod switch must fit its servers plus its
        // share of intra links.
        let w = self.switches_per_pod;
        let max_servers = self.servers_per_pod.div_ceil(w);
        let max_intra = (2 * self.intra_links).div_ceil(w);
        if max_servers + max_intra > self.ports as usize {
            return Err(TopologyError::BadParameters(format!(
                "pod switches cannot fit {max_servers} servers + ~{max_intra} intra links in {} ports",
                self.ports
            )));
        }
        Ok(())
    }
}

/// Splits `total` into `n` parts as evenly as possible (first parts larger).
fn spread(total: usize, n: usize) -> Vec<usize> {
    let base = total / n;
    let extra = total % n;
    (0..n).map(|i| base + usize::from(i < extra)).collect()
}

/// Builds the two-stage random graph. Deterministic for a given `seed`.
pub fn two_stage_random_graph(params: TwoStageParams, seed: u64) -> Result<Network, TopologyError> {
    params.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let w = params.switches_per_pod;
    let mut b = NetworkBuilder::new(format!(
        "two-stage-rg(pods={}, w={w}, cores={}, seed={seed})",
        params.pods, params.cores
    ));

    // Cores first, then pod switches (keeps switch ids dense per pod).
    for _ in 0..params.cores {
        b.add_switch(DeviceKind::Core, params.ports, None)?;
    }
    let pod_switch = |p: usize, i: usize| NodeId((params.cores + p * w + i) as u32);
    for p in 0..params.pods {
        for _ in 0..w {
            b.add_switch(DeviceKind::Generic, params.ports, Some(p as u32))?;
        }
    }

    // Per-switch port accounting for stage 2.
    let mut ext_ports: Vec<Vec<u32>> = Vec::with_capacity(params.pods);

    // Stage 1: intra-pod random graphs + servers.
    let servers_per_switch = spread(params.servers_per_pod, w);
    // Target intra degrees: 2·intra_links spread evenly.
    let intra_deg = spread(2 * params.intra_links, w);
    for p in 0..params.pods {
        let degs: Vec<u32> = intra_deg.iter().map(|&d| d as u32).collect();
        let edges = crate::jellyfish::random_graph_with_degrees(&degs, &mut rng);
        let mut used = vec![0u32; w];
        for (u, v) in edges {
            b.add_link(pod_switch(p, u as usize), pod_switch(p, v as usize))?;
            used[u as usize] += 1;
            used[v as usize] += 1;
        }
        let ext: Vec<u32> = (0..w)
            .map(|i| params.ports - servers_per_switch[i] as u32 - used[i])
            .collect();
        ext_ports.push(ext);
    }

    // Stage 2: configuration-model matching over super-node stubs.
    // Stub encoding: 0..pods = pod super-nodes, pods..pods+cores = cores.
    let mut stubs: Vec<usize> = Vec::new();
    for (p, ext) in ext_ports.iter().enumerate() {
        let total: u32 = ext.iter().sum();
        stubs.extend(std::iter::repeat_n(p, total as usize));
    }
    for c in 0..params.cores {
        stubs.extend(std::iter::repeat_n(params.pods + c, params.ports as usize));
    }
    stubs.shuffle(&mut rng);
    // Resolve same-super-node pairs by swapping with a random other pair.
    let pairs = stubs.len() / 2;
    for _ in 0..10 * pairs.max(1) {
        let mut conflict = None;
        for i in 0..pairs {
            if stubs[2 * i] == stubs[2 * i + 1] {
                conflict = Some(i);
                break;
            }
        }
        let Some(i) = conflict else { break };
        let j = rng.random_range(0..pairs);
        if j != i && stubs[2 * j] != stubs[2 * i] && stubs[2 * j + 1] != stubs[2 * i + 1] {
            stubs.swap(2 * i + 1, 2 * j + 1);
        }
    }

    // Map super-node stubs to concrete switches.
    // For pods: pick a random switch with a free external port.
    let mut free_ext = ext_ports;
    let mut pick_switch = |p: usize, rng: &mut StdRng| -> NodeId {
        let free = &mut free_ext[p];
        let total: u32 = free.iter().sum();
        debug_assert!(total > 0, "pod {p} out of external ports");
        let mut t = rng.random_range(0..total);
        for (i, f) in free.iter_mut().enumerate() {
            if t < *f {
                *f -= 1;
                return pod_switch(p, i);
            }
            t -= *f;
        }
        unreachable!("stub accounting out of sync");
    };
    for i in 0..pairs {
        let (a, bb) = (stubs[2 * i], stubs[2 * i + 1]);
        if a == bb {
            continue; // unresolved conflict: leave both ports spare
        }
        let na = if a < params.pods {
            pick_switch(a, &mut rng)
        } else {
            NodeId((a - params.pods) as u32)
        };
        let nb = if bb < params.pods {
            pick_switch(bb, &mut rng)
        } else {
            NodeId((bb - params.pods) as u32)
        };
        b.add_link(na, nb)?;
    }

    // Servers last.
    for p in 0..params.pods {
        for (i, &cnt) in servers_per_switch.iter().enumerate() {
            for _ in 0..cnt {
                let s = b.add_server(Some(p as u32));
                b.add_link(s, pod_switch(p, i))?;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::fat_tree;
    use ft_graph::stats::is_connected;

    #[test]
    fn equipment_matches_fat_tree() {
        for k in [4, 6, 8] {
            let ft = fat_tree(k).unwrap();
            let ts =
                two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), 5).unwrap();
            let (a, b) = (ft.equipment(), ts.equipment());
            assert_eq!(a.switches, b.switches, "k = {k}");
            assert_eq!(a.servers, b.servers, "k = {k}");
            assert_eq!(a.total_switch_ports, b.total_switch_ports, "k = {k}");
        }
    }

    #[test]
    fn intra_pod_link_budget() {
        let k = 8;
        let n = two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), 3).unwrap();
        // count intra-pod links
        let mut intra = vec![0usize; k];
        for (_, a, b) in n.graph().edges() {
            if a.index() < n.num_switches() && b.index() < n.num_switches() {
                if let (Some(pa), Some(pb)) = (n.pod(a), n.pod(b)) {
                    if pa == pb {
                        intra[pa as usize] += 1;
                    }
                }
            }
        }
        for (p, &cnt) in intra.iter().enumerate() {
            assert_eq!(cnt, k * k / 4, "pod {p} intra links");
        }
    }

    #[test]
    fn connected_and_valid() {
        for seed in 0..4 {
            let n = two_stage_random_graph(TwoStageParams::matching_fat_tree(8).unwrap(), seed)
                .unwrap();
            n.validate().unwrap();
            assert!(is_connected(n.graph()), "seed {seed} disconnected");
        }
    }

    #[test]
    fn deterministic() {
        let p = TwoStageParams::matching_fat_tree(6).unwrap();
        let a = two_stage_random_graph(p, 9).unwrap();
        let b = two_stage_random_graph(p, 9).unwrap();
        assert_eq!(a.graph().canonical_edges(), b.graph().canonical_edges());
    }

    #[test]
    fn servers_evenly_spread_within_pods() {
        let n = two_stage_random_graph(TwoStageParams::matching_fat_tree(8).unwrap(), 1).unwrap();
        let counts = n.server_counts();
        // cores have no servers; pod switches have k/4 ± 1
        for (c, &cnt) in counts.iter().enumerate().take(16) {
            assert_eq!(cnt, 0, "core {c} must have no servers");
        }
        let pod_counts = &counts[16..];
        let min = pod_counts.iter().min().unwrap();
        let max = pod_counts.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn spread_helper() {
        assert_eq!(spread(10, 3), vec![4, 3, 3]);
        assert_eq!(spread(9, 3), vec![3, 3, 3]);
        assert_eq!(spread(0, 2), vec![0, 0]);
    }

    #[test]
    fn rejects_overfull_pods() {
        let p = TwoStageParams {
            pods: 2,
            switches_per_pod: 2,
            servers_per_pod: 6,
            intra_links: 4,
            cores: 1,
            ports: 4,
        };
        assert!(two_stage_random_graph(p, 0).is_err());
    }
}
