//! Data center topology models for the flat-tree reproduction.
//!
//! This crate owns the shared [`Network`] type — the logical topology every
//! other crate consumes — and the three baseline topologies the paper
//! evaluates against (§3.1):
//!
//! * [`fattree`] — the k-ary fat-tree of Al-Fares et al. (SIGCOMM'08), the
//!   special case of Clos the paper uses as its "stress test" baseline, plus
//!   a generic 3-layer Clos parameterization (`ClosParams`) matching the
//!   paper's Pod notation (d edge switches, d/r aggregation switches, h
//!   uplinks per aggregation switch).
//! * [`jellyfish`](mod@jellyfish) — the Jellyfish random graph (Singla et al., NSDI'12)
//!   built from the *same equipment* as a given fat-tree: same switch count,
//!   same port count, same server count.
//! * [`twostage`] — the two-stage random graph the paper compares against in
//!   Figures 6 and 8: per-Pod random graphs plus a second random graph over
//!   Pod super-nodes and core switches.
//! * [`export`] — Graphviz DOT and JSON export of any [`Network`].
//! * [`symmetry`] — verified automorphism classes over a [`Network`]'s
//!   switch graph and the symmetry-deduplicated APSP built on them
//!   (one BFS row per class; fat-trees collapse to k + 1 classes).
//!
//! All random constructions take explicit seeds and are fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod fattree;
pub mod jellyfish;
pub mod network;
pub mod symmetry;
pub mod twostage;

pub use fattree::{clos, fat_tree, ClosParams, FatTreeLayout};
pub use jellyfish::{jellyfish, jellyfish_matching_fat_tree, JellyfishParams};
pub use network::{DeviceKind, Equipment, Network, NetworkBuilder, TopologyError};
pub use symmetry::{ColMap, DedupedApsp, SymmetryClasses};
pub use twostage::{two_stage_random_graph, TwoStageParams};
