//! Switch-graph symmetry: equivalence classes of automorphic sources and
//! the deduplicated APSP built on them.
//!
//! A fat-tree is massively symmetric: every edge switch in a Pod sees the
//! same aggregation switches, Pods are interchangeable wholesale, and core
//! switches in the same column attach to the same aggregation index of
//! every Pod. Two switches `u, v` related by a graph automorphism `σ` with
//! `σ(u) = v` have *permuted-identical* distance rows — `dist(u, w) =
//! dist(v, σ(w))` — so the all-pairs table only needs one BFS per
//! equivalence class instead of one per switch. At k = 128 that is 129
//! representative rows instead of 20,480 (1 edge + 64 aggregation + 64
//! core classes), which is what makes k = 128 distance tables tractable
//! (DESIGN.md §15).
//!
//! Two *verified* mechanisms compose, and nothing is assumed from naming:
//!
//! 1. **Identical-neighborhood transpositions.** If `sig(u) == sig(v)`
//!    (sorted neighbor-id multisets) and no member of the group appears in
//!    the shared signature (mutual non-adjacency, no self-loops), the
//!    transposition `(u v)` is an automorphism. This collapses the edge
//!    switches of one Pod and the core columns.
//! 2. **Verified Pod block swaps.** For each Pod `p`, the candidate
//!    permutation exchanging `p`'s contiguous switch-id block with the
//!    base Pod's block (element-wise by offset, everything else fixed) is
//!    checked to be an automorphism by comparing `π(N(v))` against
//!    `N(π(v))` over the affected nodes — the two blocks and all their
//!    neighbors; every other node and its whole neighborhood are fixed by
//!    `π`. This collapses Pods onto the base Pod.
//!
//! On topologies without the symmetry (global random graphs, hybrid zones
//! with randomized Pods), verification simply fails and the classes
//! degrade toward singletons — [`DedupedApsp`] is then exactly a full
//! APSP, never an approximation. The `apsp_scale` integration test holds
//! deduped == full over every mode and zone layout on small k.

use crate::network::Network;
use ft_graph::{Csr, DistMatrix, GraphError, NodeId};
use std::collections::BTreeMap;

/// A contiguous Pod-block involution: switch ids `[a, a + len)` exchanged
/// element-wise with `[b, b + len)`, all other ids fixed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PodSwap {
    a: u32,
    b: u32,
    len: u32,
}

impl PodSwap {
    #[inline]
    fn apply(&self, w: u32) -> u32 {
        if w >= self.a && w < self.a + self.len {
            w - self.a + self.b
        } else if w >= self.b && w < self.b + self.len {
            w - self.b + self.a
        } else {
            w
        }
    }
}

/// How to read switch `v`'s distance row out of its class representative's
/// row: `dist(v, w) = rep_row[map(w)]`, where `map` applies the Pod swap
/// (if `v`'s Pod was collapsed onto the base Pod) and then the
/// transposition onto the representative. Both stages are involutions, so
/// the map costs O(1) per column with no materialized permutation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ColMap {
    swap: Option<PodSwap>,
    transpose: Option<(u32, u32)>,
}

impl ColMap {
    /// Maps a column index of the expanded table to the representative's
    /// column.
    #[inline]
    pub fn apply(&self, w: u32) -> u32 {
        let w = match self.swap {
            Some(s) => s.apply(w),
            None => w,
        };
        match self.transpose {
            Some((x, y)) if w == x => y,
            Some((x, y)) if w == y => x,
            _ => w,
        }
    }

    /// True when this map is the identity (the switch is its own class
    /// representative).
    pub fn is_identity(&self) -> bool {
        self.swap.is_none() && self.transpose.is_none()
    }
}

/// Verified equivalence classes of the switch graph's sources.
pub struct SymmetryClasses {
    /// Per switch: dense index into [`SymmetryClasses::representatives`].
    class_of: Vec<u32>,
    /// Per switch: column map onto its representative's row.
    col_maps: Vec<ColMap>,
    /// One representative switch id per class, ascending.
    reps: Vec<u32>,
}

/// Sorted neighbor-id multiset of every node of `g` — the grouping key for
/// the transposition mechanism.
fn signatures(csr: &Csr, n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|v| {
            let mut sig = csr.targets(v).to_vec();
            sig.sort_unstable();
            sig
        })
        .collect()
}

/// Checks that the candidate Pod swap `π` is an automorphism: for every
/// node in `affected`, the image of its neighborhood equals the
/// neighborhood of its image (as multisets).
fn verify_swap(csr: &Csr, sigs: &[Vec<u32>], swap: PodSwap, affected: &[u32]) -> bool {
    let mut mapped: Vec<u32> = Vec::new();
    for &v in affected {
        let image = swap.apply(v) as usize;
        mapped.clear();
        mapped.extend(csr.targets(v as usize).iter().map(|&t| swap.apply(t)));
        mapped.sort_unstable();
        // bounds: affected holds valid switch ids and π maps them to
        // valid switch ids (block arithmetic stays inside [0, n))
        if mapped != sigs[image] {
            return false;
        }
    }
    true
}

impl SymmetryClasses {
    /// Computes verified source classes for `net`'s switch graph.
    ///
    /// Always succeeds: when no symmetry verifies, every switch is its own
    /// singleton class and [`DedupedApsp`] degenerates to a full APSP.
    pub fn compute(net: &Network) -> SymmetryClasses {
        let n = net.num_switches();
        let csr = Csr::from_graph(&net.switch_graph());
        let sigs = signatures(&csr, n);

        // Mechanism 2 first: per-Pod contiguous switch-id blocks, candidate
        // swap of each Pod onto the base (lowest-id) Pod, verified over the
        // blocks and their neighbors.
        let mut pod_blocks: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for v in 0..n {
            if let Some(p) = net.pod(NodeId(v as u32)) {
                pod_blocks.entry(p).or_default().push(v as u32);
            }
        }
        // (pod id → verified swap onto the base Pod's block)
        let mut pod_swaps: BTreeMap<u32, PodSwap> = BTreeMap::new();
        let contiguous = |ids: &[u32]| {
            ids.windows(2).all(|w| w[1] == w[0] + 1) // ids are built ascending
        };
        let mut blocks = pod_blocks.iter();
        if let Some((_, base_ids)) = blocks.next() {
            if contiguous(base_ids) && !base_ids.is_empty() {
                let base_start = base_ids[0];
                let len = base_ids.len() as u32;
                for (&p, ids) in blocks {
                    if ids.len() as u32 != len || !contiguous(ids) {
                        continue;
                    }
                    let swap = PodSwap {
                        a: ids[0],
                        b: base_start,
                        len,
                    };
                    // Affected set: both blocks plus every neighbor of
                    // either block; all other nodes and their entire
                    // neighborhoods are fixed points of π.
                    let mut affected: Vec<u32> = Vec::new();
                    for &v in base_ids.iter().chain(ids.iter()) {
                        affected.push(v);
                        affected.extend_from_slice(csr.targets(v as usize));
                    }
                    affected.sort_unstable();
                    affected.dedup();
                    if verify_swap(&csr, &sigs, swap, &affected) {
                        pod_swaps.insert(p, swap);
                    }
                }
            }
        }

        // Mechanism 1: group by signature, keep only groups whose shared
        // signature contains no group member (mutual non-adjacency and no
        // self-loops — the condition under which any transposition within
        // the group is an automorphism).
        let mut groups: BTreeMap<&[u32], Vec<u32>> = BTreeMap::new();
        for (v, sig) in sigs.iter().enumerate() {
            groups.entry(sig.as_slice()).or_default().push(v as u32);
        }
        let mut group_rep: Vec<u32> = (0..n as u32).collect();
        for (sig, members) in &groups {
            if members.len() < 2 {
                continue;
            }
            if members.iter().any(|m| sig.binary_search(m).is_ok()) {
                continue; // adjacency or self-loop inside the group
            }
            let rep = members[0]; // members are ascending: first is min
            for &m in members {
                // bounds: group members are switch ids < n
                group_rep[m as usize] = rep;
            }
        }

        // Compose: Pod-swap v into the base Pod (when verified), then
        // transpose onto its neighborhood-group representative.
        let mut col_maps: Vec<ColMap> = Vec::with_capacity(n);
        let mut rep_of: Vec<u32> = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let swap = net.pod(NodeId(v)).and_then(|p| pod_swaps.get(&p).copied());
            let v1 = match swap {
                Some(s) => s.apply(v),
                None => v,
            };
            // bounds: v1 is a valid switch id (π preserves [0, n))
            let rep = group_rep[v1 as usize];
            let transpose = if v1 != rep { Some((v1, rep)) } else { None };
            col_maps.push(ColMap { swap, transpose });
            rep_of.push(rep);
        }

        let mut reps: Vec<u32> = rep_of.clone();
        reps.sort_unstable();
        reps.dedup();
        let class_of: Vec<u32> = rep_of
            .iter()
            .map(|r| {
                // bounds/unwrap-free: every entry of rep_of is in reps by
                // construction, so the search always succeeds
                match reps.binary_search(r) {
                    Ok(i) => i as u32,
                    Err(i) => i as u32,
                }
            })
            .collect();

        SymmetryClasses {
            class_of,
            col_maps,
            reps,
        }
    }

    /// Number of switches covered.
    pub fn len(&self) -> usize {
        self.class_of.len()
    }

    /// True when no switches are covered.
    pub fn is_empty(&self) -> bool {
        self.class_of.is_empty()
    }

    /// Number of equivalence classes (= BFS rows a deduplicated APSP
    /// computes).
    pub fn class_count(&self) -> usize {
        self.reps.len()
    }

    /// The representative switch ids, ascending.
    pub fn representatives(&self) -> &[u32] {
        &self.reps
    }

    /// Class index of switch `v`.
    pub fn class_of(&self, v: usize) -> u32 {
        // bounds: callers index by valid switch id, checked by len()
        self.class_of[v]
    }

    /// Column map of switch `v` onto its representative's row.
    pub fn col_map(&self, v: usize) -> ColMap {
        // bounds: same as class_of
        self.col_maps[v]
    }

    /// The per-switch class ids as one slice, index-aligned with switch
    /// ids. This is the commodity-class bridge into crates that must not
    /// depend on ft-topo: `ft_mcf`'s symmetry-aggregated solver consumes
    /// exactly this slice (plus a hop-distance oracle) to collapse
    /// equivalent (source-class, sink-class) commodity pairs, instead of
    /// taking the whole [`SymmetryClasses`].
    pub fn class_slice(&self) -> &[u32] {
        &self.class_of
    }

    /// Member count of every class, indexed by class id. On a fat-tree
    /// this is the orbit-size vector the commodity aggregation multiplies
    /// demands by; on an asymmetric (converted) topology every entry is 1.
    pub fn class_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.reps.len()];
        for &c in &self.class_of {
            // bounds: class ids were assigned from positions in reps
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// All-pairs switch distances stored as one row per symmetry class.
///
/// `get(v, w)` reads `v`'s class representative's row through `v`'s
/// [`ColMap`] — exact distances, never an approximation, because every
/// class was built from verified automorphisms. [`DedupedApsp::expand`]
/// materializes the full [`DistMatrix`] when a flat table is preferable.
pub struct DedupedApsp {
    classes: SymmetryClasses,
    matrix: DistMatrix,
}

impl DedupedApsp {
    /// Computes classes and one representative BFS row per class over
    /// `net`'s switch graph.
    pub fn compute(net: &Network) -> Result<DedupedApsp, GraphError> {
        Self::compute_with_threads(net, ft_graph::par::thread_count())
    }

    /// [`DedupedApsp::compute`] with an explicit worker count.
    pub fn compute_with_threads(net: &Network, threads: usize) -> Result<DedupedApsp, GraphError> {
        let classes = SymmetryClasses::compute(net);
        let csr = Csr::from_graph(&net.switch_graph());
        let sources: Vec<NodeId> = classes.reps.iter().map(|&r| NodeId(r)).collect();
        let matrix = DistMatrix::compute_from_csr_with_threads(&csr, &sources, threads)?;
        Ok(DedupedApsp { classes, matrix })
    }

    /// Distance in hops between switches `v` and `w`.
    #[inline]
    pub fn get(&self, v: usize, w: usize) -> u16 {
        let row = self.classes.class_of(v) as usize;
        let col = self.classes.col_map(v).apply(w as u32) as usize;
        self.matrix.get(row, col)
    }

    /// The symmetry classes behind this table.
    pub fn classes(&self) -> &SymmetryClasses {
        &self.classes
    }

    /// The per-class representative rows.
    pub fn representative_rows(&self) -> &DistMatrix {
        &self.matrix
    }

    /// Materializes the full switch × switch table by expanding every
    /// class row through the per-switch column maps (parallel over rows;
    /// each row depends only on its row index, so the result is
    /// bit-identical for every worker count).
    pub fn expand(&self) -> Result<DistMatrix, GraphError> {
        self.expand_with_threads(ft_graph::par::thread_count())
    }

    /// [`DedupedApsp::expand`] with an explicit worker count.
    pub fn expand_with_threads(&self, threads: usize) -> Result<DistMatrix, GraphError> {
        let n = self.classes.len();
        if n == 0 {
            return DistMatrix::from_rows(self.matrix.width().max(1), Vec::new());
        }
        let mut rows = vec![0u16; n * n];
        ft_graph::par::fill_rows_with(
            threads,
            &mut rows,
            n,
            || (),
            |v, row, _| {
                let rep_row = self.matrix.row(self.classes.class_of(v) as usize);
                let map = self.classes.col_map(v);
                if map.is_identity() {
                    row.copy_from_slice(rep_row);
                } else {
                    for (w, cell) in row.iter_mut().enumerate() {
                        // bounds: map.apply permutes [0, n), and rep_row has
                        // n entries
                        *cell = rep_row[map.apply(w as u32) as usize];
                    }
                }
            },
        );
        DistMatrix::from_rows(n, rows)
    }

    /// Wrapping sum of the *expanded* table's entries without
    /// materializing it — comparable against [`DistMatrix::checksum`] of a
    /// full APSP.
    pub fn expanded_checksum(&self) -> u64 {
        let n = self.classes.len();
        let mut sum = 0u64;
        for v in 0..n {
            let rep_row = self.matrix.row(self.classes.class_of(v) as usize);
            let map = self.classes.col_map(v);
            if map.is_identity() {
                sum = rep_row
                    .iter()
                    .fold(sum, |acc, &d| acc.wrapping_add(u64::from(d)));
            } else {
                for w in 0..n as u32 {
                    // bounds: map.apply permutes [0, n)
                    sum = sum.wrapping_add(u64::from(rep_row[map.apply(w) as usize]));
                }
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::fat_tree;
    use crate::jellyfish::{jellyfish, JellyfishParams};

    fn full_table(net: &Network) -> DistMatrix {
        let csr = Csr::from_graph(&net.switch_graph());
        DistMatrix::compute_csr_with_threads(&csr, 1).unwrap()
    }

    fn assert_dedup_exact(net: &Network) {
        let full = full_table(net);
        let dd = DedupedApsp::compute_with_threads(net, 1).unwrap();
        let expanded = dd.expand_with_threads(1).unwrap();
        let n = net.num_switches();
        assert_eq!(expanded.rows(), n);
        for v in 0..n {
            assert_eq!(expanded.row(v), full.row(v), "row of switch {v}");
            for w in 0..n {
                assert_eq!(dd.get(v, w), full.get(v, w), "get({v},{w})");
            }
        }
        assert_eq!(dd.expanded_checksum(), full.checksum());
    }

    #[test]
    fn fat_tree_classes_collapse_hard() {
        let net = fat_tree(4).unwrap();
        let classes = SymmetryClasses::compute(&net);
        // k = 4: 20 switches collapse to 1 edge + k/2 agg + k/2 core
        // classes = k + 1.
        assert_eq!(classes.len(), 20);
        assert_eq!(classes.class_count(), 5);
        assert_dedup_exact(&net);
    }

    #[test]
    fn fat_tree_k6_and_k8_exact() {
        for k in [6, 8] {
            let net = fat_tree(k).unwrap();
            let classes = SymmetryClasses::compute(&net);
            assert_eq!(classes.class_count(), k + 1, "k={k}");
            assert_dedup_exact(&net);
        }
    }

    #[test]
    fn random_graph_degrades_to_exactness() {
        // Jellyfish has essentially no verified symmetry; the point is not
        // the class count but that the answers stay exact.
        let params = JellyfishParams {
            switches: 24,
            ports: 6,
            servers: 48,
        };
        let net = jellyfish(params, 7).unwrap();
        assert_dedup_exact(&net);
    }

    #[test]
    fn col_map_identity_and_swap() {
        let id = ColMap::default();
        assert!(id.is_identity());
        assert_eq!(id.apply(17), 17);
        let m = ColMap {
            swap: Some(PodSwap {
                a: 4,
                b: 10,
                len: 3,
            }),
            transpose: Some((0, 2)),
        };
        assert_eq!(m.apply(5), 11); // block a → block b
        assert_eq!(m.apply(11), 5); // block b → block a
        assert_eq!(m.apply(0), 2); // transposition
        assert_eq!(m.apply(2), 0);
        assert_eq!(m.apply(7), 7); // fixed elsewhere
    }
}
