//! Export a [`Network`] as Graphviz DOT or JSON.
//!
//! Both emitters are hand-rolled (no serde_json dependency) and produce
//! stable, diff-friendly output: nodes and links in id order.

use crate::network::{DeviceKind, Network};
use std::fmt::Write;

fn kind_str(k: DeviceKind) -> &'static str {
    match k {
        DeviceKind::Server => "server",
        DeviceKind::Edge => "edge",
        DeviceKind::Aggregation => "aggregation",
        DeviceKind::Core => "core",
        DeviceKind::Generic => "switch",
    }
}

/// Renders the network as a Graphviz DOT document.
///
/// Device layers get distinct shapes/colors so `dot -Tsvg` output is
/// readable: cores are striped boxes, aggregation switches grid boxes, edge
/// switches shaded boxes and servers circles — mirroring the paper's
/// Figure 2 legend.
pub fn to_dot(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", net.name());
    let _ = writeln!(out, "  graph [overlap=false];");
    for v in net.graph().nodes() {
        let (shape, color) = match net.kind(v) {
            DeviceKind::Core => ("box", "lightcoral"),
            DeviceKind::Aggregation => ("box", "lightblue"),
            DeviceKind::Edge => ("box", "lightgray"),
            DeviceKind::Generic => ("box", "wheat"),
            DeviceKind::Server => ("circle", "white"),
        };
        let pod = net.pod(v).map(|p| format!(" p{p}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "  n{} [label=\"{}{}{}\", shape={shape}, style=filled, fillcolor={color}];",
            v.0,
            kind_str(net.kind(v)),
            v.0,
            pod
        );
    }
    for (_, a, b) in net.graph().edges() {
        let _ = writeln!(out, "  n{} -- n{};", a.0, b.0);
    }
    out.push_str("}\n");
    out
}

/// Renders the network as a JSON document with `name`, `nodes` and `links`
/// arrays. Suitable for downstream visualization tooling.
pub fn to_json(net: &Network) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"name\": \"{}\",", escape(net.name()));
    let _ = writeln!(out, "  \"num_switches\": {},", net.num_switches());
    let _ = writeln!(out, "  \"num_servers\": {},", net.num_servers());
    out.push_str("  \"nodes\": [\n");
    let n = net.graph().node_count();
    for v in net.graph().nodes() {
        let pod = match net.pod(v) {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        let comma = if v.index() + 1 < n { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"id\": {}, \"kind\": \"{}\", \"pod\": {}, \"ports\": {}}}{comma}",
            v.0,
            kind_str(net.kind(v)),
            pod,
            net.ports(v)
        );
    }
    out.push_str("  ],\n  \"links\": [\n");
    let edges: Vec<_> = net.graph().edges().collect();
    for (i, (_, a, b)) in edges.iter().enumerate() {
        let comma = if i + 1 < edges.len() { "," } else { "" };
        let _ = writeln!(out, "    [{}, {}]{comma}", a.0, b.0);
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::fat_tree;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let n = fat_tree(4).unwrap();
        let dot = to_dot(&n);
        assert!(dot.starts_with("graph"));
        assert_eq!(dot.matches(" -- ").count(), n.graph().edge_count());
        assert_eq!(
            dot.matches("shape=circle").count(),
            n.num_servers(),
            "one circle per server"
        );
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn json_counts() {
        let n = fat_tree(4).unwrap();
        let js = to_json(&n);
        assert!(js.contains("\"num_switches\": 20"));
        assert!(js.contains("\"num_servers\": 16"));
        assert_eq!(js.matches("\"kind\"").count(), 36);
        // 48 links, rendered as [a, b] pairs
        assert_eq!(js.matches("    [").count(), 48);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
