//! Property-based tests for the graph substrate: algorithm agreement on
//! random graphs.

use ft_graph::{
    bfs_distances, bfs_tree, dijkstra, k_shortest_paths, AllPairs, Csr, DistMatrix, FlowNetwork,
    Graph, NodeId, UNREACHABLE, UNREACHABLE16,
};
use proptest::prelude::*;

/// Random connected graph: a random spanning tree plus extra random edges.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..20,
        proptest::collection::vec((0u32..1000, 0u32..1000), 0..30),
    )
        .prop_map(|(n, extras)| {
            let mut g = Graph::new(n);
            for v in 1..n as u32 {
                // parent chosen deterministically from the extras entropy
                let p = extras
                    .get(v as usize % extras.len().max(1))
                    .map(|&(a, _)| a % v)
                    .unwrap_or(0);
                g.add_edge(NodeId(p), NodeId(v));
            }
            for (a, b) in extras {
                let (a, b) = (a % n as u32, b % n as u32);
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra under unit lengths equals BFS.
    #[test]
    fn dijkstra_unit_equals_bfs(g in arb_connected_graph()) {
        let len = vec![1.0; g.edge_id_bound()];
        let d = dijkstra(&g, NodeId(0), &len);
        let b = bfs_distances(&g, NodeId(0));
        #[allow(clippy::needless_range_loop)]
        for v in 0..g.node_count() {
            if b[v] == UNREACHABLE {
                prop_assert!(d.dist[v].is_infinite());
            } else {
                prop_assert_eq!(d.dist[v] as u32, b[v]);
            }
        }
    }

    /// BFS distances satisfy the triangle inequality over edges: adjacent
    /// nodes differ by at most 1.
    #[test]
    fn bfs_lipschitz_over_edges(g in arb_connected_graph()) {
        let d = bfs_distances(&g, NodeId(0));
        for (_, a, b) in g.edges() {
            let (da, db) = (d[a.index()], d[b.index()]);
            if da != UNREACHABLE && db != UNREACHABLE {
                prop_assert!(da.abs_diff(db) <= 1);
            }
        }
    }

    /// BFS-tree paths have exactly `dist` edges and follow real edges.
    #[test]
    fn bfs_tree_paths_consistent(g in arb_connected_graph()) {
        let t = bfs_tree(&g, NodeId(0));
        for v in g.nodes() {
            if let Some(p) = t.path_to(v) {
                prop_assert_eq!(p.len() as u32 - 1, t.dist[v.index()]);
                for w in p.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    /// Yen's paths are distinct, loopless, sorted, and the first equals
    /// the BFS shortest path length.
    #[test]
    fn yen_properties(g in arb_connected_graph(), k in 1usize..6) {
        let len = vec![1.0; g.edge_id_bound()];
        let src = NodeId(0);
        let dst = NodeId(g.node_count() as u32 - 1);
        let paths = k_shortest_paths(&g, src, dst, k, &len);
        prop_assert!(paths.len() <= k);
        let bfs = bfs_distances(&g, src);
        if bfs[dst.index()] != UNREACHABLE {
            prop_assert!(!paths.is_empty());
            prop_assert_eq!(paths[0].hops() as u32, bfs[dst.index()]);
        }
        for w in paths.windows(2) {
            prop_assert!(w[0].length <= w[1].length + 1e-9);
        }
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            prop_assert!(seen.insert(p.edges.clone()), "duplicate path");
            let mut nodes = std::collections::HashSet::new();
            for n in &p.nodes {
                prop_assert!(nodes.insert(*n), "loop in path");
            }
        }
    }

    /// Max-flow is bounded by both endpoint degrees (unit capacities) and
    /// is symmetric for undirected constructions.
    #[test]
    fn maxflow_bounded_and_symmetric(g in arb_connected_graph()) {
        let src = 0usize;
        let dst = g.node_count() - 1;
        prop_assume!(src != dst);
        let build = || {
            let mut f = FlowNetwork::new(g.node_count());
            for (_, a, b) in g.edges() {
                f.add_edge(a.index(), b.index(), 1.0);
                f.add_edge(b.index(), a.index(), 1.0);
            }
            f
        };
        let fwd = build().max_flow(src, dst);
        let bwd = build().max_flow(dst, src);
        prop_assert!((fwd - bwd).abs() < 1e-9, "undirected flow must be symmetric");
        let deg_src = g.degree(NodeId(src as u32)) as f64;
        let deg_dst = g.degree(NodeId(dst as u32)) as f64;
        prop_assert!(fwd <= deg_src.min(deg_dst) + 1e-9);
        // connected graphs carry at least one unit
        let bfs = bfs_distances(&g, NodeId(0));
        if bfs[dst] != UNREACHABLE {
            prop_assert!(fwd >= 1.0 - 1e-9);
        }
    }

    /// Parallel BFS-APSP over the CSR view is identical to the sequential
    /// table for every worker count — the DESIGN.md §10 determinism
    /// contract on random graphs.
    #[test]
    fn parallel_apsp_equals_sequential(g in arb_connected_graph(), workers in 2usize..9) {
        let csr = Csr::from_graph(&g);
        let seq = AllPairs::compute_csr_with_threads(&csr, 1);
        let par = AllPairs::compute_csr_with_threads(&csr, workers);
        for v in 0..g.node_count() {
            prop_assert_eq!(seq.row(v), par.row(v), "row {} diverged", v);
            // and each row agrees with the Graph-based BFS it replaced
            prop_assert_eq!(seq.row(v), &bfs_distances(&g, NodeId(v as u32))[..]);
        }
    }

    /// The compact `u16` matrix from the bitset kernel agrees entry for
    /// entry with the `u32` table (sentinel widths aside) on random graphs
    /// for every worker count, and its checksum is the plain wrapping sum
    /// of the finite entries on connected inputs.
    #[test]
    fn dist_matrix_equals_all_pairs(g in arb_connected_graph(), workers in 1usize..9) {
        let csr = Csr::from_graph(&g);
        let wide = AllPairs::compute_csr(&csr);
        let compact = match DistMatrix::compute_csr_with_threads(&csr, workers) {
            Ok(m) => m,
            // arb graphs have < 20 nodes, far inside the u16 range
            Err(e) => return Err(TestCaseError::Fail(format!("unexpected overflow: {e}"))),
        };
        let mut sum = 0u64;
        for v in 0..g.node_count() {
            for (w, &wide_d) in wide.row(v).iter().enumerate() {
                let got = compact.get(v, w);
                if wide_d == UNREACHABLE {
                    prop_assert_eq!(got, UNREACHABLE16, "sentinel lost at ({}, {})", v, w);
                } else {
                    prop_assert_eq!(u32::from(got), wide_d, "pair ({}, {})", v, w);
                    sum = sum.wrapping_add(u64::from(got));
                }
            }
        }
        prop_assert_eq!(compact.checksum(), sum);
    }

    /// Removing an edge never shortens any distance; restoring it returns
    /// the original distances exactly.
    #[test]
    fn removal_monotonicity(g in arb_connected_graph(), pick in any::<u32>()) {
        let mut g = g;
        let before = bfs_distances(&g, NodeId(0));
        let edges: Vec<_> = g.edges().map(|(e, _, _)| e).collect();
        prop_assume!(!edges.is_empty());
        let victim = edges[pick as usize % edges.len()];
        g.remove_edge(victim);
        let after = bfs_distances(&g, NodeId(0));
        for v in 0..g.node_count() {
            prop_assert!(after[v] >= before[v]);
        }
        g.restore_edge(victim);
        prop_assert_eq!(bfs_distances(&g, NodeId(0)), before);
    }
}
