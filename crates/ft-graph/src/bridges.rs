//! Bridge (cut-edge) detection via Tarjan's low-link DFS.
//!
//! A bridge is a link whose failure disconnects the graph — the worst kind
//! of single point of failure a topology can have. Well-designed data
//! center fabrics have none (every fat-tree/flat-tree/Jellyfish switch
//! link is redundant); the count is a cheap resilience indicator for the
//! topology-comparison tooling and the failure experiments.
//!
//! Parallel edges are handled correctly: two parallel links between the
//! same switches protect each other, so neither is a bridge.

use crate::graph::{EdgeId, Graph, NodeId};

/// Returns all bridges of the graph (live edges whose removal increases
/// the number of connected components).
pub fn bridges(g: &Graph) -> Vec<EdgeId> {
    let n = g.node_count();
    let mut disc = vec![0u32; n]; // discovery time, 0 = unvisited
    let mut low = vec![0u32; n];
    let mut out = Vec::new();
    let mut timer = 1u32;

    // Iterative DFS to survive deep graphs (no recursion limits).
    // Stack frames: (node, parent edge, neighbor cursor).
    let mut stack: Vec<(NodeId, Option<EdgeId>, usize)> = Vec::new();
    // Materialized adjacency so the cursor survives re-entry.
    let adj: Vec<Vec<(NodeId, EdgeId)>> = g.nodes().map(|v| g.neighbors(v).collect()).collect();

    for start in g.nodes() {
        if disc[start.index()] != 0 {
            continue;
        }
        disc[start.index()] = timer;
        low[start.index()] = timer;
        timer += 1;
        stack.push((start, None, 0));
        while let Some(&mut (v, parent_edge, ref mut cursor)) = stack.last_mut() {
            if *cursor < adj[v.index()].len() {
                let (u, e) = adj[v.index()][*cursor];
                *cursor += 1;
                if Some(e) == parent_edge {
                    continue; // don't traverse the tree edge backwards
                }
                if disc[u.index()] != 0 {
                    // back edge
                    low[v.index()] = low[v.index()].min(disc[u.index()]);
                } else {
                    disc[u.index()] = timer;
                    low[u.index()] = timer;
                    timer += 1;
                    stack.push((u, Some(e), 0));
                }
            } else {
                // retreat
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p.index()] = low[p.index()].min(low[v.index()]);
                    if low[v.index()] > disc[p.index()] {
                        // the tree edge p—v is a bridge; a non-root frame
                        // always carries its parent edge.
                        if let Some(e) = parent_edge {
                            out.push(e);
                        }
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn path_all_bridges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bridges(&g).len(), 3);
    }

    #[test]
    fn cycle_no_bridges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn barbell_single_bridge() {
        // two triangles joined by one edge
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let b = bridges(&g);
        assert_eq!(b.len(), 1);
        let (x, y) = g.endpoints(b[0]);
        assert_eq!((x.0.min(y.0), x.0.max(y.0)), (2, 3));
    }

    #[test]
    fn parallel_edges_protect_each_other() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        assert!(bridges(&g).is_empty(), "parallel links are not bridges");
        // a single link IS a bridge
        let g2 = Graph::from_edges(2, &[(0, 1)]);
        assert_eq!(bridges(&g2).len(), 1);
    }

    #[test]
    fn disconnected_components_handled() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        assert_eq!(bridges(&g).len(), 3);
    }

    #[test]
    fn removed_edges_ignored() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(bridges(&g).is_empty());
        // removing one cycle edge makes the remaining two bridges
        let (e, _, _) = g.edges().next().unwrap();
        g.remove_edge(e);
        assert_eq!(bridges(&g).len(), 2);
    }

    #[test]
    fn matches_naive_oracle_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let n = rng.random_range(2..12usize);
            let mut g = Graph::new(n);
            for v in 1..n as u32 {
                g.add_edge(NodeId(rng.random_range(0..v)), NodeId(v));
            }
            for _ in 0..rng.random_range(0..6) {
                let a = rng.random_range(0..n as u32);
                let b = rng.random_range(0..n as u32);
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            let fast: Vec<EdgeId> = bridges(&g);
            // oracle: remove each edge, count components
            let base = crate::stats::connected_components(&g);
            let mut slow = Vec::new();
            let ids: Vec<EdgeId> = g.edges().map(|(e, _, _)| e).collect();
            for e in ids {
                g.remove_edge(e);
                if crate::stats::connected_components(&g) > base {
                    slow.push(e);
                }
                g.restore_edge(e);
            }
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn fat_tree_like_redundancy() {
        // complete bipartite K2,3 has no bridges
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        assert!(bridges(&g).is_empty());
    }
}
