//! Dijkstra shortest paths under arbitrary non-negative edge lengths.
//!
//! Lengths are supplied as an external slice indexed by [`EdgeId`], because
//! the main consumer — the concurrent-flow FPTAS in `ft-mcf` — re-runs
//! Dijkstra thousands of times over the *same* graph with *different* length
//! functions (the exponential dual weights). Keeping lengths out of the graph
//! avoids rebuilding or mutating it in the hot loop.

use crate::csr::Csr;
use crate::graph::{EdgeId, Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source Dijkstra run.
#[derive(Clone, Debug)]
pub struct DijkstraResult {
    /// Distance from the source; `f64::INFINITY` if unreachable.
    pub dist: Vec<f64>,
    /// Parent (node, edge) on a shortest path back to the source.
    pub parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl DijkstraResult {
    /// Number of hops on the shortest path to `t`, or `None` if `t` is
    /// unreachable.
    pub fn hops_to(&self, t: NodeId) -> Option<usize> {
        if !self.dist[t.index()].is_finite() {
            return None;
        }
        let mut hops = 0usize;
        let mut cur = t;
        while let Some((p, _)) = self.parent[cur.index()] {
            hops += 1;
            cur = p;
        }
        Some(hops)
    }

    /// Shared parent walk behind both path reconstructions: collects
    /// `f(parent, edge)` per hop walking from `t` back toward the source
    /// (i.e. in reverse path order), with the output sized up front from
    /// [`DijkstraResult::hops_to`] so neither caller re-allocates while
    /// pushing. Returns `None` when `t` is unreachable.
    fn walk_parents<T, F>(&self, t: NodeId, extra_capacity: usize, mut f: F) -> Option<Vec<T>>
    where
        F: FnMut(NodeId, EdgeId) -> T,
    {
        let hops = self.hops_to(t)?;
        let mut out = Vec::with_capacity(hops + extra_capacity);
        let mut cur = t;
        while let Some((p, e)) = self.parent[cur.index()] {
            out.push(f(p, e));
            cur = p;
        }
        Some(out)
    }

    /// Reconstructs a shortest path to `t` as the list of edges from the
    /// source to `t`, or `None` if unreachable.
    pub fn edge_path_to(&self, t: NodeId) -> Option<Vec<EdgeId>> {
        let mut edges = self.walk_parents(t, 0, |_, e| e)?;
        edges.reverse();
        Some(edges)
    }

    /// Reconstructs a shortest path to `t` as a node list, or `None`.
    pub fn node_path_to(&self, t: NodeId) -> Option<Vec<NodeId>> {
        // one extra slot so pushing `t` after the reverse stays in capacity
        let mut path = self.walk_parents(t, 1, |p, _| p)?;
        path.reverse();
        path.push(t);
        Some(path)
    }
}

/// Min-heap entry ordered by distance. `f64` distances are never NaN here
/// (lengths are validated), so the total order is safe.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want the minimum distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source Dijkstra.
///
/// `length[e]` is the length of edge `e`; entries for dead edges are ignored.
/// Lengths must be non-negative and not NaN.
///
/// # Panics
/// Panics (debug assertions) on negative or NaN lengths encountered during
/// relaxation.
pub fn dijkstra(g: &Graph, src: NodeId, length: &[f64]) -> DijkstraResult {
    dijkstra_filtered(g, src, length, |_, _| true)
}

/// Dijkstra restricted to edges/nodes accepted by `allow(node, edge)`:
/// relaxation from `v` over edge `e` to `u` happens only when
/// `allow(u, e)` is true. Used by Yen's algorithm to ban spur-path prefixes.
pub fn dijkstra_filtered<F>(g: &Graph, src: NodeId, length: &[f64], allow: F) -> DijkstraResult
where
    F: Fn(NodeId, EdgeId) -> bool,
{
    // One-shot calls pay a CSR freeze; repeated callers (Yen's, benchmarks)
    // build the view once and use `dijkstra_csr_filtered` directly. The CSR
    // preserves `Graph::neighbors` order, so results are bit-identical.
    dijkstra_csr_filtered(&Csr::from_graph(g), src, length, allow)
}

/// [`dijkstra`] over a pre-built [`Csr`] view.
pub fn dijkstra_csr(csr: &Csr, src: NodeId, length: &[f64]) -> DijkstraResult {
    dijkstra_csr_filtered(csr, src, length, |_, _| true)
}

/// [`dijkstra_filtered`] over a pre-built [`Csr`] view: the hot-path variant
/// that traverses the contiguous `offsets`/`targets`/`edge_ids` arrays
/// instead of the pointer-chasing `Vec<Vec<…>>` adjacency.
pub fn dijkstra_csr_filtered<F>(csr: &Csr, src: NodeId, length: &[f64], allow: F) -> DijkstraResult
where
    F: Fn(NodeId, EdgeId) -> bool,
{
    let n = csr.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if d > dist[v.index()] {
            continue; // stale entry
        }
        for (t, ei) in csr.targets(v.index()).iter().zip(csr.edge_ids(v.index())) {
            let (u, e) = (NodeId(*t), EdgeId(*ei));
            if !allow(u, e) {
                continue;
            }
            let w = length[e.index()];
            debug_assert!(w >= 0.0 && !w.is_nan(), "invalid edge length {w}");
            let nd = d + w;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                parent[u.index()] = Some((v, e));
                heap.push(HeapEntry { dist: nd, node: u });
            }
        }
    }
    DijkstraResult { dist, parent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_distances;
    use crate::graph::Graph;
    use crate::UNREACHABLE;

    #[test]
    fn unit_lengths_match_bfs() {
        // 5-node graph with a few chords.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let len = vec![1.0; g.edge_id_bound()];
        let d = dijkstra(&g, NodeId(0), &len);
        let b = bfs_distances(&g, NodeId(0));
        for (di, bi) in d.dist.iter().zip(&b) {
            assert_eq!(*di as u32, *bi);
        }
    }

    #[test]
    fn weighted_prefers_cheap_detour() {
        // 0-1 direct cost 10; 0-2-1 cost 2.
        let mut g = Graph::new(3);
        let direct = g.add_edge(NodeId(0), NodeId(1));
        let a = g.add_edge(NodeId(0), NodeId(2));
        let b = g.add_edge(NodeId(2), NodeId(1));
        let mut len = vec![0.0; g.edge_id_bound()];
        len[direct.index()] = 10.0;
        len[a.index()] = 1.0;
        len[b.index()] = 1.0;
        let d = dijkstra(&g, NodeId(0), &len);
        assert_eq!(d.dist[1], 2.0);
        assert_eq!(d.edge_path_to(NodeId(1)).unwrap(), vec![a, b]);
    }

    #[test]
    fn parallel_edges_pick_shorter() {
        let mut g = Graph::new(2);
        let e0 = g.add_edge(NodeId(0), NodeId(1));
        let e1 = g.add_edge(NodeId(0), NodeId(1));
        let mut len = vec![0.0; 2];
        len[e0.index()] = 5.0;
        len[e1.index()] = 3.0;
        let d = dijkstra(&g, NodeId(0), &len);
        assert_eq!(d.dist[1], 3.0);
        assert_eq!(d.edge_path_to(NodeId(1)).unwrap(), vec![e1]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = dijkstra(&g, NodeId(0), &[1.0]);
        assert!(d.dist[2].is_infinite());
        assert!(d.edge_path_to(NodeId(2)).is_none());
        assert!(d.node_path_to(NodeId(2)).is_none());
        let b = bfs_distances(&g, NodeId(0));
        assert_eq!(b[2], UNREACHABLE);
    }

    #[test]
    fn filtered_bans_edge() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        // ban the direct 0-2 edge (id 2)
        let len = vec![1.0; 3];
        let d = dijkstra_filtered(&g, NodeId(0), &len, |_, e| e.index() != 2);
        assert_eq!(d.dist[2], 2.0);
    }

    #[test]
    fn node_path_matches_edge_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let len = vec![1.0; 3];
        let d = dijkstra(&g, NodeId(0), &len);
        let nodes = d.node_path_to(NodeId(3)).unwrap();
        let edges = d.edge_path_to(NodeId(3)).unwrap();
        assert_eq!(nodes.len(), edges.len() + 1);
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn csr_variant_is_bit_identical() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let len: Vec<f64> = (0..g.edge_id_bound())
            .map(|i| 0.5 + i as f64 * 0.3)
            .collect();
        let csr = Csr::from_graph(&g);
        for v in g.nodes() {
            let a = dijkstra(&g, v, &len);
            let b = dijkstra_csr(&csr, v, &len);
            for (x, y) in a.dist.iter().zip(&b.dist) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.parent, b.parent);
        }
    }

    #[test]
    fn hops_to_counts_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = dijkstra(&g, NodeId(0), &[1.0; 3]);
        assert_eq!(d.hops_to(NodeId(0)), Some(0));
        assert_eq!(d.hops_to(NodeId(3)), Some(3));
        let g2 = Graph::from_edges(3, &[(0, 1)]);
        let d2 = dijkstra(&g2, NodeId(0), &[1.0]);
        assert_eq!(d2.hops_to(NodeId(2)), None);
    }

    #[test]
    fn zero_length_edges_ok() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let d = dijkstra(&g, NodeId(0), &[0.0, 0.0]);
        assert_eq!(d.dist[2], 0.0);
    }
}
