//! The undirected multigraph used throughout the workspace.

use crate::error::GraphError;
use std::fmt;

/// Converts a dense container index into the `u32` id space, asserting that
/// it fits.
///
/// Every workspace topology is orders of magnitude below `u32::MAX` nodes
/// and edges; the assert documents that invariant instead of silently
/// truncating. Use [`try_id32`] when the size comes from untrusted input.
#[inline]
pub fn id32(index: usize) -> u32 {
    assert!(
        index <= u32::MAX as usize,
        "index {index} exceeds the u32 id space"
    );
    index as u32 // checked by the assert above
}

/// Fallible counterpart of [`id32`]: converts a dense index into the `u32`
/// id space, or reports [`GraphError::IdSpaceExhausted`].
#[inline]
pub fn try_id32(index: usize) -> Result<u32, GraphError> {
    u32::try_from(index).map_err(|_| GraphError::IdSpaceExhausted { index })
}

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense indices assigned in insertion order, which lets callers
/// keep per-node side tables in plain `Vec`s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`Graph`].
///
/// Edge ids are dense indices assigned in insertion order and remain stable
/// after [`Graph::remove_edge`]: removed ids are never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected multigraph with stable, dense node and edge ids.
///
/// Parallel edges and self-loops are permitted (data center topologies use
/// parallel links; self-loops are rejected by the topology layer, not here).
/// Removal is tombstone-based: a removed edge keeps its id but disappears
/// from adjacency iteration, `edge_count`, and algorithms.
///
/// # Example
///
/// ```
/// use ft_graph::Graph;
///
/// let mut g = Graph::new(3);
/// let e01 = g.add_edge(g.node(0), g.node(1));
/// let e12 = g.add_edge(g.node(1), g.node(2));
/// assert_eq!(g.degree(g.node(1)), 2);
/// g.remove_edge(e12);
/// assert_eq!(g.degree(g.node(1)), 1);
/// assert!(g.edge_alive(e01));
/// ```
#[derive(Clone, Default)]
pub struct Graph {
    /// adjacency: for each node, (neighbor, edge id) pairs including dead
    /// edges; dead ones are filtered during iteration.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// endpoints of every edge ever added.
    edges: Vec<(NodeId, NodeId)>,
    /// tombstone flags, indexed by edge id.
    alive: Vec<bool>,
    /// count of live edges.
    live_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            alive: Vec::new(),
            live_edges: 0,
        }
    }

    /// Creates a graph with `n` nodes and the given undirected edges.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Graph::new(n);
        for &(a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    /// Convenience constructor of a [`NodeId`] with bounds checking.
    ///
    /// # Panics
    /// Panics if `i >= node_count()`.
    #[inline]
    pub fn node(&self, i: usize) -> NodeId {
        assert!(i < self.adj.len(), "node index {i} out of bounds");
        NodeId(id32(i))
    }

    /// Fallible counterpart of [`Graph::node`].
    #[inline]
    pub fn try_node(&self, i: usize) -> Result<NodeId, GraphError> {
        if i < self.adj.len() {
            Ok(NodeId(try_id32(i)?))
        } else {
            Err(GraphError::NodeOutOfBounds {
                index: i,
                node_count: self.adj.len(),
            })
        }
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(id32(self.adj.len()));
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `a` and `b` and returns its id.
    ///
    /// Parallel edges are allowed: calling this twice with the same endpoints
    /// yields two distinct edge ids.
    ///
    /// # Panics
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        assert!(a.index() < self.adj.len(), "endpoint {a:?} out of bounds");
        assert!(b.index() < self.adj.len(), "endpoint {b:?} out of bounds");
        let id = EdgeId(id32(self.edges.len()));
        self.edges.push((a, b));
        self.alive.push(true);
        self.adj[a.index()].push((b, id));
        if a != b {
            self.adj[b.index()].push((a, id));
        }
        self.live_edges += 1;
        id
    }

    /// Fallible counterpart of [`Graph::add_edge`]: reports an error instead
    /// of asserting when an endpoint is out of bounds.
    pub fn try_add_edge(&mut self, a: NodeId, b: NodeId) -> Result<EdgeId, GraphError> {
        for v in [a, b] {
            if v.index() >= self.adj.len() {
                return Err(GraphError::NodeOutOfBounds {
                    index: v.index(),
                    node_count: self.adj.len(),
                });
            }
        }
        Ok(self.add_edge(a, b))
    }

    /// Removes an edge (tombstone). Returns `true` if the edge was live.
    ///
    /// The id is never reused; adjacency lists are compacted lazily during
    /// iteration, so removal is O(1).
    pub fn remove_edge(&mut self, e: EdgeId) -> bool {
        if self.edge_alive(e) {
            self.alive[e.index()] = false;
            self.live_edges -= 1;
            true
        } else {
            false
        }
    }

    /// Restores a previously removed edge. Returns `true` if it was dead.
    ///
    /// Used by failure-injection scenarios that repair links. Edges whose
    /// endpoints lie outside the node set — possible only in a
    /// [`Graph::prefix_subgraph`] view, where clipped edges are permanent
    /// tombstones — are refused (`false`): reviving one would push
    /// out-of-range neighbors into adjacency iteration.
    pub fn restore_edge(&mut self, e: EdgeId) -> bool {
        if e.index() < self.alive.len() && !self.alive[e.index()] {
            let (a, b) = self.edges[e.index()];
            if a.index() >= self.adj.len() || b.index() >= self.adj.len() {
                return false;
            }
            self.alive[e.index()] = true;
            self.live_edges += 1;
            true
        } else {
            false
        }
    }

    /// Whether the edge id refers to a live (non-removed) edge.
    #[inline]
    pub fn edge_alive(&self, e: EdgeId) -> bool {
        e.index() < self.alive.len() && self.alive[e.index()]
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of live edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Total number of edge ids ever allocated (live + dead). Side tables
    /// indexed by `EdgeId` should be sized by this.
    #[inline]
    pub fn edge_id_bound(&self) -> usize {
        self.edges.len()
    }

    /// Endpoints of an edge (regardless of liveness).
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// Given an edge and one endpoint, returns the other endpoint.
    ///
    /// For self-loops returns the same node.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if v == a {
            b
        } else {
            debug_assert_eq!(v, b, "{v:?} is not an endpoint of {e:?}");
            a
        }
    }

    /// Iterates over the live (neighbor, edge) pairs of `v`.
    ///
    /// A neighbor appears once per parallel edge.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[v.index()]
            .iter()
            .copied()
            .filter(move |&(_, e)| self.alive[e.index()])
    }

    /// Live degree of `v` (parallel edges counted individually, self-loops
    /// counted once).
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).count()
    }

    /// Whether at least one live edge connects `a` and `b`.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).any(|(n, _)| n == b)
    }

    /// Number of live parallel edges between `a` and `b`.
    pub fn edge_multiplicity(&self, a: NodeId, b: NodeId) -> usize {
        self.neighbors(a).filter(|&(n, _)| n == b).count()
    }

    /// Iterates over all live edges as `(EdgeId, NodeId, NodeId)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |&(i, _)| self.alive[i])
            .map(|(i, &(a, b))| (EdgeId(id32(i)), a, b))
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..id32(self.adj.len())).map(NodeId)
    }

    /// Returns the **id-preserving** restriction of the graph to nodes
    /// `0..n`: same edge-id space (`edge_id_bound` unchanged), with every
    /// edge touching a node `>= n` turned into a permanent tombstone.
    ///
    /// This is how the DES simulator derives a switch-only routing view
    /// from a network whose layout is switches-first: node ids `0..n` and
    /// the surviving edge ids mean *the same thing* in the view and in the
    /// parent graph, so paths computed on the view can be applied to the
    /// parent without any id translation — unlike
    /// `Network::switch_graph()`, which renumbers edges. Clipped edges
    /// cannot be restored in the view (see [`Graph::restore_edge`]);
    /// live-edge mutations on nodes `0..n` (remove/restore/add) keep the
    /// two id spaces aligned.
    pub fn prefix_subgraph(&self, n: usize) -> Graph {
        let n = n.min(self.adj.len());
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = self.adj[..n].to_vec();
        for list in &mut adj {
            list.retain(|&(u, _)| u.index() < n);
        }
        let mut alive = self.alive.clone();
        let mut live_edges = self.live_edges;
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            if (a.index() >= n || b.index() >= n) && alive[i] {
                alive[i] = false;
                live_edges -= 1;
            }
        }
        Graph {
            adj,
            edges: self.edges.clone(),
            alive,
            live_edges,
        }
    }

    /// Returns the live edge set as a sorted list of normalized endpoint
    /// pairs `(min, max)`. Two graphs with equal `canonical_edges` are equal
    /// as labeled multigraphs — used by tests that check e.g. that flat-tree
    /// in Clos mode reproduces the fat-tree exactly.
    pub fn canonical_edges(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = self
            .edges()
            .map(|(_, a, b)| (a.0.min(b.0), a.0.max(b.0)))
            .collect();
        out.sort_unstable();
        out
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph {{ nodes: {}, edges: {} }}",
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::new(2);
        let c = g.add_node();
        assert_eq!(c, NodeId(2));
        let e = g.add_edge(NodeId(0), NodeId(2));
        assert_eq!(g.endpoints(e), (NodeId(0), NodeId(2)));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn parallel_edges_counted() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.edge_multiplicity(NodeId(0), NodeId(1)), 2);
    }

    #[test]
    fn self_loop_degree_once() {
        let mut g = Graph::new(1);
        let e = g.add_edge(NodeId(0), NodeId(0));
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.other_endpoint(e, NodeId(0)), NodeId(0));
    }

    #[test]
    fn remove_and_restore() {
        let mut g = Graph::new(3);
        let e0 = g.add_edge(NodeId(0), NodeId(1));
        let e1 = g.add_edge(NodeId(1), NodeId(2));
        assert!(g.remove_edge(e0));
        assert!(!g.remove_edge(e0), "double remove is a no-op");
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.edge_alive(e1));
        assert!(g.restore_edge(e0));
        assert!(!g.restore_edge(e0), "double restore is a no-op");
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn edge_ids_stable_after_removal() {
        let mut g = Graph::new(4);
        let e0 = g.add_edge(NodeId(0), NodeId(1));
        let _e1 = g.add_edge(NodeId(1), NodeId(2));
        g.remove_edge(e0);
        let e2 = g.add_edge(NodeId(2), NodeId(3));
        assert_eq!(e2, EdgeId(2), "removed ids are not reused");
        assert_eq!(g.edge_id_bound(), 3);
    }

    #[test]
    fn other_endpoint() {
        let mut g = Graph::new(2);
        let e = g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(g.other_endpoint(e, NodeId(0)), NodeId(1));
        assert_eq!(g.other_endpoint(e, NodeId(1)), NodeId(0));
    }

    #[test]
    fn canonical_edges_sorted_normalized() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(2), NodeId(0));
        g.add_edge(NodeId(1), NodeId(0));
        assert_eq!(g.canonical_edges(), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn from_edges_roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.canonical_edges(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_out_of_bounds_panics() {
        let mut g = Graph::new(1);
        g.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn try_node_reports_bounds() {
        let g = Graph::new(2);
        assert_eq!(g.try_node(1), Ok(NodeId(1)));
        assert_eq!(
            g.try_node(2),
            Err(GraphError::NodeOutOfBounds {
                index: 2,
                node_count: 2
            })
        );
    }

    #[test]
    fn try_add_edge_reports_bounds() {
        let mut g = Graph::new(2);
        assert!(g.try_add_edge(NodeId(0), NodeId(1)).is_ok());
        let err = g.try_add_edge(NodeId(0), NodeId(7)).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfBounds {
                index: 7,
                node_count: 2
            }
        );
        assert_eq!(g.edge_count(), 1, "failed add must not mutate the graph");
    }

    #[test]
    fn prefix_subgraph_preserves_ids() {
        // 0-1-2 switches, 3-4 "servers": edges e0 (0,1), e1 (1,2),
        // e2 (2,3) clipped, e3 (3,4) clipped.
        let mut g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        g.remove_edge(EdgeId(0));
        let view = g.prefix_subgraph(3);
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.edge_id_bound(), g.edge_id_bound(), "same id space");
        assert_eq!(view.edge_count(), 1);
        assert!(!view.edge_alive(EdgeId(0)), "removed edge stays removed");
        assert!(view.edge_alive(EdgeId(1)));
        assert!(!view.edge_alive(EdgeId(2)), "clipped edge is dead");
        // endpoints and adjacency keep parent ids
        assert_eq!(view.endpoints(EdgeId(1)), (NodeId(1), NodeId(2)));
        let nbrs: Vec<_> = view.neighbors(NodeId(2)).collect();
        assert_eq!(nbrs, vec![(NodeId(1), EdgeId(1))]);
        // restoring the tombstoned in-range edge works and matches parent id
        let mut view = view;
        assert!(view.restore_edge(EdgeId(0)));
        assert!(view.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn prefix_subgraph_refuses_clipped_restore() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut view = g.prefix_subgraph(2);
        assert!(!view.edge_alive(EdgeId(1)));
        assert!(!view.restore_edge(EdgeId(1)), "clipped edge is permanent");
        assert_eq!(view.edge_count(), 1);
        // mutating the view keeps id alignment: a fresh edge in the view
        // gets the next id of the shared space
        let e = view.add_edge(NodeId(0), NodeId(1));
        assert_eq!(e, EdgeId(2));
    }

    #[test]
    fn prefix_subgraph_clamps_n() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let view = g.prefix_subgraph(10);
        assert_eq!(view.node_count(), 2);
        assert_eq!(view.edge_count(), 1);
    }

    #[test]
    fn try_id32_overflow() {
        assert_eq!(try_id32(7), Ok(7));
        #[cfg(target_pointer_width = "64")]
        assert_eq!(
            try_id32(usize::MAX),
            Err(GraphError::IdSpaceExhausted { index: usize::MAX })
        );
    }
}
