//! Unweighted shortest paths: single-source BFS and all-pairs tables.
//!
//! The paper's first metric (Figures 5 and 6) is average path length in hops
//! between server pairs. Converter switches are physical-layer devices that
//! contribute no hops (§3.1), so path length is exact BFS distance on the
//! logical switch graph plus the two server–switch links, computed by
//! `ft-metrics` on top of the [`AllPairs`] table built here.

use crate::csr::Csr;
use crate::graph::{id32, Graph, NodeId};
use crate::UNREACHABLE;
use std::collections::VecDeque;

/// Single-source BFS distances in hops.
///
/// Returns one entry per node; unreachable nodes hold [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for (u, _) in g.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// A BFS shortest-path tree: distances plus one parent edge per node.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Distance in hops from the source; [`UNREACHABLE`] if disconnected.
    pub dist: Vec<u32>,
    /// For each node, the edge leading back toward the source
    /// (`None` for the source itself and unreachable nodes).
    pub parent: Vec<Option<(NodeId, crate::EdgeId)>>,
    /// The source node.
    pub source: NodeId,
}

impl BfsTree {
    /// Reconstructs one shortest path from the source to `t` as a node list,
    /// or `None` if `t` is unreachable.
    pub fn path_to(&self, t: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[t.index()] == UNREACHABLE {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// BFS that also records parent pointers for path reconstruction.
pub fn bfs_tree(g: &Graph, src: NodeId) -> BfsTree {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut parent = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for (u, e) in g.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dv + 1;
                parent[u.index()] = Some((v, e));
                queue.push_back(u);
            }
        }
    }
    BfsTree {
        dist,
        parent,
        source: src,
    }
}

/// All-pairs unweighted distances, stored as a dense row-major matrix.
///
/// For the topologies in this workspace (≤ a few thousand switches) repeated
/// BFS is both simpler and faster than Johnson-style approaches. The k = 32
/// fat-tree has 1280 switches → a 1280² `u32` table ≈ 6.5 MB.
///
/// Since the sources are independent, rows are filled in parallel over a
/// frozen [`Csr`] view ([`crate::par`] supplies the workers). Row contents
/// are a pure function of the row's source node, so the table is
/// bit-identical for every thread count.
#[derive(Clone)]
pub struct AllPairs {
    n: usize,
    dist: Vec<u32>,
}

impl AllPairs {
    /// Computes all-pairs shortest path distances by one BFS per node,
    /// parallelized over [`crate::par::thread_count`] workers.
    pub fn compute(g: &Graph) -> Self {
        Self::compute_csr(&Csr::from_graph(g))
    }

    /// Computes distances only from the given source nodes (a partial table).
    ///
    /// Rows are stored in the order sources are given; use [`AllPairs::row`]
    /// with the *source's position in `sources`*, not its node id.
    pub fn compute_from(g: &Graph, sources: &[NodeId]) -> Self {
        Self::compute_from_csr(&Csr::from_graph(g), sources)
    }

    /// [`AllPairs::compute`] over a pre-built CSR view (reuse the view when
    /// computing several tables or mixing APSP with other CSR traversals).
    pub fn compute_csr(csr: &Csr) -> Self {
        Self::compute_csr_with_threads(csr, crate::par::thread_count())
    }

    /// [`AllPairs::compute_csr`] with an explicit worker count (`1` forces
    /// the sequential reference implementation; benchmarks and the
    /// determinism tests pin both sides this way).
    pub fn compute_csr_with_threads(csr: &Csr, threads: usize) -> Self {
        let sources: Vec<NodeId> = (0..csr.node_count()).map(|i| NodeId(id32(i))).collect();
        Self::compute_from_csr_with_threads(csr, &sources, threads)
    }

    /// [`AllPairs::compute_from`] over a pre-built CSR view.
    pub fn compute_from_csr(csr: &Csr, sources: &[NodeId]) -> Self {
        Self::compute_from_csr_with_threads(csr, sources, crate::par::thread_count())
    }

    /// [`AllPairs::compute_from_csr`] with an explicit worker count.
    pub fn compute_from_csr_with_threads(csr: &Csr, sources: &[NodeId], threads: usize) -> Self {
        let n = csr.node_count();
        let mut dist = vec![0u32; sources.len() * n];
        crate::par::fill_rows_with(threads, &mut dist, n, Vec::new, |i, row, queue| {
            // bounds: fill_rows_with yields one row index per source
            csr.bfs_into(sources[i], row, queue);
        });
        AllPairs { n, dist }
    }

    /// Distance between row `i` and node `j` (row-major indexing).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        // bounds: dist has rows·n entries; i < rows and j < n per the ctor
        self.dist[i * self.n + j]
    }

    /// The full distance row for row index `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        // bounds: dist has rows·n entries, so row i ends at (i + 1)·n
        &self.dist[i * self.n..(i + 1) * self.n]
    }

    /// Number of columns (nodes of the underlying graph).
    #[inline]
    pub fn width(&self) -> usize {
        self.n
    }

    /// Number of rows (sources).
    #[inline]
    pub fn rows(&self) -> usize {
        self.dist.len().checked_div(self.n).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// 0 - 1 - 2 - 3 path plus a chord 0-3.
    fn diamond() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn bfs_distances_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, NodeId(0)), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, NodeId(2)), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_takes_chord() {
        let g = diamond();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[3], 1, "chord 0-3 shortens the path");
        assert_eq!(d[2], 2);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bfs_respects_removed_edges() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let (e, _, _) = g.edges().next().unwrap();
        g.remove_edge(e);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[1], UNREACHABLE);
    }

    #[test]
    fn bfs_tree_path_reconstruction() {
        let g = diamond();
        let t = bfs_tree(&g, NodeId(1));
        let p = t.path_to(NodeId(3)).unwrap();
        assert_eq!(p.len() as u32 - 1, t.dist[3]);
        assert_eq!(p.first(), Some(&NodeId(1)));
        assert_eq!(p.last(), Some(&NodeId(3)));
        // consecutive path nodes must be adjacent
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn bfs_tree_unreachable_path_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let t = bfs_tree(&g, NodeId(0));
        assert!(t.path_to(NodeId(2)).is_none());
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = diamond();
        let ap = AllPairs::compute(&g);
        for i in 0..4 {
            assert_eq!(ap.get(i, i), 0);
            for j in 0..4 {
                assert_eq!(ap.get(i, j), ap.get(j, i));
            }
        }
    }

    #[test]
    fn all_pairs_rows_match_bfs_distances() {
        let g = diamond();
        let ap = AllPairs::compute(&g);
        for v in g.nodes() {
            assert_eq!(ap.row(v.index()), bfs_distances(&g, v).as_slice());
        }
    }

    #[test]
    fn all_pairs_parallel_matches_sequential() {
        // 20-node graph: a ring plus a few chords, enough rows for several
        // worker chunks.
        let mut edges: Vec<(u32, u32)> = (0..20).map(|i| (i, (i + 1) % 20)).collect();
        edges.extend([(0, 10), (3, 17), (5, 12)]);
        let g = Graph::from_edges(20, &edges);
        let csr = crate::csr::Csr::from_graph(&g);
        let seq = AllPairs::compute_csr_with_threads(&csr, 1);
        for threads in [2, 3, 8, 64] {
            let par = AllPairs::compute_csr_with_threads(&csr, threads);
            assert_eq!(par.dist, seq.dist, "threads={threads}");
        }
    }

    #[test]
    fn all_pairs_partial_rows() {
        let g = diamond();
        let ap = AllPairs::compute_from(&g, &[NodeId(2), NodeId(0)]);
        assert_eq!(ap.rows(), 2);
        assert_eq!(ap.row(0), bfs_distances(&g, NodeId(2)).as_slice());
        assert_eq!(ap.row(1), bfs_distances(&g, NodeId(0)).as_slice());
    }
}
