//! Unweighted shortest paths: single-source BFS and all-pairs tables.
//!
//! The paper's first metric (Figures 5 and 6) is average path length in hops
//! between server pairs. Converter switches are physical-layer devices that
//! contribute no hops (§3.1), so path length is exact BFS distance on the
//! logical switch graph plus the two server–switch links, computed by
//! `ft-metrics` on top of the [`AllPairs`] table built here.

use crate::graph::{Graph, NodeId};
use crate::UNREACHABLE;
use std::collections::VecDeque;

/// Single-source BFS distances in hops.
///
/// Returns one entry per node; unreachable nodes hold [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for (u, _) in g.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// A BFS shortest-path tree: distances plus one parent edge per node.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Distance in hops from the source; [`UNREACHABLE`] if disconnected.
    pub dist: Vec<u32>,
    /// For each node, the edge leading back toward the source
    /// (`None` for the source itself and unreachable nodes).
    pub parent: Vec<Option<(NodeId, crate::EdgeId)>>,
    /// The source node.
    pub source: NodeId,
}

impl BfsTree {
    /// Reconstructs one shortest path from the source to `t` as a node list,
    /// or `None` if `t` is unreachable.
    pub fn path_to(&self, t: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[t.index()] == UNREACHABLE {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// BFS that also records parent pointers for path reconstruction.
pub fn bfs_tree(g: &Graph, src: NodeId) -> BfsTree {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut parent = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for (u, e) in g.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dv + 1;
                parent[u.index()] = Some((v, e));
                queue.push_back(u);
            }
        }
    }
    BfsTree {
        dist,
        parent,
        source: src,
    }
}

/// All-pairs unweighted distances, stored as a dense row-major matrix.
///
/// For the topologies in this workspace (≤ a few thousand switches) repeated
/// BFS is both simpler and faster than Johnson-style approaches. The k = 32
/// fat-tree has 1280 switches → a 1280² `u32` table ≈ 6.5 MB.
#[derive(Clone)]
pub struct AllPairs {
    n: usize,
    dist: Vec<u32>,
}

impl AllPairs {
    /// Computes all-pairs shortest path distances by one BFS per node.
    pub fn compute(g: &Graph) -> Self {
        let n = g.node_count();
        let mut dist = Vec::with_capacity(n * n);
        for v in g.nodes() {
            dist.extend_from_slice(&bfs_distances(g, v));
        }
        AllPairs { n, dist }
    }

    /// Computes distances only from the given source nodes (a partial table).
    ///
    /// Rows are stored in the order sources are given; use [`AllPairs::row`]
    /// with the *source's position in `sources`*, not its node id.
    pub fn compute_from(g: &Graph, sources: &[NodeId]) -> Self {
        let n = g.node_count();
        let mut dist = Vec::with_capacity(sources.len() * n);
        for &v in sources {
            dist.extend_from_slice(&bfs_distances(g, v));
        }
        AllPairs { n, dist }
    }

    /// Distance between row `i` and node `j` (row-major indexing).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        // bounds: dist has rows·n entries; i < rows and j < n per the ctor
        self.dist[i * self.n + j]
    }

    /// The full distance row for row index `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        // bounds: dist has rows·n entries, so row i ends at (i + 1)·n
        &self.dist[i * self.n..(i + 1) * self.n]
    }

    /// Number of columns (nodes of the underlying graph).
    #[inline]
    pub fn width(&self) -> usize {
        self.n
    }

    /// Number of rows (sources).
    #[inline]
    pub fn rows(&self) -> usize {
        self.dist.len().checked_div(self.n).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// 0 - 1 - 2 - 3 path plus a chord 0-3.
    fn diamond() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn bfs_distances_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, NodeId(0)), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, NodeId(2)), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_takes_chord() {
        let g = diamond();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[3], 1, "chord 0-3 shortens the path");
        assert_eq!(d[2], 2);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bfs_respects_removed_edges() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let (e, _, _) = g.edges().next().unwrap();
        g.remove_edge(e);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[1], UNREACHABLE);
    }

    #[test]
    fn bfs_tree_path_reconstruction() {
        let g = diamond();
        let t = bfs_tree(&g, NodeId(1));
        let p = t.path_to(NodeId(3)).unwrap();
        assert_eq!(p.len() as u32 - 1, t.dist[3]);
        assert_eq!(p.first(), Some(&NodeId(1)));
        assert_eq!(p.last(), Some(&NodeId(3)));
        // consecutive path nodes must be adjacent
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn bfs_tree_unreachable_path_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let t = bfs_tree(&g, NodeId(0));
        assert!(t.path_to(NodeId(2)).is_none());
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = diamond();
        let ap = AllPairs::compute(&g);
        for i in 0..4 {
            assert_eq!(ap.get(i, i), 0);
            for j in 0..4 {
                assert_eq!(ap.get(i, j), ap.get(j, i));
            }
        }
    }

    #[test]
    fn all_pairs_partial_rows() {
        let g = diamond();
        let ap = AllPairs::compute_from(&g, &[NodeId(2), NodeId(0)]);
        assert_eq!(ap.rows(), 2);
        assert_eq!(ap.row(0), bfs_distances(&g, NodeId(2)).as_slice());
        assert_eq!(ap.row(1), bfs_distances(&g, NodeId(0)).as_slice());
    }
}
