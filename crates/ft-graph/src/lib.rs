//! Graph substrate for the flat-tree reproduction.
//!
//! This crate provides the graph data structures and algorithms that every
//! other crate in the workspace builds on:
//!
//! * [`Graph`] — an undirected multigraph with stable node and edge
//!   identifiers. Data center topologies routinely contain parallel links
//!   (e.g. the double side connectors between flat-tree Pods), so parallel
//!   edges are first-class citizens rather than an error.
//! * [`bfs`] — single-source and all-pairs unweighted shortest paths. Path
//!   length in hops is the paper's first evaluation metric (Figures 5 and 6).
//! * [`dijkstra`](mod@dijkstra) — single-source shortest paths under arbitrary non-negative
//!   per-edge lengths. The Fleischer–Garg–Könemann FPTAS in `ft-mcf` re-runs
//!   Dijkstra with exponentially-reweighted edge lengths on every iteration.
//! * [`yen`] — Yen's k-shortest loopless paths. The paper routes approximated
//!   random graphs with k-shortest-paths routing (§2.6, following Jellyfish).
//! * [`maxflow`] — Dinic's maximum flow, used for cut-based throughput upper
//!   bounds and as a test oracle for the LP/FPTAS solvers.
//! * [`bridges`](mod@bridges) — cut-edge detection (single points of failure).
//! * [`stats`] — degree histograms, connectivity, diameter.
//!
//! # Design notes
//!
//! The types here are deliberately simple: index-based adjacency lists with
//! `u32` identifiers, no generics over node/edge payloads, no interior
//! mutability. Payloads (device kinds, link capacities) live in the layers
//! that own them (`ft-topo`, `ft-mcf`), keyed by the stable ids. This keeps
//! the algorithms monomorphic, cache-friendly and trivially testable.
//!
//! Edge removal uses tombstones so that edge ids stay stable across failure
//! injection (`ft-sim` knocks out links and re-runs routing).

// Unit tests are exempt from the panic-free policy (see DESIGN.md,
// "Static analysis & error-handling policy").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod bridges;
pub mod csr;
pub mod dijkstra;
pub mod dist;
pub mod error;
pub mod graph;
pub mod maxflow;
pub mod par;
pub mod stats;
pub mod yen;

pub use bfs::{bfs_distances, bfs_tree, AllPairs};
pub use bridges::bridges;
pub use csr::Csr;
pub use dijkstra::{dijkstra, dijkstra_csr, DijkstraResult};
pub use dist::DistMatrix;
pub use error::GraphError;
pub use graph::{id32, try_id32, EdgeId, Graph, NodeId};
pub use maxflow::FlowNetwork;
pub use stats::{degree_histogram, diameter, is_connected};
pub use yen::{k_shortest_paths, Path};

/// Distance value used by unweighted searches for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Unreachable sentinel of the compact `u16` tables ([`DistMatrix`]).
pub const UNREACHABLE16: u16 = u16::MAX;
