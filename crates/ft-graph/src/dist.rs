//! Compact all-pairs distance tables: `u16` storage and a multi-source
//! bitset BFS kernel.
//!
//! [`AllPairs`](crate::AllPairs) stores `u32` hop counts — at k = 64 a full
//! fat-tree table is 5,120² × 4 B ≈ 100 MB, and k = 128 (20,480 switches)
//! is 1.6 GB, simply infeasible. Every topology in this workspace has a
//! diameter of a few hops, so [`DistMatrix`] stores the same table as flat
//! `u16` hop counts (k = 64 → 50 MB) and fills it with a kernel that
//! advances **64 sources per `u64` word** over the frozen [`Csr`]: one
//! level-synchronous sweep propagates each frontier word to its neighbors
//! with a single OR, and `new = next & !seen` (the classic frontier-AND
//! trick) extracts exactly the (source, node) pairs discovered this level.
//! Compared with 64 independent queue-based BFS runs, each adjacency edge
//! is walked once per *batch* instead of once per *source* — the win that
//! makes k = 64 full tables routine (DESIGN.md §15).
//!
//! Totality: a finite distance never exceeds `n − 1`, so the constructors
//! reject graphs with `n ≥ u16::MAX` nodes up front
//! ([`GraphError::DistanceOverflow`]) and every stored level fits below the
//! [`UNREACHABLE16`] sentinel.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::graph::{id32, Graph, NodeId};
use crate::UNREACHABLE16;

/// Sources advanced per `u64` word by the bitset kernel.
const BATCH: usize = 64;

/// Reusable per-worker state for the multi-source bitset BFS: one `u64`
/// word per node for the seen/frontier/next masks, plus the sparse lists of
/// nodes currently carrying a nonzero word (so a sweep touches only the
/// active part of the graph, not all `n` nodes per level).
#[derive(Default)]
pub struct MsBfsScratch {
    seen: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
    frontier_nodes: Vec<u32>,
    touched: Vec<u32>,
}

/// One batched BFS: distances from up to [`BATCH`] `sources` into `rows`
/// (row `b` = distances from `sources[b]`, row-major, `n` columns each).
///
/// The caller guarantees `csr.node_count() < u16::MAX` (checked once by the
/// [`DistMatrix`] constructors).
fn ms_bfs_batch(csr: &Csr, sources: &[NodeId], rows: &mut [u16], scratch: &mut MsBfsScratch) {
    let n = csr.node_count();
    debug_assert!(sources.len() <= BATCH);
    debug_assert_eq!(rows.len(), sources.len() * n);
    rows.fill(UNREACHABLE16);
    scratch.seen.clear();
    scratch.seen.resize(n, 0);
    scratch.frontier.clear();
    scratch.frontier.resize(n, 0);
    scratch.next.clear();
    scratch.next.resize(n, 0);
    scratch.frontier_nodes.clear();
    scratch.touched.clear();

    for (b, s) in sources.iter().enumerate() {
        let v = s.index();
        let bit = 1u64 << b;
        // bounds: constructors validated every source id against n
        if scratch.frontier[v] == 0 {
            scratch.frontier_nodes.push(s.0);
        }
        scratch.frontier[v] |= bit;
        scratch.seen[v] |= bit;
        // bounds: b < sources.len() and v < n, so b·n + v < rows.len()
        rows[b * n + v] = 0;
    }

    let mut level: u16 = 0;
    while !scratch.frontier_nodes.is_empty() {
        // Never saturates: levels are bounded by n − 1 < u16::MAX − 1.
        level = level.saturating_add(1);

        // Propagate every active frontier word to its neighbors with one OR
        // per adjacency entry; `touched` records nodes whose next-word went
        // nonzero so the harvest below stays sparse.
        for &v in &scratch.frontier_nodes {
            // bounds: frontier_nodes only ever holds valid node ids < n
            let fv = scratch.frontier[v as usize];
            for &t in csr.targets(v as usize) {
                let tu = t as usize;
                // bounds: CSR targets are valid node ids < n
                if scratch.next[tu] == 0 {
                    scratch.touched.push(t);
                }
                scratch.next[tu] |= fv;
            }
        }
        for &v in &scratch.frontier_nodes {
            // bounds: same node ids as the propagate loop
            scratch.frontier[v as usize] = 0;
        }
        scratch.frontier_nodes.clear();

        // Harvest: the sources that reach `t` for the first time this level
        // are exactly next & !seen — record the level for each set bit and
        // promote the word to the next frontier.
        for &t in &scratch.touched {
            let tu = t as usize;
            // bounds: touched holds valid node ids < n
            let new = scratch.next[tu] & !scratch.seen[tu];
            scratch.next[tu] = 0;
            if new != 0 {
                scratch.seen[tu] |= new;
                scratch.frontier[tu] = new;
                scratch.frontier_nodes.push(t);
                let mut bits = new;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    // bounds: bit b was seeded from sources[b], so b is a
                    // valid row and b·n + tu < rows.len()
                    rows[b * n + tu] = level;
                    bits &= bits - 1;
                }
            }
        }
        scratch.touched.clear();
    }
}

/// All-pairs (or many-source) unweighted distances in compact `u16`
/// hop counts.
///
/// The drop-in successor to [`AllPairs`](crate::AllPairs) for the hot
/// paths: same row-major layout and indexing contract, half the memory
/// traffic, and filled by the multi-source bitset BFS kernel (see the
/// module docs) instead of one queue-based BFS per row. Batches of 64
/// sources are distributed over [`crate::par`] workers, and each batch's
/// content depends only on its batch index — the table is bit-identical
/// for every thread count.
///
/// Unreachable pairs hold [`UNREACHABLE16`]; construction fails with
/// [`GraphError::DistanceOverflow`] when the graph has too many nodes for
/// finite distances to stay below the sentinel.
#[derive(Clone)]
pub struct DistMatrix {
    n: usize,
    dist: Vec<u16>,
}

impl DistMatrix {
    /// Rejects graphs whose finite distances could collide with
    /// [`UNREACHABLE16`].
    fn check_width(n: usize) -> Result<(), GraphError> {
        if n >= u16::MAX as usize {
            return Err(GraphError::DistanceOverflow { node_count: n });
        }
        Ok(())
    }

    /// Validates that every source id is a node of the graph.
    fn check_sources(n: usize, sources: &[NodeId]) -> Result<(), GraphError> {
        for s in sources {
            if s.index() >= n {
                return Err(GraphError::NodeOutOfBounds {
                    index: s.index(),
                    node_count: n,
                });
            }
        }
        Ok(())
    }

    /// Full all-pairs table via the bitset kernel,
    /// [`crate::par::thread_count`] workers.
    pub fn compute(g: &Graph) -> Result<Self, GraphError> {
        Self::compute_csr(&Csr::from_graph(g))
    }

    /// [`DistMatrix::compute`] over a pre-built CSR view.
    pub fn compute_csr(csr: &Csr) -> Result<Self, GraphError> {
        Self::compute_csr_with_threads(csr, crate::par::thread_count())
    }

    /// [`DistMatrix::compute_csr`] with an explicit worker count.
    pub fn compute_csr_with_threads(csr: &Csr, threads: usize) -> Result<Self, GraphError> {
        let sources: Vec<NodeId> = (0..csr.node_count()).map(|i| NodeId(id32(i))).collect();
        Self::compute_from_csr_with_threads(csr, &sources, threads)
    }

    /// Distances from the given sources only (a partial table): row `i`
    /// holds the distances from `sources[i]`, so index rows by *position in
    /// `sources`*, not by node id. This is the entry point of the
    /// symmetry-deduplicated APSP in `ft-topo`, which passes one
    /// representative source per equivalence class.
    pub fn compute_from_csr(csr: &Csr, sources: &[NodeId]) -> Result<Self, GraphError> {
        Self::compute_from_csr_with_threads(csr, sources, crate::par::thread_count())
    }

    /// [`DistMatrix::compute_from_csr`] with an explicit worker count.
    pub fn compute_from_csr_with_threads(
        csr: &Csr,
        sources: &[NodeId],
        threads: usize,
    ) -> Result<Self, GraphError> {
        let n = csr.node_count();
        Self::check_width(n)?;
        Self::check_sources(n, sources)?;
        let mut dist = vec![0u16; sources.len() * n];
        crate::par::fill_chunks_with(
            threads,
            &mut dist,
            BATCH * n,
            MsBfsScratch::default,
            |batch, chunk, scratch| {
                let first = batch * BATCH;
                // bounds: fill_chunks_with hands out BATCH·n-sized chunks of
                // a sources.len()·n buffer, so the batch covers sources
                // [first, first + chunk.len()/n) and n divides chunk.len()
                let batch_sources = &sources[first..first + chunk.len() / n];
                ms_bfs_batch(csr, batch_sources, chunk, scratch);
            },
        );
        Ok(DistMatrix { n, dist })
    }

    /// Sequential scalar reference: one `u16` queue-based BFS per source
    /// ([`Csr::bfs_into_u16`]). Kept as the benchmark baseline and the
    /// correctness oracle for the bitset kernel.
    pub fn compute_scalar_csr(csr: &Csr) -> Result<Self, GraphError> {
        let n = csr.node_count();
        Self::check_width(n)?;
        let mut dist = vec![0u16; n * n];
        let mut queue: Vec<u32> = Vec::with_capacity(n);
        for (i, row) in dist.chunks_mut(n.max(1)).enumerate() {
            csr.bfs_into_u16(NodeId(id32(i)), row, &mut queue);
        }
        Ok(DistMatrix { n, dist })
    }

    /// Builds a matrix directly from rows already laid out row-major
    /// (`rows.len()` must be a multiple of `width`); used by the symmetry
    /// expansion in `ft-topo`.
    pub fn from_rows(width: usize, rows: Vec<u16>) -> Result<Self, GraphError> {
        Self::check_width(width)?;
        if width == 0 || !rows.len().is_multiple_of(width) {
            return Err(GraphError::NodeOutOfBounds {
                index: rows.len(),
                node_count: width,
            });
        }
        Ok(DistMatrix {
            n: width,
            dist: rows,
        })
    }

    /// Distance between row `i` and node `j` (row-major indexing).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u16 {
        // bounds: dist has rows·n entries; i < rows and j < n per the ctor
        self.dist[i * self.n + j]
    }

    /// The full distance row for row index `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u16] {
        // bounds: dist has rows·n entries, so row i ends at (i + 1)·n
        &self.dist[i * self.n..(i + 1) * self.n]
    }

    /// Number of columns (nodes of the underlying graph).
    #[inline]
    pub fn width(&self) -> usize {
        self.n
    }

    /// Number of rows (sources).
    #[inline]
    pub fn rows(&self) -> usize {
        self.dist.len().checked_div(self.n).unwrap_or(0)
    }

    /// Wrapping sum of every entry — the regression-gate checksum used by
    /// `ftctl bench`. On connected graphs this equals the `u32`
    /// [`AllPairs`](crate::AllPairs) sum bit-for-bit (all entries finite);
    /// tables with unreachable pairs differ only by the sentinel width.
    pub fn checksum(&self) -> u64 {
        self.dist
            .iter()
            .fold(0u64, |acc, &d| acc.wrapping_add(u64::from(d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::AllPairs;
    use crate::UNREACHABLE;

    fn assert_matches_allpairs(g: &Graph) {
        let csr = Csr::from_graph(g);
        let ap = AllPairs::compute_csr_with_threads(&csr, 1);
        let dm = DistMatrix::compute_csr_with_threads(&csr, 1).unwrap();
        let scalar = DistMatrix::compute_scalar_csr(&csr).unwrap();
        assert_eq!(dm.width(), ap.width());
        assert_eq!(dm.rows(), ap.rows());
        for i in 0..dm.rows() {
            for j in 0..dm.width() {
                let a = ap.get(i, j);
                let d = dm.get(i, j);
                if a == UNREACHABLE {
                    assert_eq!(d, UNREACHABLE16, "({i},{j}) unreachable");
                } else {
                    assert_eq!(u32::from(d), a, "({i},{j})");
                }
                assert_eq!(scalar.get(i, j), d, "scalar vs bitset at ({i},{j})");
            }
        }
    }

    #[test]
    fn matches_allpairs_on_small_graphs() {
        assert_matches_allpairs(&Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]));
        assert_matches_allpairs(&Graph::from_edges(1, &[]));
        assert_matches_allpairs(&Graph::from_edges(5, &[(0, 1), (3, 4)])); // disconnected
        let mut ring: Vec<(u32, u32)> = (0..9).map(|i| (i, (i + 1) % 9)).collect();
        ring.push((0, 4));
        assert_matches_allpairs(&Graph::from_edges(9, &ring));
    }

    #[test]
    fn matches_allpairs_past_one_batch() {
        // 70 nodes > one 64-source word: ring + chords exercises the
        // second batch and nontrivial levels.
        let mut edges: Vec<(u32, u32)> = (0..70).map(|i| (i, (i + 1) % 70)).collect();
        edges.extend([(0, 35), (10, 50), (20, 60)]);
        assert_matches_allpairs(&Graph::from_edges(70, &edges));
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut edges: Vec<(u32, u32)> = (0..130).map(|i| (i, (i + 1) % 130)).collect();
        edges.extend([(0, 65), (30, 100)]);
        let g = Graph::from_edges(130, &edges);
        let csr = Csr::from_graph(&g);
        let seq = DistMatrix::compute_csr_with_threads(&csr, 1).unwrap();
        for threads in [2, 3, 8] {
            let par = DistMatrix::compute_csr_with_threads(&csr, threads).unwrap();
            assert_eq!(par.dist, seq.dist, "threads={threads}");
        }
    }

    #[test]
    fn partial_rows_follow_source_order() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let csr = Csr::from_graph(&g);
        let dm =
            DistMatrix::compute_from_csr_with_threads(&csr, &[NodeId(2), NodeId(0)], 1).unwrap();
        assert_eq!(dm.rows(), 2);
        assert_eq!(dm.row(0), &[2, 1, 0, 1]);
        assert_eq!(dm.row(1), &[0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_sources_are_allowed() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let csr = Csr::from_graph(&g);
        let dm =
            DistMatrix::compute_from_csr_with_threads(&csr, &[NodeId(1), NodeId(1)], 1).unwrap();
        assert_eq!(dm.row(0), dm.row(1));
        assert_eq!(dm.row(0), &[1, 0, 1]);
    }

    #[test]
    fn rejects_out_of_bounds_source() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let csr = Csr::from_graph(&g);
        assert!(matches!(
            DistMatrix::compute_from_csr_with_threads(&csr, &[NodeId(5)], 1),
            Err(GraphError::NodeOutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn checksum_matches_u32_sum_on_connected_graph() {
        let mut edges: Vec<(u32, u32)> = (0..20).map(|i| (i, (i + 1) % 20)).collect();
        edges.push((3, 12));
        let g = Graph::from_edges(20, &edges);
        let csr = Csr::from_graph(&g);
        let ap = AllPairs::compute_csr_with_threads(&csr, 1);
        let mut u32_sum = 0u64;
        for i in 0..ap.rows() {
            for &d in ap.row(i) {
                u32_sum = u32_sum.wrapping_add(u64::from(d));
            }
        }
        let dm = DistMatrix::compute_csr(&csr).unwrap();
        assert_eq!(dm.checksum(), u32_sum);
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(DistMatrix::from_rows(3, vec![0, 1, 2, 3, 4, 5]).is_ok());
        assert!(DistMatrix::from_rows(3, vec![0, 1]).is_err());
        assert!(DistMatrix::from_rows(0, vec![]).is_err());
        assert!(DistMatrix::from_rows(usize::from(u16::MAX), vec![]).is_err());
    }
}
