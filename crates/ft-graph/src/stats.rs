//! Structural statistics: connectivity, diameter, degree histograms.
//!
//! These feed the validation layer (`ft-core` asserts its wiring properties)
//! and the example binaries that print topology summaries.

use crate::bfs::bfs_distances;
use crate::graph::{id32, Graph, NodeId};
use crate::UNREACHABLE;

/// Whether the graph is connected. The empty graph is considered connected.
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    let d = bfs_distances(g, NodeId(0));
    d.iter().all(|&x| x != UNREACHABLE)
}

/// Number of connected components.
pub fn connected_components(g: &Graph) -> usize {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        count += 1;
        let mut stack = vec![NodeId(id32(start))];
        comp[start] = count;
        while let Some(v) = stack.pop() {
            for (u, _) in g.neighbors(v) {
                if comp[u.index()] == usize::MAX {
                    comp[u.index()] = count;
                    stack.push(u);
                }
            }
        }
    }
    count
}

/// Graph diameter in hops, or `None` if disconnected or empty.
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.node_count() == 0 {
        return None;
    }
    let mut max = 0;
    for v in g.nodes() {
        let d = bfs_distances(g, v);
        for &x in &d {
            if x == UNREACHABLE {
                return None;
            }
            max = max.max(x);
        }
    }
    Some(max)
}

/// Histogram of node degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.nodes() {
        let d = g.degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Mean node degree (0.0 for the empty graph).
pub fn mean_degree(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    let total: usize = g.nodes().map(|v| g.degree(v)).sum();
    total as f64 / g.node_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert_eq!(diameter(&Graph::new(0)), None);
    }

    #[test]
    fn singleton_connected_diameter_zero() {
        let g = Graph::new(1);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(0));
    }

    #[test]
    fn path_diameter() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn cycle_diameter() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert_eq!(connected_components(&g), 2);
    }

    #[test]
    fn components_isolated_nodes() {
        let g = Graph::new(3);
        assert_eq!(connected_components(&g), 3);
    }

    #[test]
    fn degree_histogram_star() {
        // star: center degree 3, leaves degree 1
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 3, 0, 1]);
        assert!((mean_degree(&g) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_respect_removed_edges() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(diameter(&g), Some(1));
        let (e, _, _) = g.edges().next().unwrap();
        g.remove_edge(e);
        assert_eq!(diameter(&g), Some(2));
        assert!(is_connected(&g));
    }
}
