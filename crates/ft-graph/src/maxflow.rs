//! Dinic's maximum-flow algorithm on a directed capacitated network.
//!
//! Used in two places:
//!
//! * `ft-mcf` computes **cut-based upper bounds** on the concurrent-flow rate
//!   λ (for a single hot-spot commodity group, λ ≤ maxflow / total demand),
//!   which double as sanity checks on the FPTAS output;
//! * tests use max-flow as an independent oracle for small LP instances
//!   (single-commodity concurrent flow is exactly max-flow scaled by demand).
//!
//! The implementation is a standard Dinic with BFS level graphs and DFS
//! blocking flows — O(V²E) worst case, far better in practice on unit-ish
//! capacity networks like ours.

/// A directed flow network under construction / after solving.
///
/// Nodes are plain `usize` indices; add edges with [`FlowNetwork::add_edge`].
/// Every edge automatically gets a reverse edge of capacity 0. Undirected
/// links of capacity `c` should be added as two directed edges of capacity
/// `c` each (the convention used by the throughput methodology in the paper,
/// where each direction of a link carries one unit independently).
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// head node of each arc
    to: Vec<usize>,
    /// remaining capacity of each arc
    cap: Vec<f64>,
    /// arcs leaving each node (indices into `to`/`cap`)
    out: Vec<Vec<usize>>,
    /// original capacity, to report flow per arc
    orig_cap: Vec<f64>,
}

impl FlowNetwork {
    /// Creates an empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            out: vec![Vec::new(); n],
            orig_cap: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Adds a directed arc `u → v` with the given capacity; returns the arc
    /// index (the implicit reverse arc is `index ^ 1`).
    ///
    /// # Panics
    /// Panics if capacity is negative or NaN, or endpoints out of bounds.
    pub fn add_edge(&mut self, u: usize, v: usize, capacity: f64) -> usize {
        assert!(capacity >= 0.0 && !capacity.is_nan(), "bad capacity");
        assert!(
            u < self.out.len() && v < self.out.len(),
            "node out of bounds"
        );
        let idx = self.to.len();
        self.to.push(v);
        self.cap.push(capacity);
        self.orig_cap.push(capacity);
        self.out[u].push(idx);
        self.to.push(u);
        self.cap.push(0.0);
        self.orig_cap.push(0.0);
        self.out[v].push(idx + 1);
        idx
    }

    /// Flow currently routed over arc `idx` (after [`FlowNetwork::max_flow`]).
    pub fn flow(&self, idx: usize) -> f64 {
        self.orig_cap[idx] - self.cap[idx]
    }

    /// Computes the maximum `s → t` flow, mutating residual capacities.
    ///
    /// Subsequent calls continue from the current residual state, so call on
    /// a fresh (or cloned) network for independent queries.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        if s == t {
            return 0.0;
        }
        const EPS: f64 = 1e-12;
        let n = self.out.len();
        let mut total = 0.0;
        loop {
            // BFS level graph on residual arcs.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for &a in &self.out[v] {
                    let u = self.to[a];
                    if self.cap[a] > EPS && level[u] == usize::MAX {
                        level[u] = level[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
            if level[t] == usize::MAX {
                break;
            }
            // DFS blocking flow with iteration pointers.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut iter, EPS);
                if pushed <= EPS {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    fn dfs(
        &mut self,
        v: usize,
        t: usize,
        limit: f64,
        level: &[usize],
        iter: &mut [usize],
        eps: f64,
    ) -> f64 {
        if v == t {
            return limit;
        }
        while iter[v] < self.out[v].len() {
            let a = self.out[v][iter[v]];
            let u = self.to[a];
            if self.cap[a] > eps && level[u] == level[v] + 1 {
                let d = self.dfs(u, t, limit.min(self.cap[a]), level, iter, eps);
                if d > eps {
                    self.cap[a] -= d;
                    self.cap[a ^ 1] += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0.0
    }

    /// Returns the source-side node set of a minimum cut after
    /// [`FlowNetwork::max_flow`] has been run (nodes reachable from `s` in
    /// the residual network).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        const EPS: f64 = 1e-12;
        let mut seen = vec![false; self.out.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &a in &self.out[v] {
                let u = self.to[a];
                if self.cap[a] > EPS && !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut n = FlowNetwork::new(2);
        n.add_edge(0, 1, 3.5);
        assert_eq!(n.max_flow(0, 1), 3.5);
    }

    #[test]
    fn series_bottleneck() {
        let mut n = FlowNetwork::new(3);
        n.add_edge(0, 1, 5.0);
        n.add_edge(1, 2, 2.0);
        assert_eq!(n.max_flow(0, 2), 2.0);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut n = FlowNetwork::new(4);
        n.add_edge(0, 1, 1.0);
        n.add_edge(1, 3, 1.0);
        n.add_edge(0, 2, 2.0);
        n.add_edge(2, 3, 2.0);
        assert_eq!(n.max_flow(0, 3), 3.0);
    }

    #[test]
    fn classic_clrs_example() {
        // CLRS Figure 26.1-style network, max flow 23.
        let mut n = FlowNetwork::new(6);
        n.add_edge(0, 1, 16.0);
        n.add_edge(0, 2, 13.0);
        n.add_edge(1, 2, 10.0);
        n.add_edge(2, 1, 4.0);
        n.add_edge(1, 3, 12.0);
        n.add_edge(3, 2, 9.0);
        n.add_edge(2, 4, 14.0);
        n.add_edge(4, 3, 7.0);
        n.add_edge(3, 5, 20.0);
        n.add_edge(4, 5, 4.0);
        assert_eq!(n.max_flow(0, 5), 23.0);
    }

    #[test]
    fn requires_augmenting_through_reverse_edge() {
        // The crossing-path example where naive greedy fails without
        // residual arcs.
        let mut n = FlowNetwork::new(4);
        n.add_edge(0, 1, 1.0);
        n.add_edge(0, 2, 1.0);
        n.add_edge(1, 2, 1.0);
        n.add_edge(1, 3, 1.0);
        n.add_edge(2, 3, 1.0);
        assert_eq!(n.max_flow(0, 3), 2.0);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut n = FlowNetwork::new(3);
        n.add_edge(0, 1, 1.0);
        assert_eq!(n.max_flow(0, 2), 0.0);
    }

    #[test]
    fn s_equals_t() {
        let mut n = FlowNetwork::new(2);
        n.add_edge(0, 1, 1.0);
        assert_eq!(n.max_flow(0, 0), 0.0);
    }

    #[test]
    fn min_cut_matches_flow() {
        let mut n = FlowNetwork::new(3);
        let a = n.add_edge(0, 1, 5.0);
        let b = n.add_edge(1, 2, 2.0);
        let f = n.max_flow(0, 2);
        let side = n.min_cut_source_side(0);
        assert!(side[0] && side[1] && !side[2]);
        // cut capacity across (1 → 2) equals the flow
        assert_eq!(f, 2.0);
        assert_eq!(n.flow(b), 2.0);
        assert_eq!(n.flow(a), 2.0);
    }

    #[test]
    fn flow_conservation() {
        let mut n = FlowNetwork::new(5);
        let edges = [
            (0, 1, 3.0),
            (0, 2, 2.0),
            (1, 2, 1.0),
            (1, 3, 2.0),
            (2, 3, 2.0),
            (3, 4, 4.0),
            (2, 4, 1.0),
        ];
        let idxs: Vec<usize> = edges.iter().map(|&(u, v, c)| n.add_edge(u, v, c)).collect();
        let f = n.max_flow(0, 4);
        assert!(f > 0.0);
        // net flow into each interior node is zero
        for node in 1..4 {
            let mut net = 0.0;
            for (i, &(u, v, _)) in edges.iter().enumerate() {
                let fl = n.flow(idxs[i]);
                if v == node {
                    net += fl;
                }
                if u == node {
                    net -= fl;
                }
            }
            assert!(net.abs() < 1e-9, "conservation violated at {node}: {net}");
        }
    }
}
