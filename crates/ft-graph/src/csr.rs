//! A frozen compressed-sparse-row (CSR) view of a [`Graph`].
//!
//! The [`Graph`] adjacency is a `Vec<Vec<(NodeId, EdgeId)>>` that keeps
//! tombstoned edges in place and filters them on every iteration — the right
//! trade-off for mutation-heavy callers (failure injection), but a poor one
//! for the two hot kernels of the paper's evaluation, which traverse a
//! *fixed* graph thousands of times (BFS-APSP for Figures 5/6, Dijkstra
//! inside the FPTAS for Figures 7/8). [`Csr`] freezes the live adjacency
//! into three contiguous arrays:
//!
//! ```text
//! offsets:  n + 1 cumulative degrees — node v's neighbors live at
//!           targets[offsets[v] .. offsets[v + 1]]
//! targets:  neighbor node ids, in Graph::neighbors iteration order
//! edge_ids: the edge id of each (v, target) entry, parallel to targets
//! ```
//!
//! Neighbor order is exactly [`Graph::neighbors`] order, so every algorithm
//! ported from the `Vec<Vec<…>>` adjacency to the CSR view relaxes edges in
//! the same sequence and produces bit-identical results (the determinism
//! contract in DESIGN.md §10). The view does not observe later mutations of
//! the source graph; rebuild it after `remove_edge`/`restore_edge`.

use crate::graph::{id32, EdgeId, Graph, NodeId};
use crate::UNREACHABLE;

/// Frozen CSR adjacency of the live edges of a [`Graph`].
///
/// # Example
///
/// ```
/// use ft_graph::{Csr, Graph};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let csr = Csr::from_graph(&g);
/// assert_eq!(csr.node_count(), 3);
/// assert_eq!(csr.degree(1), 2);
/// assert_eq!(csr.targets(1), &[0, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct Csr {
    /// `n + 1` cumulative degrees; node `v` owns entries
    /// `offsets[v]..offsets[v + 1]` of `targets`/`edge_ids`.
    offsets: Vec<u32>,
    /// Neighbor node ids, concatenated per node.
    targets: Vec<u32>,
    /// Edge id of each adjacency entry, parallel to `targets`.
    edge_ids: Vec<u32>,
}

impl Csr {
    /// Freezes the live adjacency of `g`, preserving neighbor order.
    pub fn from_graph(g: &Graph) -> Csr {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut edge_ids = Vec::new();
        offsets.push(0);
        for v in g.nodes() {
            for (u, e) in g.neighbors(v) {
                targets.push(u.0);
                edge_ids.push(e.0);
            }
            offsets.push(id32(targets.len()));
        }
        Csr {
            offsets,
            targets,
            edge_ids,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of adjacency entries (each undirected edge appears twice,
    /// self-loops once).
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }

    /// The half-open `targets`/`edge_ids` range owned by node `v`.
    #[inline]
    fn range(&self, v: usize) -> std::ops::Range<usize> {
        // bounds: offsets has node_count + 1 entries, so v + 1 is in range
        // for every valid node index v
        self.offsets[v] as usize..self.offsets[v + 1] as usize
    }

    /// Live degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.range(v).len()
    }

    /// Neighbor node ids of `v`, in [`Graph::neighbors`] order.
    #[inline]
    pub fn targets(&self, v: usize) -> &[u32] {
        &self.targets[self.range(v)]
    }

    /// Edge ids of `v`'s adjacency entries, parallel to [`Csr::targets`].
    #[inline]
    pub fn edge_ids(&self, v: usize) -> &[u32] {
        &self.edge_ids[self.range(v)]
    }

    /// Iterates `(neighbor, edge)` pairs of `v`, mirroring
    /// [`Graph::neighbors`].
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let r = self.range(v.index());
        self.targets[r.clone()]
            .iter()
            .zip(&self.edge_ids[r])
            .map(|(&t, &e)| (NodeId(t), EdgeId(e)))
    }

    /// Single-source BFS hop distances written into `dist` (length must be
    /// `node_count()`), reusing `queue` as the frontier storage.
    ///
    /// Allocation-free once `queue`'s capacity has grown to `node_count()`;
    /// unreachable nodes hold [`UNREACHABLE`]. Produces exactly the values
    /// of [`crate::bfs_distances`] on the source graph.
    pub fn bfs_into(&self, src: NodeId, dist: &mut [u32], queue: &mut Vec<u32>) {
        debug_assert_eq!(dist.len(), self.node_count());
        dist.fill(UNREACHABLE);
        queue.clear();
        dist[src.index()] = 0;
        queue.push(src.0);
        let mut head = 0usize;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            let dv = dist[v] + 1;
            for &t in self.targets(v) {
                let u = t as usize;
                if dist[u] == UNREACHABLE {
                    dist[u] = dv;
                    queue.push(t);
                }
            }
        }
    }

    /// [`Csr::bfs_into`] with compact `u16` hop counts: the scalar
    /// reference kernel for [`crate::DistMatrix`].
    ///
    /// Distances saturate at [`crate::UNREACHABLE16`]; callers must ensure
    /// `node_count() < u16::MAX` (the `DistMatrix` constructors check this
    /// once per table) so every finite distance — at most `n − 1` hops —
    /// fits. Unreachable nodes hold [`crate::UNREACHABLE16`].
    pub fn bfs_into_u16(&self, src: NodeId, dist: &mut [u16], queue: &mut Vec<u32>) {
        debug_assert_eq!(dist.len(), self.node_count());
        debug_assert!(self.node_count() < u16::MAX as usize);
        dist.fill(crate::UNREACHABLE16);
        queue.clear();
        dist[src.index()] = 0;
        queue.push(src.0);
        let mut head = 0usize;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            let dv = dist[v].saturating_add(1);
            for &t in self.targets(v) {
                let u = t as usize;
                if dist[u] == crate::UNREACHABLE16 {
                    dist[u] = dv;
                    queue.push(t);
                }
            }
        }
    }

    /// Single-source BFS distances as a fresh vector (the CSR counterpart
    /// of [`crate::bfs_distances`]).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![UNREACHABLE; self.node_count()];
        let mut queue = Vec::with_capacity(self.node_count());
        self.bfs_into(src, &mut dist, &mut queue);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_distances;

    fn diamond() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn preserves_neighbor_order() {
        let g = diamond();
        let csr = Csr::from_graph(&g);
        for v in g.nodes() {
            let from_graph: Vec<_> = g.neighbors(v).collect();
            let from_csr: Vec<_> = csr.neighbors(v).collect();
            assert_eq!(from_graph, from_csr, "adjacency of {v:?}");
        }
        assert_eq!(csr.entry_count(), 8);
    }

    #[test]
    fn filters_dead_edges() {
        let mut g = diamond();
        let (e, _, _) = g.edges().next().unwrap();
        g.remove_edge(e);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.entry_count(), 6);
        for v in g.nodes() {
            assert_eq!(csr.degree(v.index()), g.degree(v));
        }
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(1));
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 3, "two parallel + one self-loop entry");
        assert_eq!(csr.targets(0), &[1, 1]);
    }

    #[test]
    fn bfs_matches_graph_bfs() {
        let g = diamond();
        let csr = Csr::from_graph(&g);
        for v in g.nodes() {
            assert_eq!(csr.bfs_distances(v), bfs_distances(&g, v));
        }
    }

    #[test]
    fn bfs_into_reuses_buffers() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let csr = Csr::from_graph(&g);
        let mut dist = vec![0u32; 4];
        let mut queue = Vec::new();
        csr.bfs_into(NodeId(0), &mut dist, &mut queue);
        assert_eq!(dist, vec![0, 1, UNREACHABLE, UNREACHABLE]);
        // second run must fully overwrite the previous answer
        csr.bfs_into(NodeId(2), &mut dist, &mut queue);
        assert_eq!(dist, vec![UNREACHABLE, UNREACHABLE, 0, UNREACHABLE]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.entry_count(), 0);
    }
}
