//! Scoped parallel-map utilities with a deterministic output contract.
//!
//! Everything in the workspace that fans out — BFS-APSP row fills, the
//! per-instance sweeps in `ft-experiments`, the materialization fills in
//! `ft-serve` — goes through this module so that one rule holds everywhere:
//! **the result is a pure function of the input order, never of thread
//! scheduling**. Each item's result is written to the slot of its *input*
//! index, so `map(items, f)` returns exactly `items.iter().map(f).collect()`
//! regardless of worker count (DESIGN.md §10 spells out the contract).
//!
//! Scheduling is dynamic everywhere: workers claim the next item (or chunk
//! of rows) through a relaxed atomic cursor, so a slow tail item cannot
//! serialize the fill the way a static one-contiguous-chunk-per-worker
//! split can. Dynamic *claiming* with deterministic *placement* keeps both
//! properties at once.
//!
//! Worker count comes from the `FT_THREADS` environment variable when set to
//! a positive integer, otherwise from
//! [`std::thread::available_parallelism`]. `FT_THREADS=1` forces sequential
//! execution, which the determinism tests use to compare against
//! multi-threaded runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Cached handles into the global ft-obs registry: fan-out calls, items
/// executed, row fills, and the worker count last used. Recorded once per
/// `map`/`fill_rows_with` call (not per item), so the pool's exposition
/// lines cost O(1) atomics per fan-out.
struct ParCounters {
    maps: &'static ft_obs::Counter,
    tasks: &'static ft_obs::Counter,
    fills: &'static ft_obs::Counter,
    rows: &'static ft_obs::Counter,
    workers: &'static ft_obs::Gauge,
}

fn obs() -> &'static ParCounters {
    static CELL: OnceLock<ParCounters> = OnceLock::new();
    CELL.get_or_init(|| ParCounters {
        maps: ft_obs::registry::counter("ft_par_maps_total"),
        tasks: ft_obs::registry::counter("ft_par_tasks_total"),
        fills: ft_obs::registry::counter("ft_par_fills_total"),
        rows: ft_obs::registry::counter("ft_par_rows_total"),
        workers: ft_obs::registry::gauge("ft_par_workers"),
    })
}

/// Minimum total cell count for [`fill_rows_with`] / [`fill_chunks_with`]
/// to fan out. Below this, thread spawn + join overhead exceeds the win:
/// with the row-parallel `u32` BFS fill, the k=32 APSP (1280² ≈ 1.6M cells)
/// measured roughly even (BENCH_hotpaths.json before this kernel: 30.5 ms
/// parallel vs 32.2 ms sequential), so fills under ~2M cells run on the
/// calling thread. Re-derived against the multi-source bitset kernel
/// (DESIGN.md §15): its batches are ~64× coarser than rows, so spawn
/// overhead is amortized even earlier and the same 2M-cell floor remains
/// comfortably conservative — k=32 (1.6M cells) stays sequential, k=64
/// (26M cells) fans out. Results are identical either way (the fill
/// contract is deterministic); only the wall time changes.
pub const PAR_FILL_MIN_CELLS: usize = 1 << 21;

/// How many chunks each worker should get on average in
/// [`fill_rows_with`]: oversubscription lets the dynamic cursor absorb
/// per-row cost variance (BFS from a core switch touches more of the graph
/// than BFS from an edge switch) without the tail imbalance of the old
/// one-contiguous-chunk-per-worker split.
const CHUNKS_PER_WORKER: usize = 8;

/// Number of worker threads to use: `FT_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (falling back
/// to 1 when even that is unavailable).
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("FT_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item and collects the results in input order, using
/// [`thread_count`] workers.
///
/// Equivalent to `items.iter().map(f).collect()` — bit-for-bit, for any
/// worker count. A panic in `f` propagates to the caller.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with(thread_count(), items, f)
}

/// [`map`] with an explicit worker count (used by benchmarks and the
/// determinism tests to pin sequential vs parallel runs).
///
/// Workers claim items dynamically through a relaxed cursor and accumulate
/// `(input_index, result)` pairs in a worker-local buffer; the calling
/// thread merges the buffers into input-order slots after the scope joins.
/// No per-item locking — the old per-item `Mutex<Option<R>>` slot vector
/// paid one lock+unlock per item, pure overhead on fan-outs with thousands
/// of cheap items.
pub fn map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    let c = obs();
    c.maps.incr();
    c.tasks.add(n as u64);
    c.workers.set(workers as u64);
    let _span = ft_obs::span!("par.map", items = n, workers = workers);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor_ref = &cursor;
    // The crossbeam shim's scope propagates worker panics by panicking at
    // join (std::thread::scope semantics), so it never returns `Err`.
    let locals: Vec<Vec<(usize, R)>> = match crossbeam::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move |_| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    if ft_obs::enabled() {
                        // Drain this worker's span buffer before the scope
                        // joins: the TLS destructor only runs at actual
                        // thread exit, which can land after the caller's
                        // sink is flushed or removed.
                        ft_obs::flush();
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }) {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    };

    // Merge worker-local buffers into one slot per input index; placement
    // depends only on the recorded index, so the collected output order is
    // independent of which worker claimed what.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in locals.into_iter().flatten() {
        // bounds: every recorded index came from a cursor claim < n
        slots[i] = Some(r);
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), n);
    out
}

/// [`map_with`] with a per-worker scratch value created by `init` — the
/// map-shaped sibling of [`fill_rows_with`]'s `(init, fill)` pair, for
/// item computations that reuse an expensive buffer (the sharded FPTAS
/// builds one shortest-path tree per item and keeps one `DijkstraScratch`
/// per worker alive across all the items that worker claims).
///
/// The determinism contract is the same as [`map_with`]: results land in
/// input-order slots, so the output is bit-identical for every worker
/// count **provided** `f`'s result does not depend on the scratch's
/// history — `init` must produce interchangeable scratches and `f` must
/// treat the scratch as reusable buffers, not as an accumulator.
pub fn map_init_with<T, S, R, G, F>(threads: usize, items: &[T], init: G, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    let c = obs();
    c.maps.incr();
    c.tasks.add(n as u64);
    c.workers.set(workers as u64);
    let _span = ft_obs::span!("par.map_init", items = n, workers = workers);
    if workers <= 1 {
        let mut scratch = init();
        return items.iter().map(|it| f(&mut scratch, it)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let f = &f;
    let init = &init;
    let cursor_ref = &cursor;
    // Same worker-local (index, result) accumulation as map_with; the only
    // difference is the per-worker scratch threaded through `f`.
    let locals: Vec<Vec<(usize, R)>> = match crossbeam::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move |_| {
                    let mut scratch = init();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut scratch, &items[i])));
                    }
                    if ft_obs::enabled() {
                        // See map_with: drain before the scope joins.
                        ft_obs::flush();
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }) {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    };

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in locals.into_iter().flatten() {
        // bounds: every recorded index came from a cursor claim < n
        slots[i] = Some(r);
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), n);
    out
}

/// Fills `out`, viewed as consecutive rows of `row_len` elements, in
/// parallel: `fill(row_index, row_slice, scratch)` is called exactly once
/// per row, with a per-worker `scratch` created by `init`.
///
/// Rows are grouped into ~[`CHUNKS_PER_WORKER`]× more chunks than workers
/// and claimed dynamically through a relaxed cursor (see
/// [`fill_chunks_with`]), so a run of expensive rows cannot leave the other
/// workers idle. Writes stay disjoint — each chunk is a distinct `&mut`
/// split of `out` — and each row's content depends only on its row index,
/// so the fill is deterministic for the same reason as [`map`].
///
/// `out.len()` must be a multiple of `row_len`; `row_len == 0` is a no-op.
pub fn fill_rows_with<T, S, G, F>(threads: usize, out: &mut [T], row_len: usize, init: G, fill: F)
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    if row_len == 0 {
        return;
    }
    debug_assert_eq!(out.len() % row_len, 0);
    let rows = out.len() / row_len;
    let workers = if out.len() < PAR_FILL_MIN_CELLS {
        1 // small fill: fan-out overhead dominates, stay on this thread
    } else {
        threads.min(rows).max(1)
    };
    let pc = obs();
    pc.fills.incr();
    pc.rows.add(rows as u64);
    pc.workers.set(workers as u64);
    let _span = ft_obs::span!("par.fill_rows", rows = rows, workers = workers);
    if workers <= 1 {
        let mut scratch = init();
        for (i, row) in out.chunks_mut(row_len).enumerate() {
            fill(i, row, &mut scratch);
        }
        return;
    }

    let chunk_rows = rows.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    fill_chunks_inner(
        workers,
        out,
        chunk_rows * row_len,
        &init,
        &|chunk_index, chunk: &mut [T], scratch: &mut S| {
            let first_row = chunk_index * chunk_rows;
            for (j, row) in chunk.chunks_mut(row_len).enumerate() {
                fill(first_row + j, row, scratch);
            }
        },
    );
}

/// Fills `out`, viewed as consecutive chunks of `chunk_len` elements (the
/// last chunk may be shorter), in parallel: `fill(chunk_index, chunk_slice,
/// scratch)` is called exactly once per chunk with a per-worker `scratch`.
///
/// This is the primitive under [`fill_rows_with`], exposed for kernels
/// whose natural work unit is coarser than one row — the multi-source
/// bitset BFS writes 64 rows per batch, so its chunk is `64 × row_len`
/// cells. Chunks are claimed dynamically (relaxed cursor) but each chunk's
/// content depends only on its chunk index, so the output is bit-identical
/// for every worker count. Fills under [`PAR_FILL_MIN_CELLS`] cells run on
/// the calling thread; `chunk_len == 0` is a no-op.
pub fn fill_chunks_with<T, S, G, F>(
    threads: usize,
    out: &mut [T],
    chunk_len: usize,
    init: G,
    fill: F,
) where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    if chunk_len == 0 || out.is_empty() {
        return;
    }
    let chunks = out.len().div_ceil(chunk_len);
    let workers = if out.len() < PAR_FILL_MIN_CELLS {
        1 // same small-fill rule as fill_rows_with
    } else {
        threads.min(chunks).max(1)
    };
    let pc = obs();
    pc.fills.incr();
    pc.rows.add(chunks as u64);
    pc.workers.set(workers as u64);
    let _span = ft_obs::span!("par.fill_chunks", chunks = chunks, workers = workers);
    if workers <= 1 {
        let mut scratch = init();
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            fill(i, chunk, &mut scratch);
        }
        return;
    }
    fill_chunks_inner(workers, out, chunk_len, &init, &fill);
}

/// Shared parallel body of [`fill_rows_with`] and [`fill_chunks_with`]:
/// splits `out` into `chunk_len`-sized `&mut` chunks, parks each behind a
/// `Mutex<Option<…>>` take-slot, and lets `workers` threads claim chunk
/// indices through a relaxed cursor. One uncontended lock per *chunk* (not
/// per item) transfers the `&mut` split to whichever worker claimed it.
fn fill_chunks_inner<T, S, G, F>(
    workers: usize,
    out: &mut [T],
    chunk_len: usize,
    init: &G,
    fill: &F,
) where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    type ChunkSlot<'a, T> = parking_lot::Mutex<Option<(usize, &'a mut [T])>>;
    let slots: Vec<ChunkSlot<'_, T>> = out
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, chunk)| parking_lot::Mutex::new(Some((i, chunk))))
        .collect();
    let num = slots.len();
    let cursor = AtomicUsize::new(0);
    let slots_ref = &slots;
    let cursor_ref = &cursor;
    // See `map_with` for why the scope result can be ignored.
    let _ = crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(move |_| {
                let mut scratch = init();
                loop {
                    let c = cursor_ref.fetch_add(1, Ordering::Relaxed);
                    if c >= num {
                        break;
                    }
                    // bounds: c < num == slots.len() checked above
                    let taken = slots_ref[c].lock().take();
                    if let Some((chunk_index, chunk)) = taken {
                        fill(chunk_index, chunk, &mut scratch);
                    }
                }
                if ft_obs::enabled() {
                    // See map_with: drain before the scope joins.
                    ft_obs::flush();
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7] {
            assert_eq!(map_with(threads, &items, |x| x * x), expect);
        }
    }

    #[test]
    fn map_init_matches_map_at_any_worker_count() {
        let items: Vec<u64> = (0..193).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 5] {
            // scratch used as a reusable buffer (its content never leaks
            // into the result), per the map_init_with contract
            let got = map_init_with(
                threads,
                &items,
                || Vec::<u64>::new(),
                |buf, x| {
                    buf.clear();
                    buf.push(*x);
                    buf[0] * 3 + 1
                },
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(map_with(4, &empty, |x| *x), Vec::<u32>::new());
        assert_eq!(map_with(4, &[41u32], |x| x + 1), vec![42]);
    }

    // One test owns every FT_THREADS mutation: the variable is
    // process-global and the default test runner is parallel, so two tests
    // mutating it (the old map_uses_env_thread_count +
    // thread_count_rejects_garbage pair) raced each other.
    #[test]
    fn thread_count_env_parsing() {
        std::env::set_var("FT_THREADS", "3");
        assert_eq!(thread_count(), 3);
        // Not asserting actual concurrency (1-core CI), just that the env
        // path parses and the result stays correct.
        let got = map(&[1u32, 2, 3, 4, 5], |x| x * 2);
        assert_eq!(got, vec![2, 4, 6, 8, 10]);
        std::env::set_var("FT_THREADS", "zero");
        assert!(thread_count() >= 1);
        std::env::set_var("FT_THREADS", "0");
        assert!(thread_count() >= 1);
        std::env::remove_var("FT_THREADS");
    }

    #[test]
    fn fill_rows_matches_sequential() {
        let rows = 13;
        let row_len = 5;
        let fill = |i: usize, row: &mut [u64], scratch: &mut u64| {
            *scratch += 1;
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (i * row_len + j) as u64;
            }
        };
        let mut seq = vec![0u64; rows * row_len];
        fill_rows_with(1, &mut seq, row_len, || 0u64, fill);
        for threads in [2, 4, 16] {
            let mut par = vec![0u64; rows * row_len];
            fill_rows_with(threads, &mut par, row_len, || 0u64, fill);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn fill_rows_above_cutoff_matches_sequential() {
        // exactly PAR_FILL_MIN_CELLS cells so the parallel branch runs
        let row_len = 1 << 11;
        let rows = PAR_FILL_MIN_CELLS / row_len;
        let fill = |i: usize, row: &mut [u8], _: &mut ()| {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (i.wrapping_mul(31) ^ j) as u8;
            }
        };
        let mut seq = vec![0u8; rows * row_len];
        fill_rows_with(1, &mut seq, row_len, || (), fill);
        let mut par = vec![0u8; rows * row_len];
        fill_rows_with(4, &mut par, row_len, || (), fill);
        assert_eq!(par, seq);
    }

    #[test]
    fn fill_rows_zero_row_len_is_noop() {
        let mut out: Vec<u8> = Vec::new();
        fill_rows_with(4, &mut out, 0, || (), |_, _, _| {});
        assert!(out.is_empty());
    }

    #[test]
    fn fill_chunks_matches_sequential_including_short_tail() {
        // 11 cells in chunks of 4: chunk indices 0,1 full, 2 is a 3-cell
        // tail — the fill must see the same (index, slice) pairs at any
        // worker count.
        let total = 11;
        let chunk_len = 4;
        let fill = |c: usize, chunk: &mut [u32], calls: &mut u32| {
            *calls += 1;
            for (j, cell) in chunk.iter_mut().enumerate() {
                *cell = (c * 100 + j) as u32;
            }
        };
        let mut seq = vec![0u32; total];
        fill_chunks_with(1, &mut seq, chunk_len, || 0u32, fill);
        for threads in [2, 3, 8] {
            let mut par = vec![0u32; total];
            fill_chunks_with(threads, &mut par, chunk_len, || 0u32, fill);
            assert_eq!(par, seq, "threads={threads}");
        }
        assert_eq!(&seq[8..], &[200, 201, 202], "tail chunk sees index 2");
    }

    #[test]
    fn fill_chunks_above_cutoff_matches_sequential() {
        let chunk_len = 1 << 12;
        let total = PAR_FILL_MIN_CELLS + 17; // force a short tail chunk too
        let fill = |c: usize, chunk: &mut [u8], _: &mut ()| {
            for (j, cell) in chunk.iter_mut().enumerate() {
                *cell = (c.wrapping_mul(37) ^ j) as u8;
            }
        };
        let mut seq = vec![0u8; total];
        fill_chunks_with(1, &mut seq, chunk_len, || (), fill);
        let mut par = vec![0u8; total];
        fill_chunks_with(4, &mut par, chunk_len, || (), fill);
        assert_eq!(par, seq);
    }

    #[test]
    fn map_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            map_with(2, &[1u32, 2, 3, 4], |x| {
                assert!(*x != 3, "boom");
                *x
            })
        });
        assert!(caught.is_err());
    }
}
