//! Scoped parallel-map utilities with a deterministic output contract.
//!
//! Everything in the workspace that fans out — BFS-APSP row fills, the
//! per-instance sweeps in `ft-experiments`, the materialization fills in
//! `ft-serve` — goes through this module so that one rule holds everywhere:
//! **the result is a pure function of the input order, never of thread
//! scheduling**. Each item's result is written to the slot of its *input*
//! index, so `map(items, f)` returns exactly `items.iter().map(f).collect()`
//! regardless of worker count (DESIGN.md §10 spells out the contract).
//!
//! Worker count comes from the `FT_THREADS` environment variable when set to
//! a positive integer, otherwise from
//! [`std::thread::available_parallelism`]. `FT_THREADS=1` forces sequential
//! execution, which the determinism tests use to compare against
//! multi-threaded runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Cached handles into the global ft-obs registry: fan-out calls, items
/// executed, row fills, and the worker count last used. Recorded once per
/// `map`/`fill_rows_with` call (not per item), so the pool's exposition
/// lines cost O(1) atomics per fan-out.
struct ParCounters {
    maps: &'static ft_obs::Counter,
    tasks: &'static ft_obs::Counter,
    fills: &'static ft_obs::Counter,
    rows: &'static ft_obs::Counter,
    workers: &'static ft_obs::Gauge,
}

fn obs() -> &'static ParCounters {
    static CELL: OnceLock<ParCounters> = OnceLock::new();
    CELL.get_or_init(|| ParCounters {
        maps: ft_obs::registry::counter("ft_par_maps_total"),
        tasks: ft_obs::registry::counter("ft_par_tasks_total"),
        fills: ft_obs::registry::counter("ft_par_fills_total"),
        rows: ft_obs::registry::counter("ft_par_rows_total"),
        workers: ft_obs::registry::gauge("ft_par_workers"),
    })
}

/// Minimum total cell count (`rows * row_len`) for [`fill_rows_with`] to
/// fan out. Below this, thread spawn + join overhead exceeds the win: the
/// k=32 APSP fill (1280² ≈ 1.6M cells) measured *slower* parallel than
/// sequential (BENCH_hotpaths.json, 46.9 ms vs 45.0 ms), so fills under
/// ~2M cells run on the calling thread. Results are identical either way
/// (the fill contract is deterministic); only the wall time changes.
pub const PAR_FILL_MIN_CELLS: usize = 1 << 21;

/// Number of worker threads to use: `FT_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (falling back
/// to 1 when even that is unavailable).
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("FT_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item and collects the results in input order, using
/// [`thread_count`] workers.
///
/// Equivalent to `items.iter().map(f).collect()` — bit-for-bit, for any
/// worker count. A panic in `f` propagates to the caller.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with(thread_count(), items, f)
}

/// [`map`] with an explicit worker count (used by benchmarks and the
/// determinism tests to pin sequential vs parallel runs).
pub fn map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    let c = obs();
    c.maps.incr();
    c.tasks.add(n as u64);
    c.workers.set(workers as u64);
    let _span = ft_obs::span!("par.map", items = n, workers = workers);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // One slot per input index; workers claim items dynamically through the
    // cursor but always deposit into the item's own slot, so the collected
    // output order is independent of scheduling.
    let slots: Vec<parking_lot::Mutex<Option<R>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots_ref = &slots;
    let cursor_ref = &cursor;
    // The crossbeam shim's scope propagates worker panics by panicking at
    // join (std::thread::scope semantics), so it never returns `Err` and an
    // unfilled slot below is unreachable in practice.
    let _ = crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(move |_| {
                loop {
                    let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    *slots_ref[i].lock() = Some(r);
                }
                if ft_obs::enabled() {
                    // Drain this worker's span buffer before the scope
                    // joins: the TLS destructor only runs at actual thread
                    // exit, which can land after the caller's sink is
                    // flushed or removed.
                    ft_obs::flush();
                }
            });
        }
    });
    let out: Vec<R> = slots
        .into_iter()
        .filter_map(|slot| slot.into_inner())
        .collect();
    debug_assert_eq!(out.len(), n);
    out
}

/// Fills `out`, viewed as consecutive rows of `row_len` elements, in
/// parallel: `fill(row_index, row_slice, scratch)` is called exactly once
/// per row, with a per-worker `scratch` created by `init`.
///
/// Rows are distributed as contiguous chunks (worker `w` owns rows
/// `[w * rows_per_worker, …)`), so writes are disjoint and no
/// synchronization is needed beyond the scope join. The per-worker scratch
/// lets row kernels (e.g. a BFS frontier queue) stay allocation-free after
/// warm-up. Deterministic for the same reason as [`map`]: each row's
/// content depends only on its row index.
///
/// `out.len()` must be a multiple of `row_len`; `row_len == 0` is a no-op.
pub fn fill_rows_with<T, S, G, F>(threads: usize, out: &mut [T], row_len: usize, init: G, fill: F)
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    if row_len == 0 {
        return;
    }
    debug_assert_eq!(out.len() % row_len, 0);
    let rows = out.len() / row_len;
    let workers = if out.len() < PAR_FILL_MIN_CELLS {
        1 // small fill: fan-out overhead dominates, stay on this thread
    } else {
        threads.min(rows).max(1)
    };
    let pc = obs();
    pc.fills.incr();
    pc.rows.add(rows as u64);
    pc.workers.set(workers as u64);
    let _span = ft_obs::span!("par.fill_rows", rows = rows, workers = workers);
    if workers <= 1 {
        let mut scratch = init();
        for (i, row) in out.chunks_mut(row_len).enumerate() {
            fill(i, row, &mut scratch);
        }
        return;
    }

    // ceil(rows / workers) rows per chunk; the last chunk may be shorter.
    let rows_per_chunk = rows.div_ceil(workers);
    let init = &init;
    let fill = &fill;
    // See `map_with` for why the scope result can be ignored.
    let _ = crossbeam::scope(|s| {
        for (c, chunk) in out.chunks_mut(rows_per_chunk * row_len).enumerate() {
            s.spawn(move |_| {
                let mut scratch = init();
                let first_row = c * rows_per_chunk;
                for (j, row) in chunk.chunks_mut(row_len).enumerate() {
                    fill(first_row + j, row, &mut scratch);
                }
                if ft_obs::enabled() {
                    // See map_with: drain before the scope joins.
                    ft_obs::flush();
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7] {
            assert_eq!(map_with(threads, &items, |x| x * x), expect);
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(map_with(4, &empty, |x| *x), Vec::<u32>::new());
        assert_eq!(map_with(4, &[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn map_uses_env_thread_count() {
        // Not asserting actual concurrency (1-core CI), just that the env
        // path parses and the result stays correct.
        std::env::set_var("FT_THREADS", "3");
        assert_eq!(thread_count(), 3);
        let got = map(&[1u32, 2, 3, 4, 5], |x| x * 2);
        std::env::remove_var("FT_THREADS");
        assert_eq!(got, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn thread_count_rejects_garbage() {
        std::env::set_var("FT_THREADS", "zero");
        let n = thread_count();
        std::env::set_var("FT_THREADS", "0");
        let m = thread_count();
        std::env::remove_var("FT_THREADS");
        assert!(n >= 1);
        assert!(m >= 1);
    }

    #[test]
    fn fill_rows_matches_sequential() {
        let rows = 13;
        let row_len = 5;
        let fill = |i: usize, row: &mut [u64], scratch: &mut u64| {
            *scratch += 1;
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (i * row_len + j) as u64;
            }
        };
        let mut seq = vec![0u64; rows * row_len];
        fill_rows_with(1, &mut seq, row_len, || 0u64, fill);
        for threads in [2, 4, 16] {
            let mut par = vec![0u64; rows * row_len];
            fill_rows_with(threads, &mut par, row_len, || 0u64, fill);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn fill_rows_above_cutoff_matches_sequential() {
        // exactly PAR_FILL_MIN_CELLS cells so the parallel branch runs
        let row_len = 1 << 11;
        let rows = PAR_FILL_MIN_CELLS / row_len;
        let fill = |i: usize, row: &mut [u8], _: &mut ()| {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (i.wrapping_mul(31) ^ j) as u8;
            }
        };
        let mut seq = vec![0u8; rows * row_len];
        fill_rows_with(1, &mut seq, row_len, || (), fill);
        let mut par = vec![0u8; rows * row_len];
        fill_rows_with(4, &mut par, row_len, || (), fill);
        assert_eq!(par, seq);
    }

    #[test]
    fn fill_rows_zero_row_len_is_noop() {
        let mut out: Vec<u8> = Vec::new();
        fill_rows_with(4, &mut out, 0, || (), |_, _, _| {});
        assert!(out.is_empty());
    }

    #[test]
    fn map_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            map_with(2, &[1u32, 2, 3, 4], |x| {
                assert!(*x != 3, "boom");
                *x
            })
        });
        assert!(caught.is_err());
    }
}
