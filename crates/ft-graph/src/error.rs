//! Error type for fallible graph construction and queries.

use std::fmt;

/// Errors produced by the fallible [`Graph`](crate::Graph) constructors.
///
/// The infallible counterparts (`node`, `add_edge`) assert the same
/// conditions; callers that build graphs from untrusted or computed sizes
/// should prefer `try_node` / `try_add_edge` and propagate this error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist.
    NodeOutOfBounds {
        /// The offending node index.
        index: usize,
        /// Number of nodes in the graph at the time of the call.
        node_count: usize,
    },
    /// A dense index no longer fits the `u32` id space.
    IdSpaceExhausted {
        /// The index that overflowed `u32`.
        index: usize,
    },
    /// A graph is too large for the compact `u16` distance matrix: with
    /// `node_count ≥ u16::MAX` a finite hop count could collide with the
    /// [`UNREACHABLE16`](crate::UNREACHABLE16) sentinel.
    DistanceOverflow {
        /// Number of nodes in the offending graph.
        node_count: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfBounds { index, node_count } => {
                write!(
                    f,
                    "node index {index} out of bounds (graph has {node_count} nodes)"
                )
            }
            GraphError::IdSpaceExhausted { index } => {
                write!(f, "index {index} exceeds the u32 id space")
            }
            GraphError::DistanceOverflow { node_count } => {
                write!(
                    f,
                    "graph with {node_count} nodes exceeds the u16 distance range \
                     (max {} nodes)",
                    u16::MAX - 1
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}
