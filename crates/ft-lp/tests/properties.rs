//! Property-based validation of the simplex solver against first
//! principles: optimal solutions must be feasible, and must dominate every
//! sampled feasible point.

use ft_lp::{LpOutcome, LpProblem, Var};
use proptest::prelude::*;

/// A random bounded standard-form LP: maximize c·x, Ax ≤ b, x ≥ 0 with
/// non-negative A rows that include an explicit box constraint per
/// variable so the problem is always bounded and feasible (origin).
#[derive(Debug, Clone)]
struct RandomLp {
    c: Vec<f64>,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
}

fn arb_lp() -> impl Strategy<Value = RandomLp> {
    (1usize..5, 0usize..5).prop_flat_map(|(n, extra_rows)| {
        let c = proptest::collection::vec(-5.0..10.0f64, n);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(0.0..3.0f64, n), 0.5..8.0f64),
            extra_rows,
        );
        (c, rows).prop_map(move |(c, rows)| {
            let mut a = Vec::new();
            let mut b = Vec::new();
            // box constraints keep everything bounded
            for i in 0..n {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                a.push(row);
                b.push(4.0);
            }
            for (row, rhs) in rows {
                a.push(row);
                b.push(rhs);
            }
            RandomLp { c, a, b }
        })
    })
}

fn solve(lp: &RandomLp) -> (f64, Vec<f64>) {
    let mut p = LpProblem::new();
    let vars: Vec<Var> = lp.c.iter().map(|&ci| p.add_var(ci)).collect();
    for (row, &rhs) in lp.a.iter().zip(&lp.b) {
        let terms: Vec<(Var, f64)> = vars.iter().copied().zip(row.iter().copied()).collect();
        p.add_le(&terms, rhs);
    }
    match p.solve() {
        LpOutcome::Optimal(s) => (s.objective, s.values),
        other => panic!("bounded feasible LP reported {other:?}"),
    }
}

fn feasible(lp: &RandomLp, x: &[f64]) -> bool {
    if x.iter().any(|&v| v < -1e-7) {
        return false;
    }
    lp.a.iter().zip(&lp.b).all(|(row, &rhs)| {
        let lhs: f64 = row.iter().zip(x).map(|(a, v)| a * v).sum();
        lhs <= rhs + 1e-7
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The reported optimum is feasible and its objective matches c·x.
    #[test]
    fn optimum_is_feasible_and_consistent(lp in arb_lp()) {
        let (obj, x) = solve(&lp);
        prop_assert!(feasible(&lp, &x), "infeasible optimum {x:?}");
        let recomputed: f64 = lp.c.iter().zip(&x).map(|(c, v)| c * v).sum();
        prop_assert!((obj - recomputed).abs() < 1e-6);
    }

    /// No sampled feasible point beats the reported optimum.
    #[test]
    fn optimum_dominates_samples(
        lp in arb_lp(),
        samples in proptest::collection::vec(
            proptest::collection::vec(0.0..4.0f64, 4), 16)
    ) {
        let (obj, _) = solve(&lp);
        for s in samples {
            let x = &s[..lp.c.len().min(s.len())];
            let mut padded = x.to_vec();
            padded.resize(lp.c.len(), 0.0);
            if feasible(&lp, &padded) {
                let val: f64 = lp.c.iter().zip(&padded).map(|(c, v)| c * v).sum();
                prop_assert!(val <= obj + 1e-6, "sample {val} beats optimum {obj}");
            }
        }
    }

    /// Scaling the objective scales the optimum (for non-negative scale).
    #[test]
    fn objective_scaling(lp in arb_lp(), scale in 0.1..5.0f64) {
        let (obj, _) = solve(&lp);
        let scaled = RandomLp {
            c: lp.c.iter().map(|c| c * scale).collect(),
            ..lp.clone()
        };
        let (obj2, _) = solve(&scaled);
        prop_assert!((obj2 - obj * scale).abs() < 1e-5 * (1.0 + obj.abs()),
                     "{obj2} vs {}", obj * scale);
    }

    /// Adding a constraint never improves the optimum.
    #[test]
    fn adding_constraints_monotone(lp in arb_lp(), rhs in 0.5..6.0f64) {
        let (obj, _) = solve(&lp);
        let mut tightened = lp.clone();
        tightened.a.push(vec![1.0; lp.c.len()]);
        tightened.b.push(rhs);
        let (obj2, _) = solve(&tightened);
        prop_assert!(obj2 <= obj + 1e-6);
    }
}
