//! A dense two-phase simplex linear programming solver.
//!
//! The paper's throughput methodology (§3.1) solves the maximum concurrent
//! multi-commodity flow problem "using a linear programming solver". The
//! authors used an unnamed (presumably commercial) solver; this crate is the
//! from-scratch substitute. It provides **exact** optima for the small
//! instances used in tests and cross-validation, while `ft-mcf` provides the
//! Fleischer–Garg–Könemann FPTAS for large instances.
//!
//! The solver is a textbook dense tableau simplex:
//!
//! * maximization over `x ≥ 0` with `≤`, `≥` and `=` constraints,
//! * phase 1 minimizes the sum of artificial variables to find a basic
//!   feasible solution, phase 2 optimizes the real objective,
//! * Dantzig pricing with a Bland's-rule fallback after an iteration budget
//!   to guarantee termination under degeneracy.
//!
//! Dense tableaus are O(rows × cols) per pivot, which is perfectly adequate
//! for the ≤ few-thousand-variable MCF instances we solve exactly; anything
//! bigger goes through the FPTAS.
//!
//! # Example
//!
//! ```
//! use ft_lp::{LpError, LpProblem};
//!
//! # fn main() -> Result<(), LpError> {
//! // maximize 3x + 2y  s.t.  x + y ≤ 4,  x + 3y ≤ 6
//! let mut lp = LpProblem::new();
//! let x = lp.add_var(3.0);
//! let y = lp.add_var(2.0);
//! lp.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
//! lp.add_le(&[(x, 1.0), (y, 3.0)], 6.0);
//! let sol = lp.solve().optimal()?;
//! assert!((sol.objective - 12.0).abs() < 1e-9); // x = 4, y = 0
//! # Ok(())
//! # }
//! ```

// Unit tests are exempt from the panic-free policy (see DESIGN.md,
// "Static analysis & error-handling policy").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod simplex;

pub use simplex::solve_standard_form;

/// Handle to a decision variable of an [`LpProblem`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Var(pub usize);

/// Comparison direction of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// A linear constraint in sparse form.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// `(variable, coefficient)` terms; duplicate variables are summed.
    pub terms: Vec<(Var, f64)>,
    /// Comparison direction.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: maximize `c·x` subject to linear constraints and
/// `x ≥ 0`.
#[derive(Clone, Debug, Default)]
pub struct LpProblem {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

/// An optimal solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The optimal objective value.
    pub objective: f64,
    /// The optimal variable assignment, indexed by [`Var`].
    pub values: Vec<f64>,
}

impl Solution {
    /// Value of a variable in the optimal assignment.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.0]
    }
}

/// Outcome of [`LpProblem::solve`].
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal(Solution),
    /// The constraint set is empty (no feasible point).
    Infeasible,
    /// The objective is unbounded above over the feasible region.
    Unbounded,
}

/// Error returned when an optimal solution was required but the LP turned
/// out infeasible or unbounded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded above over the feasible region.
    Unbounded,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
        }
    }
}

impl std::error::Error for LpError {}

impl LpOutcome {
    /// Extracts the optimal solution, or reports why there is none.
    ///
    /// Callers that know their model is feasible and bounded (e.g. the MCF
    /// formulations, which always admit the zero flow) typically propagate
    /// the error as an internal-consistency failure.
    pub fn optimal(self) -> Result<Solution, LpError> {
        match self {
            LpOutcome::Optimal(s) => Ok(s),
            LpOutcome::Infeasible => Err(LpError::Infeasible),
            LpOutcome::Unbounded => Err(LpError::Unbounded),
        }
    }
}

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with the given objective coefficient; returns its
    /// handle. Variables are implicitly non-negative.
    pub fn add_var(&mut self, objective_coeff: f64) -> Var {
        assert!(
            objective_coeff.is_finite(),
            "objective coefficient must be finite"
        );
        let v = Var(self.objective.len());
        self.objective.push(objective_coeff);
        v
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a constraint `Σ terms ≤ rhs`.
    pub fn add_le(&mut self, terms: &[(Var, f64)], rhs: f64) {
        self.add_constraint(terms, Cmp::Le, rhs);
    }

    /// Adds a constraint `Σ terms = rhs`.
    pub fn add_eq(&mut self, terms: &[(Var, f64)], rhs: f64) {
        self.add_constraint(terms, Cmp::Eq, rhs);
    }

    /// Adds a constraint `Σ terms ≥ rhs`.
    pub fn add_ge(&mut self, terms: &[(Var, f64)], rhs: f64) {
        self.add_constraint(terms, Cmp::Ge, rhs);
    }

    /// Adds a constraint with an explicit comparison direction.
    ///
    /// # Panics
    /// Panics on out-of-range variables or non-finite coefficients/rhs.
    pub fn add_constraint(&mut self, terms: &[(Var, f64)], cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        for &(v, c) in terms {
            assert!(v.0 < self.objective.len(), "variable {v:?} out of range");
            assert!(c.is_finite(), "coefficient must be finite");
        }
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            cmp,
            rhs,
        });
    }

    /// Solves the problem with the two-phase dense simplex.
    pub fn solve(&self) -> LpOutcome {
        simplex::solve(self)
    }

    pub(crate) fn objective(&self) -> &[f64] {
        &self.objective
    }

    pub(crate) fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(lp: &LpProblem) -> Solution {
        lp.solve().optimal().unwrap()
    }

    #[test]
    fn unconstrained_zero_objective() {
        let mut lp = LpProblem::new();
        let _x = lp.add_var(0.0);
        let s = opt(&lp);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn simple_bounded_max() {
        // max x s.t. x ≤ 7
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_le(&[(x, 1.0)], 7.0);
        let s = opt(&lp);
        assert!((s.objective - 7.0).abs() < 1e-9);
        assert!((s.value(x) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn classic_two_var() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36
        let mut lp = LpProblem::new();
        let x = lp.add_var(3.0);
        let y = lp.add_var(5.0);
        lp.add_le(&[(x, 1.0)], 4.0);
        lp.add_le(&[(y, 2.0)], 12.0);
        lp.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s = opt(&lp);
        assert!((s.objective - 36.0).abs() < 1e-9);
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.value(y) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(0.0);
        lp.add_ge(&[(x, 1.0), (y, -1.0)], 0.0); // x ≥ y, growing together
        assert!(matches!(lp.solve(), LpOutcome::Unbounded));
    }

    #[test]
    fn optimal_reports_failure_kind() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_le(&[(x, 1.0)], 1.0);
        lp.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(lp.solve().optimal().unwrap_err(), LpError::Infeasible);

        let mut lp = LpProblem::new();
        lp.add_var(1.0);
        assert_eq!(lp.solve().optimal().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_le(&[(x, 1.0)], 1.0);
        lp.add_ge(&[(x, 1.0)], 2.0);
        assert!(matches!(lp.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 3, x - y = 1 → x = 2, y = 1
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_eq(&[(x, 1.0), (y, 1.0)], 3.0);
        lp.add_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        let s = opt(&lp);
        assert!((s.objective - 3.0).abs() < 1e-9);
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.value(y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ge_constraints_minimization_style() {
        // max -2x - 3y s.t. x + y ≥ 4, x ≥ 1 (i.e. min 2x + 3y)
        // optimum x = 4, y = 0 → obj -8
        let mut lp = LpProblem::new();
        let x = lp.add_var(-2.0);
        let y = lp.add_var(-3.0);
        lp.add_ge(&[(x, 1.0), (y, 1.0)], 4.0);
        lp.add_ge(&[(x, 1.0)], 1.0);
        let s = opt(&lp);
        assert!((s.objective + 8.0).abs() < 1e-9, "obj {}", s.objective);
    }

    #[test]
    fn negative_rhs_normalized() {
        // max x s.t. -x ≥ -5 ⇔ x ≤ 5
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_ge(&[(x, -1.0)], -5.0);
        let s = opt(&lp);
        assert!((s.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_terms_summed() {
        // max x s.t. 0.5x + 0.5x ≤ 3
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_le(&[(x, 0.5), (x, 0.5)], 3.0);
        let s = opt(&lp);
        assert!((s.objective - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic Beale cycling example (with Dantzig rule simplex can
        // cycle); the Bland fallback must terminate.
        let mut lp = LpProblem::new();
        let x1 = lp.add_var(0.75);
        let x2 = lp.add_var(-150.0);
        let x3 = lp.add_var(0.02);
        let x4 = lp.add_var(-6.0);
        lp.add_le(&[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        lp.add_le(&[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        lp.add_le(&[(x3, 1.0)], 1.0);
        let s = opt(&lp);
        assert!((s.objective - 0.05).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn redundant_constraints_ok() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_le(&[(x, 1.0)], 5.0);
        lp.add_le(&[(x, 1.0)], 5.0);
        lp.add_le(&[(x, 2.0)], 10.0);
        let s = opt(&lp);
        assert!((s.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality_feasible_at_origin() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(-1.0);
        lp.add_eq(&[(x, 1.0), (y, -1.0)], 0.0);
        lp.add_le(&[(x, 1.0)], 2.0);
        let s = opt(&lp);
        // max x - y with x = y → objective 0
        assert!(s.objective.abs() < 1e-9);
    }

    #[test]
    fn small_concurrent_flow_lp() {
        // Tiny concurrent-flow instance solved by hand:
        // triangle a-b-c, unit capacities, commodities (a→b) and (a→c),
        // maximize λ with each commodity shipping λ.
        // Edge-based formulation on directed arcs.
        // The cut around `a` has two outgoing arcs of capacity 1 serving
        // total demand 2λ, so λ ≤ 1; routing both commodities directly
        // achieves λ = 1.
        let mut lp = LpProblem::new();
        let lambda = lp.add_var(1.0);
        // flow variables: f[commodity][arc], arcs: ab, ba, bc, cb, ac, ca
        let arcs = 6;
        let mut f = Vec::new();
        for _ in 0..2 {
            let mut row = Vec::new();
            for _ in 0..arcs {
                row.push(lp.add_var(0.0));
            }
            f.push(row);
        }
        let (ab, ba, bc, cb, ac, ca) = (0, 1, 2, 3, 4, 5);
        // capacity: each undirected edge carries total flow ≤ 1 per direction
        for arc in 0..arcs {
            let _ = arc;
        }
        for (f0, f1) in f[0].iter().zip(&f[1]) {
            lp.add_le(&[(*f0, 1.0), (*f1, 1.0)], 1.0);
        }
        // conservation for commodity 0 (a→b): node c balanced
        lp.add_eq(
            &[
                (f[0][ac], 1.0),
                (f[0][bc], 1.0),
                (f[0][ca], -1.0),
                (f[0][cb], -1.0),
            ],
            0.0,
        );
        // source a ships λ net
        lp.add_eq(
            &[
                (f[0][ab], 1.0),
                (f[0][ac], 1.0),
                (f[0][ba], -1.0),
                (f[0][ca], -1.0),
                (lambda, -1.0),
            ],
            0.0,
        );
        // commodity 1 (a→c): node b balanced
        lp.add_eq(
            &[
                (f[1][ab], 1.0),
                (f[1][cb], 1.0),
                (f[1][ba], -1.0),
                (f[1][bc], -1.0),
            ],
            0.0,
        );
        lp.add_eq(
            &[
                (f[1][ab], 1.0),
                (f[1][ac], 1.0),
                (f[1][ba], -1.0),
                (f[1][ca], -1.0),
                (lambda, -1.0),
            ],
            0.0,
        );
        let s = opt(&lp);
        assert!((s.objective - 1.0).abs() < 1e-6, "λ = {}", s.objective);
    }
}
