//! The dense two-phase tableau simplex engine.
//!
//! Separated from the model-building API in `lib.rs` so the numerical core
//! can be tested and reasoned about in isolation.

use crate::{Cmp, LpOutcome, LpProblem, Solution};

/// Numerical tolerance for pivoting and optimality tests.
const EPS: f64 = 1e-9;

/// A dense simplex tableau in canonical form.
///
/// `rows[i]` holds the coefficients of constraint `i` over all columns plus
/// the right-hand side in the final position. `basis[i]` is the column
/// currently basic in row `i`. `obj` is the reduced-cost row and `obj_val`
/// the current objective value.
struct Tableau {
    rows: Vec<Vec<f64>>,
    basis: Vec<usize>,
    obj: Vec<f64>,
    obj_val: f64,
    ncols: usize,
    /// columns that may never enter the basis (artificials in phase 2)
    banned: Vec<bool>,
}

impl Tableau {
    fn rhs(&self, i: usize) -> f64 {
        self.rows[i][self.ncols]
    }

    /// Eliminates basic columns from the objective row so reduced costs are
    /// consistent with the current basis.
    fn canonicalize(&mut self) {
        for i in 0..self.rows.len() {
            let col = self.basis[i];
            let factor = self.obj[col];
            if factor.abs() > 0.0 {
                let row = self.rows[i].clone();
                for (j, rj) in row.iter().enumerate().take(self.ncols) {
                    self.obj[j] -= factor * rj;
                }
                self.obj_val += factor * row[self.ncols];
            }
        }
    }

    /// Performs one pivot on (row `r`, column `c`).
    fn pivot(&mut self, r: usize, c: usize) {
        let piv = self.rows[r][c];
        debug_assert!(piv.abs() > EPS, "pivot element too small: {piv}");
        let inv = 1.0 / piv;
        for v in self.rows[r].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[r].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == r {
                continue;
            }
            let f = row[c];
            if f.abs() > 0.0 {
                for (v, p) in row.iter_mut().zip(&pivot_row) {
                    *v -= f * p;
                }
                // guard against drift: the pivot column must become exactly 0
                row[c] = 0.0;
            }
        }
        let f = self.obj[c];
        if f.abs() > 0.0 {
            for (v, p) in self.obj.iter_mut().zip(&pivot_row[..self.ncols]) {
                *v -= f * p;
            }
            self.obj_val += f * pivot_row[self.ncols];
            self.obj[c] = 0.0;
        }
        self.basis[r] = c;
    }

    /// Runs the simplex loop to optimality. Returns `false` if unbounded.
    ///
    /// Uses Dantzig pricing, switching to Bland's rule after an iteration
    /// budget to guarantee termination under degeneracy.
    fn optimize(&mut self) -> bool {
        let m = self.rows.len();
        let bland_after = 50 * (m + self.ncols) + 1000;
        let mut iters = 0usize;
        loop {
            iters += 1;
            let use_bland = iters > bland_after;
            // entering column
            let mut enter = None;
            if use_bland {
                for j in 0..self.ncols {
                    if !self.banned[j] && self.obj[j] > EPS {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = EPS;
                for j in 0..self.ncols {
                    if !self.banned[j] && self.obj[j] > best {
                        best = self.obj[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(c) = enter else {
                return true; // optimal
            };
            // ratio test: min rhs/a over a > 0; under Bland, ties broken by
            // the smallest basic-variable index to prevent cycling
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = self.rows[i][c];
                if a <= EPS {
                    continue;
                }
                let ratio = self.rhs(i) / a;
                match leave {
                    None => {
                        leave = Some(i);
                        best_ratio = ratio;
                    }
                    Some(l) => {
                        if ratio < best_ratio - EPS {
                            leave = Some(i);
                            best_ratio = ratio;
                        } else if use_bland
                            && ratio < best_ratio + EPS
                            && self.basis[i] < self.basis[l]
                        {
                            leave = Some(i);
                            best_ratio = best_ratio.min(ratio);
                        }
                    }
                }
            }
            let Some(r) = leave else {
                return false; // unbounded
            };
            self.pivot(r, c);
        }
    }
}

/// Solves an [`LpProblem`] (maximize `c·x`, `x ≥ 0`).
pub(crate) fn solve(lp: &LpProblem) -> LpOutcome {
    let n = lp.num_vars();
    let cons = lp.constraints();
    let m = cons.len();

    // Count auxiliary columns.
    let mut n_slack = 0;
    let mut n_art = 0;
    for c in cons {
        // after rhs normalization, Le gains a slack, Ge gains surplus +
        // artificial, Eq gains artificial
        let cmp = if c.rhs < 0.0 { flip(c.cmp) } else { c.cmp };
        match cmp {
            Cmp::Le => n_slack += 1,
            Cmp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Cmp::Eq => n_art += 1,
        }
    }
    let ncols = n + n_slack + n_art;

    let mut rows = vec![vec![0.0; ncols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols = Vec::new();

    let mut slack_at = n;
    let mut art_at = n + n_slack;
    for (i, c) in cons.iter().enumerate() {
        let (sign, cmp) = if c.rhs < 0.0 {
            (-1.0, flip(c.cmp))
        } else {
            (1.0, c.cmp)
        };
        for &(v, coeff) in &c.terms {
            rows[i][v.0] += sign * coeff;
        }
        rows[i][ncols] = sign * c.rhs;
        match cmp {
            Cmp::Le => {
                rows[i][slack_at] = 1.0;
                basis[i] = slack_at;
                slack_at += 1;
            }
            Cmp::Ge => {
                rows[i][slack_at] = -1.0; // surplus
                slack_at += 1;
                rows[i][art_at] = 1.0;
                basis[i] = art_at;
                art_cols.push(art_at);
                art_at += 1;
            }
            Cmp::Eq => {
                rows[i][art_at] = 1.0;
                basis[i] = art_at;
                art_cols.push(art_at);
                art_at += 1;
            }
        }
    }

    let mut t = Tableau {
        rows,
        basis,
        obj: vec![0.0; ncols],
        obj_val: 0.0,
        ncols,
        banned: vec![false; ncols],
    };

    // Phase 1: maximize −Σ artificials.
    if !art_cols.is_empty() {
        for &a in &art_cols {
            t.obj[a] = -1.0;
        }
        t.canonicalize();
        let bounded = t.optimize();
        debug_assert!(bounded, "phase 1 objective is bounded by construction");
        if t.obj_val < -1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive remaining artificials out of the basis.
        let is_art = |col: usize| col >= n + n_slack;
        for i in 0..t.rows.len() {
            if is_art(t.basis[i]) {
                // find a non-artificial column with a nonzero coefficient
                let mut found = None;
                for j in 0..n + n_slack {
                    if t.rows[i][j].abs() > EPS {
                        found = Some(j);
                        break;
                    }
                }
                if let Some(j) = found {
                    t.pivot(i, j);
                }
                // else: redundant row; the artificial stays basic at value 0,
                // which is harmless once its column is banned below.
            }
        }
        for &a in &art_cols {
            t.banned[a] = true;
        }
    }

    // Phase 2: the real objective.
    t.obj = vec![0.0; ncols];
    t.obj_val = 0.0;
    t.obj[..n].copy_from_slice(lp.objective());
    t.canonicalize();
    if !t.optimize() {
        return LpOutcome::Unbounded;
    }

    let mut values = vec![0.0; n];
    for (i, &b) in t.basis.iter().enumerate() {
        if b < n {
            values[b] = t.rhs(i);
        }
    }
    LpOutcome::Optimal(Solution {
        objective: t.obj_val,
        values,
    })
}

fn flip(c: Cmp) -> Cmp {
    match c {
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
    }
}

/// Solves a problem already in standard form: maximize `c·x` subject to
/// `Ax ≤ b`, `x ≥ 0`, with `b ≥ 0` — the single-phase fast path.
///
/// `a` is row-major `m × n`. Returns `None` when unbounded. This entry point
/// is used by tests and by callers that build standard-form models directly
/// (no artificial variables needed, so it is noticeably faster than the
/// general path).
///
/// # Panics
/// Panics if any `b` entry is negative or dimensions are inconsistent.
pub fn solve_standard_form(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Option<(f64, Vec<f64>)> {
    let n = c.len();
    let m = a.len();
    assert_eq!(b.len(), m, "rhs length mismatch");
    for (i, row) in a.iter().enumerate() {
        assert_eq!(row.len(), n, "row {i} length mismatch");
        assert!(b[i] >= 0.0, "standard form requires b ≥ 0");
    }
    let ncols = n + m;
    let mut rows = Vec::with_capacity(m);
    let mut basis = Vec::with_capacity(m);
    for i in 0..m {
        let mut row = vec![0.0; ncols + 1];
        row[..n].copy_from_slice(&a[i]);
        // bounds: slack column n + i < ncols since ncols = n + m and i < m
        row[n + i] = 1.0;
        row[ncols] = b[i];
        rows.push(row);
        basis.push(n + i);
    }
    let mut obj = vec![0.0; ncols];
    obj[..n].copy_from_slice(c);
    let mut t = Tableau {
        rows,
        basis,
        obj,
        obj_val: 0.0,
        ncols,
        banned: vec![false; ncols],
    };
    if !t.optimize() {
        return None;
    }
    let mut values = vec![0.0; n];
    for (i, &bcol) in t.basis.iter().enumerate() {
        if bcol < n {
            values[bcol] = t.rhs(i);
        }
    }
    Some((t.obj_val, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_form_simple() {
        // max 3x + 2y, x + y ≤ 4, x + 3y ≤ 6
        let (obj, x) =
            solve_standard_form(&[3.0, 2.0], &[vec![1.0, 1.0], vec![1.0, 3.0]], &[4.0, 6.0])
                .unwrap();
        assert!((obj - 12.0).abs() < 1e-9);
        assert!((x[0] - 4.0).abs() < 1e-9);
        assert!(x[1].abs() < 1e-9);
    }

    #[test]
    fn standard_form_unbounded() {
        assert!(solve_standard_form(&[1.0], &[], &[]).is_none());
    }

    #[test]
    fn standard_form_zero_objective() {
        let (obj, _) = solve_standard_form(&[0.0], &[vec![1.0]], &[1.0]).unwrap();
        assert_eq!(obj, 0.0);
    }

    #[test]
    fn standard_form_many_constraints() {
        // max x + y with x ≤ 1, y ≤ 1, x + y ≤ 1.5
        let (obj, x) = solve_standard_form(
            &[1.0, 1.0],
            &[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            &[1.0, 1.0, 1.5],
        )
        .unwrap();
        assert!((obj - 1.5).abs() < 1e-9);
        assert!(x[0] <= 1.0 + 1e-9 && x[1] <= 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "b ≥ 0")]
    fn standard_form_rejects_negative_rhs() {
        let _ = solve_standard_form(&[1.0], &[vec![1.0]], &[-1.0]);
    }
}
