//! Shared infrastructure for the experiment binaries (one per paper
//! figure/table; see DESIGN.md's experiment index).
//!
//! Every binary follows the same protocol:
//!
//! 1. parse the common CLI flags ([`SweepOpts::from_args`]),
//! 2. compute each curve of the figure, parallelized over sweep points
//!    ([`parallel_points`]),
//! 3. print the table (aligned + CSV) exactly as the paper's figure would
//!    tabulate it,
//! 4. run *shape checks* — assertions about orderings and ratios the paper
//!    reports (who wins, by roughly what factor, where crossovers fall) —
//!    and exit non-zero if any fail. Absolute numbers are not expected to
//!    match the paper (different LP solver, unknown random seeds); shapes
//!    are.

use ft_metrics::Table;

/// Common sweep options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct SweepOpts {
    /// Fat-tree parameters to sweep (even, ascending).
    pub k_values: Vec<usize>,
    /// FPTAS ε for throughput experiments.
    pub epsilon: f64,
    /// RNG seed for random topologies and workloads.
    pub seed: u64,
    /// Safety cap on FPTAS routing steps per solve (None = unlimited).
    pub max_steps: Option<usize>,
    /// Write the CSV to this path as well (from `--csv PATH`).
    pub csv_path: Option<String>,
    /// Repetitions (distinct seeds) averaged per throughput point. Small
    /// fabrics host a single cluster whose random hot-spot placement adds
    /// noise; the paper's smooth curves imply averaging.
    pub reps: usize,
    /// Stream ft-obs spans to this JSONL file (from `--trace PATH`).
    pub trace_path: Option<String>,
}

impl SweepOpts {
    /// Parses command-line arguments.
    ///
    /// * `--full` — sweep to the paper's k = 32 (default caps at
    ///   `default_kmax` so the harness finishes in minutes),
    /// * `--kmax N` — explicit sweep cap,
    /// * `--eps X` — FPTAS ε (default 0.15; the certified λ is ≥
    ///   (1 − 3ε)·OPT),
    /// * `--seed S` — RNG seed (default 1),
    /// * `--reps N` — seeds averaged per throughput point (default 3),
    /// * `--csv PATH` — also write the CSV there,
    /// * `--trace PATH` — enable ft-obs instrumentation and stream spans
    ///   (one JSON object per line) to PATH. Without it, instrumentation
    ///   stays off at one relaxed atomic load per site.
    ///
    /// When `--trace` is given the sink is installed and instrumentation
    /// enabled before returning; [`ShapeChecks::finish`] flushes and closes
    /// the sink before exiting (`process::exit` skips TLS destructors, so
    /// the flush cannot be left to them).
    pub fn from_args(default_kmax: usize) -> SweepOpts {
        let args: Vec<String> = std::env::args().collect();
        let mut kmax = default_kmax;
        let mut epsilon = 0.15;
        let mut seed = 1u64;
        let mut csv_path = None;
        let mut reps = 3usize;
        let mut trace_path = None;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => kmax = 32,
                "--kmax" => {
                    i += 1;
                    kmax = args[i].parse().expect("--kmax needs an integer");
                }
                "--eps" => {
                    i += 1;
                    epsilon = args[i].parse().expect("--eps needs a float");
                }
                "--seed" => {
                    i += 1;
                    seed = args[i].parse().expect("--seed needs an integer");
                }
                "--csv" => {
                    i += 1;
                    csv_path = Some(args[i].clone());
                }
                "--reps" => {
                    i += 1;
                    reps = args[i].parse().expect("--reps needs an integer");
                }
                "--trace" => {
                    i += 1;
                    trace_path = Some(args[i].clone());
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --full | --kmax N | --eps X | --seed S | --reps N | --csv PATH \
                         | --trace PATH"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
            i += 1;
        }
        if let Some(path) = &trace_path {
            ft_obs::install_file_sink(path)
                .unwrap_or_else(|e| panic!("cannot open trace file {path}: {e}"));
            ft_obs::set_enabled(true);
        }
        let k_values: Vec<usize> = (4..=kmax).step_by(2).collect();
        SweepOpts {
            k_values,
            epsilon,
            seed,
            max_steps: Some(2_000_000),
            csv_path,
            reps: reps.max(1),
            trace_path,
        }
    }
}

/// Computes `f` over `points` in parallel and returns results in input
/// order. Panics in workers propagate.
///
/// Delegates to [`ft_graph::par::map`], so worker count honours the
/// `FT_THREADS` override and the deterministic-output contract of
/// DESIGN.md §10 (results depend only on input order, never scheduling).
pub fn parallel_points<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Send + Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    ft_graph::par::map(&points, f)
}

/// Collected shape-check results; the binary exits non-zero if any failed.
#[derive(Default)]
pub struct ShapeChecks {
    failures: usize,
    total: usize,
}

impl ShapeChecks {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one check and prints its verdict.
    pub fn check(&mut self, label: &str, ok: bool, detail: String) {
        self.total += 1;
        if ok {
            println!("  [shape PASS] {label}: {detail}");
        } else {
            self.failures += 1;
            println!("  [shape FAIL] {label}: {detail}");
        }
    }

    /// Prints the summary and terminates with the appropriate exit code.
    ///
    /// Flushes and closes any ft-obs trace sink first: `process::exit`
    /// skips TLS destructors, so buffered spans would otherwise be lost.
    pub fn finish(self) -> ! {
        println!(
            "\nshape checks: {}/{} passed",
            self.total - self.failures,
            self.total
        );
        ft_obs::set_enabled(false);
        ft_obs::take_sink();
        std::process::exit(if self.failures == 0 { 0 } else { 1 });
    }
}

/// Prints a figure header, the aligned table, and its CSV form (also
/// writing the CSV to `csv_path` when given).
pub fn print_figure(title: &str, paper_note: &str, table: &Table, csv_path: Option<&str>) {
    println!("=== {title} ===");
    println!("{paper_note}\n");
    print!("{}", table.to_aligned_string());
    println!("\nCSV:\n{}", table.to_csv());
    if let Some(path) = csv_path {
        std::fs::write(path, table.to_csv()).expect("failed to write CSV");
        println!("(csv written to {path})");
    }
}

/// Relative difference `|a − b| / max(|b|, tiny)`.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_points_order_preserved() {
        let r = parallel_points((0..100).collect(), |&x: &i32| x * x);
        assert_eq!(r.len(), 100);
        for (i, v) in r.iter().enumerate() {
            assert_eq!(*v, (i * i) as i32);
        }
    }

    #[test]
    fn parallel_points_empty() {
        let r: Vec<i32> = parallel_points(Vec::<i32>::new(), |&x| x);
        assert!(r.is_empty());
    }

    #[test]
    fn rel_diff_basics() {
        assert!((rel_diff(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(rel_diff(5.0, 5.0), 0.0);
    }
}
