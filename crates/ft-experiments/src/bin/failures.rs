//! Failure resilience and conversion-based recovery (the paper's §5:
//! "convertibility can play a broader role in network management, e.g.
//! self-recovery of the topology from failures").
//!
//! Two experiments:
//!
//! 1. **Link-failure degradation** — fail a growing fraction of random
//!    switch–switch links in Clos mode and in approximated-global-RG mode
//!    and measure average path length and hot-spot throughput on the
//!    damaged fabric. The flattened topology's link diversity degrades
//!    more gracefully than the tree.
//! 2. **Edge-switch failure + converter recovery** — kill one edge switch.
//!    In Clos mode its servers are stranded behind the dead device. The
//!    controller then flips that column's converter switches (4-port →
//!    local, 6-port → side with its peer) so the affected servers
//!    re-attach to aggregation/core switches *through the very same
//!    cables* — no physical repair involved. The harness counts stranded
//!    servers before and after the conversion.

use ft_core::{FlatTree, FlatTreeConfig, FourPortConfig, Mode, SixPortConfig};
use ft_experiments::{print_figure, ShapeChecks, SweepOpts};
use ft_graph::{bfs_distances, UNREACHABLE};
use ft_metrics::path_length::average_server_path_length;
use ft_metrics::throughput::{throughput, ThroughputOptions};
use ft_metrics::Table;
use ft_topo::Network;
use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};
use rand::prelude::*;

/// Removes `fraction` of switch–switch links, deterministically.
fn damage(net: &mut Network, fraction: f64, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut links: Vec<_> = net
        .graph()
        .edges()
        .filter(|&(_, a, b)| a.index() < net.num_switches() && b.index() < net.num_switches())
        .map(|(e, _, _)| e)
        .collect();
    links.shuffle(&mut rng);
    let kill = ((links.len() as f64) * fraction).round() as usize;
    for &e in links.iter().take(kill) {
        net.graph_mut().remove_edge(e);
    }
    kill
}

/// Servers that cannot reach the majority component.
fn stranded_servers(net: &Network) -> usize {
    // BFS from the attachment of server 0 on the switch graph
    let sg = net.switch_graph();
    let first = match net.servers().next() {
        Some(s) => net.attachment(s),
        None => return 0,
    };
    let dist = bfs_distances(&sg, first);
    net.servers()
        .filter(|&s| dist[net.attachment(s).index()] == UNREACHABLE)
        .count()
}

fn main() {
    let opts = SweepOpts::from_args(8);
    let k = *opts.k_values.last().unwrap();
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let mut checks = ShapeChecks::new();

    // ---- experiment 1: random link failures ----
    // all-to-all load exercises the whole fabric, so λ tracks aggregate
    // surviving capacity (a single hot spot would only probe its own
    // attachment switch's links)
    let spec = WorkloadSpec {
        pattern: TrafficPattern::AllToAll,
        cluster_size: 20,
        locality: Locality::Strong,
    };
    let topts = ThroughputOptions {
        epsilon: opts.epsilon,
        exact_threshold: 0,
        max_steps: opts.max_steps,
        ..Default::default()
    };
    let mut t1 = Table::new(&["failed links %", "mode", "APL", "all-to-all λ", "stranded"]);
    let mut degradation: Vec<(f64, String, f64)> = Vec::new();
    for fraction in [0.0, 0.02, 0.05, 0.10] {
        for mode in [Mode::Clos, Mode::GlobalRandom] {
            let mut net = ft.materialize(&mode).unwrap();
            damage(&mut net, fraction, opts.seed);
            let stranded = stranded_servers(&net);
            let apl = average_server_path_length(&net);
            let tm = generate(&net, &spec, opts.seed);
            let r = throughput(&net, &tm, topts).unwrap();
            if r.budget_exhausted {
                eprintln!(
                    "{}",
                    ft_metrics::budget_warning(
                        &format!("failures {} {:.0}%", mode.label(), fraction * 100.0),
                        r.lambda,
                        opts.max_steps.unwrap_or(0),
                    )
                );
            }
            let lambda = r.lambda;
            t1.push_row(vec![
                format!("{:.0}", fraction * 100.0),
                mode.label(),
                if apl.is_finite() {
                    format!("{apl:.4}")
                } else {
                    "∞".into()
                },
                format!("{lambda:.4}"),
                stranded.to_string(),
            ]);
            degradation.push((fraction, mode.label(), lambda));
        }
    }
    print_figure(
        "Failure 1: random link failures (all-to-all load)",
        "flattened topologies degrade gracefully; the tree loses structured capacity",
        &t1,
        opts.csv_path.as_deref(),
    );
    // shape: both modes survive 10% link loss without stranding servers,
    // and λ decreases monotonically with damage
    for mode in ["clos", "global-rg"] {
        let lambdas: Vec<f64> = degradation
            .iter()
            .filter(|(_, m, _)| m == mode)
            .map(|&(_, _, l)| l)
            .collect();
        checks.check(
            &format!("{mode}: throughput weakly decreases with damage"),
            lambdas.windows(2).all(|w| w[1] <= w[0] * 1.05),
            format!("{lambdas:?}"),
        );
    }

    // ---- experiment 2: edge-switch failure + conversion recovery ----
    let (p0, j0) = (0usize, 0usize);
    let victim = ft.layout().edge(p0, j0);
    let clos_states = ft.resolve(&Mode::Clos).unwrap();

    // recovery: flip the victim column's converters so its servers
    // re-attach elsewhere
    let mut recovery = clos_states.clone();
    let g = ft.geometry();
    for i in 0..g.n {
        recovery.four[g.four_index(p0, j0, i)] = FourPortConfig::Local;
    }
    for i in 0..g.m {
        let idx = g.six_index(p0, j0, i);
        if let Some(peer) = ft.peer(idx) {
            recovery.six[idx] = SixPortConfig::Side;
            recovery.six[peer] = SixPortConfig::Side;
        } else {
            recovery.six[idx] = SixPortConfig::Local;
        }
    }

    let mut t2 = Table::new(&["phase", "stranded servers", "APL"]);
    let mut stranded_counts = Vec::new();
    for (phase, states) in [
        ("before failure", &clos_states),
        ("after failure (Clos)", &clos_states),
        ("after conversion", &recovery),
    ] {
        let mut net = ft.materialize_states(states).unwrap();
        if phase != "before failure" {
            // kill every link of the victim edge switch
            let dead: Vec<_> = net
                .graph()
                .edges()
                .filter(|&(_, a, b)| a == victim || b == victim)
                .map(|(e, _, _)| e)
                .collect();
            for e in dead {
                net.graph_mut().remove_edge(e);
            }
        }
        let stranded = net
            .servers()
            .filter(|&s| match net.try_attachment(s) {
                None => true,
                Some(sw) => sw == victim,
            })
            .count();
        stranded_counts.push(stranded);
        let apl = average_server_path_length(&net);
        t2.push_row(vec![
            phase.to_string(),
            stranded.to_string(),
            if apl.is_finite() {
                format!("{apl:.4}")
            } else {
                "∞ (stranded pairs)".into()
            },
        ]);
    }
    print_figure(
        &format!(
            "Failure 2: edge switch E(0,0) dies; converters re-home its servers (k = {k})"
        ),
        "4-port → local (server to aggregation), 6-port → side (server to core): same cables, new topology",
        &t2,
        None,
    );
    let spe = ft.config().clos.servers_per_edge;
    let recoverable = ft.config().m + ft.config().n;
    checks.check(
        "edge failure strands its servers in Clos mode",
        stranded_counts[1] == spe,
        format!("{} of {} stranded", stranded_counts[1], spe),
    );
    checks.check(
        "conversion recovers every converter-attached server",
        stranded_counts[2] == spe - recoverable,
        format!(
            "{} stranded after conversion (only the {} direct-cabled slots remain)",
            stranded_counts[2],
            spe - recoverable
        ),
    );
    checks.finish();
}
