//! Figure 7: throughput of broadcast/incast traffic in 1000-server
//! clusters.
//!
//! One random hot spot per cluster exchanges unit demand with every other
//! member, in both directions. Flat-tree runs as the approximated global
//! random graph (the mode for large clusters). Localities: *locality*
//! (clusters packed contiguously) and *no locality* (random placement).
//!
//! Paper shape: flat-tree ≈ random graph ≈ 1.5 × fat-tree; throughput
//! grows ~linearly with k; no topology is locality-sensitive (traffic is
//! inherently cross-Pod).
//!
//! Cluster size is min(1000, total servers) — below k = 16 the whole data
//! center is one cluster. Reported throughput is normalized to a *nominal*
//! 1000-server cluster (`λ · (actual−1)/999`): the paper's y-axis divides
//! the hot spot's capacity among ~999 flows per direction at every k,
//! which is what makes its curves grow ~linearly with k (at k = 4 the
//! paper reports ≈ 0.002 = (2 uplinks)/999, matching this normalization).

use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_experiments::{parallel_points, print_figure, rel_diff, ShapeChecks, SweepOpts};
use ft_metrics::throughput::{throughput, ThroughputOptions};
use ft_metrics::{Series, Table};
use ft_topo::{fat_tree, jellyfish_matching_fat_tree, Network};
use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};

#[derive(Clone, Copy, PartialEq)]
enum Topo {
    FatTree,
    FlatTree,
    RandomGraph,
}

fn build(topo: Topo, k: usize, seed: u64) -> Network {
    match topo {
        Topo::FatTree => fat_tree(k).unwrap(),
        Topo::FlatTree => FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
            .unwrap()
            .materialize(&Mode::GlobalRandom)
            .unwrap(),
        Topo::RandomGraph => jellyfish_matching_fat_tree(k, seed).unwrap(),
    }
}

fn main() {
    let opts = SweepOpts::from_args(12);
    let combos = [
        (Topo::FatTree, Locality::Strong, "Fat-tree locality"),
        (Topo::FatTree, Locality::None, "Fat-tree no locality"),
        (Topo::FlatTree, Locality::Strong, "Flat-tree locality"),
        (Topo::FlatTree, Locality::None, "Flat-tree no locality"),
        (Topo::RandomGraph, Locality::Strong, "Random graph locality"),
        (
            Topo::RandomGraph,
            Locality::None,
            "Random graph no locality",
        ),
    ];
    let mut points = Vec::new();
    for &k in &opts.k_values {
        for (i, _) in combos.iter().enumerate() {
            for rep in 0..opts.reps {
                points.push((k, i, rep));
            }
        }
    }
    let results = parallel_points(points.clone(), |&(k, ci, rep)| {
        let (topo, locality, name) = combos[ci];
        let seed = opts.seed + rep as u64;
        let net = build(topo, k, seed);
        let spec = WorkloadSpec {
            pattern: TrafficPattern::HotSpot,
            cluster_size: 1000,
            locality,
        };
        let tm = generate(&net, &spec, seed);
        let r = throughput(
            &net,
            &tm,
            ThroughputOptions {
                epsilon: opts.epsilon,
                exact_threshold: 0,
                max_steps: opts.max_steps,
                ..Default::default()
            },
        )
        .unwrap();
        if r.budget_exhausted {
            eprintln!(
                "{}",
                ft_metrics::budget_warning(
                    &format!("fig7 {name} k={k} seed={seed}"),
                    r.lambda,
                    opts.max_steps.unwrap_or(0),
                )
            );
        }
        let lambda = r.lambda;
        // normalize to the nominal 1000-server cluster (see module docs)
        let actual = spec.cluster_size.min(net.num_servers());
        lambda * (actual as f64 - 1.0) / 999.0
    });

    // average repetitions per (k, curve)
    let mut acc: std::collections::HashMap<(usize, usize), (f64, usize)> =
        std::collections::HashMap::new();
    for ((k, ci, _), v) in points.iter().zip(&results) {
        let e = acc.entry((*k, *ci)).or_insert((0.0, 0));
        e.0 += v;
        e.1 += 1;
    }
    let mut series: Vec<Series> = combos
        .iter()
        .map(|(_, _, name)| Series::new(*name))
        .collect();
    for &k in &opts.k_values {
        for ci in 0..combos.len() {
            let (sum, cnt) = acc[&(k, ci)];
            series[ci].push(k as f64, sum / cnt as f64);
        }
    }
    let table = Table::from_series("k", &series);
    print_figure(
        "Figure 7: throughput of broadcast/incast traffic in 1000-server clusters",
        "paper shape: flat-tree ≈ random graph ≈ 1.5× fat-tree; ~linear growth in k; locality-insensitive",
        &table,
        opts.csv_path.as_deref(),
    );

    let at = |ci: usize, k: usize| series[ci].at(k as f64).unwrap();
    let mut checks = ShapeChecks::new();
    for &k in &opts.k_values {
        if k < 8 {
            continue; // trivially small fabrics
        }
        let (fat, flat, rg) = (at(0, k), at(2, k), at(4, k));
        checks.check(
            &format!("k={k}: flat-tree ≥ 1.2× fat-tree"),
            flat >= 1.2 * fat,
            format!("flat {flat:.4} vs fat {fat:.4} ({:.2}×)", flat / fat),
        );
        checks.check(
            &format!("k={k}: flat-tree within 20% of random graph"),
            rel_diff(flat, rg) <= 0.20,
            format!("flat {flat:.4} vs rg {rg:.4}"),
        );
        for (ci, name) in [(2usize, "flat-tree"), (4, "random graph")] {
            let loc = at(ci, k);
            let noloc = at(ci + 1, k);
            checks.check(
                &format!("k={k}: {name} locality-insensitive"),
                rel_diff(loc, noloc) <= 0.25,
                format!("locality {loc:.4} vs none {noloc:.4}"),
            );
        }
    }
    // growth with k
    if opts.k_values.len() >= 3 {
        let first = *opts.k_values.first().unwrap();
        let last = *opts.k_values.last().unwrap();
        for (ci, name) in [(2usize, "flat-tree"), (0, "fat-tree")] {
            checks.check(
                &format!("{name} throughput grows with k"),
                at(ci, last) > at(ci, first),
                format!(
                    "k={first}: {:.4} → k={last}: {:.4}",
                    at(ci, first),
                    at(ci, last)
                ),
            );
        }
    }
    checks.finish();
}
