//! Figure 5: average path length of server pairs in the entire network.
//!
//! Sweeps the fat-tree parameter k and compares fat-tree, the
//! equipment-equivalent random graph, and flat-tree in approximated
//! global-random-graph mode under the §3.2 profiling grid of (m, n) — the
//! combinations of multiples of k/8 with m + n ≤ k/2 that the paper plots.
//!
//! Paper shape: the profiled flat-tree (m = k/8, n = 2k/8) is notably
//! shorter than fat-tree and within ~5% of the random graph.

use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_experiments::{parallel_points, print_figure, rel_diff, ShapeChecks, SweepOpts};
use ft_metrics::path_length::average_server_path_length;
use ft_metrics::{Series, Table};
use ft_topo::{fat_tree, jellyfish_matching_fat_tree};

fn unit(k: usize) -> usize {
    ((k as f64) / 8.0).round().max(1.0) as usize
}

/// The (m, n) grid of the paper's Figure 5 legend, filtered by m + n ≤ k/2.
fn mn_grid(k: usize) -> Vec<(usize, usize)> {
    let u = unit(k);
    let mut out = Vec::new();
    for (mm, nm) in [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2)] {
        let (m, n) = (mm * u, nm * u);
        if m + n <= k / 2 {
            out.push((m, n));
        }
    }
    out
}

#[derive(Clone, Copy, PartialEq)]
enum Curve {
    FatTree,
    RandomGraph,
    FlatTree(usize, usize), // (m multiple, n multiple)
}

fn main() {
    let opts = SweepOpts::from_args(32); // path length is cheap: full sweep
    let mut points = Vec::new();
    for &k in &opts.k_values {
        points.push((k, Curve::FatTree));
        points.push((k, Curve::RandomGraph));
        let u = unit(k);
        for (m, n) in mn_grid(k) {
            points.push((k, Curve::FlatTree(m / u, n / u)));
        }
    }
    let results = parallel_points(points.clone(), |&(k, curve)| match curve {
        Curve::FatTree => average_server_path_length(&fat_tree(k).unwrap()),
        Curve::RandomGraph => {
            average_server_path_length(&jellyfish_matching_fat_tree(k, opts.seed).unwrap())
        }
        Curve::FlatTree(mm, nm) => {
            let u = unit(k);
            let cfg = FlatTreeConfig::for_fat_tree_k_mn(k, mm * u, nm * u).unwrap();
            let net = FlatTree::new(cfg)
                .unwrap()
                .materialize(&Mode::GlobalRandom)
                .unwrap();
            average_server_path_length(&net)
        }
    });

    let mut fat = Series::new("Fat-tree");
    let mut rg = Series::new("Random graph");
    let mut flats: Vec<((usize, usize), Series)> = [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2)]
        .iter()
        .map(|&(a, b)| ((a, b), Series::new(format!("Flat-tree(m={a}k/8,n={b}k/8)"))))
        .collect();
    for ((k, curve), v) in points.iter().zip(&results) {
        let x = *k as f64;
        match curve {
            Curve::FatTree => fat.push(x, *v),
            Curve::RandomGraph => rg.push(x, *v),
            Curve::FlatTree(mm, nm) => {
                for ((a, b), s) in flats.iter_mut() {
                    if a == mm && b == nm {
                        s.push(x, *v);
                    }
                }
            }
        }
    }
    let mut series = vec![fat.clone(), rg.clone()];
    series.extend(flats.iter().map(|(_, s)| s.clone()));
    let table = Table::from_series("k", &series);
    print_figure(
        "Figure 5: average path length of server pairs, entire network",
        "paper shape: flat-tree(m=k/8, n=2k/8) ≪ fat-tree, within ~5% of random graph",
        &table,
        opts.csv_path.as_deref(),
    );

    let mut checks = ShapeChecks::new();
    for &k in &opts.k_values {
        let x = k as f64;
        let ft_apl = fat.at(x).unwrap();
        let rg_apl = rg.at(x).unwrap();
        let best_flat = flats
            .iter()
            .filter_map(|(_, s)| s.at(x))
            .fold(f64::INFINITY, f64::min);
        if k >= 8 {
            checks.check(
                &format!("k={k}: flat-tree beats fat-tree"),
                best_flat < ft_apl,
                format!("flat {best_flat:.3} vs fat {ft_apl:.3}"),
            );
            checks.check(
                &format!("k={k}: flat-tree within 10% of random graph"),
                rel_diff(best_flat, rg_apl) <= 0.10,
                format!(
                    "flat {best_flat:.3} vs rg {rg_apl:.3} ({:.1}%)",
                    100.0 * rel_diff(best_flat, rg_apl)
                ),
            );
            // the paper's profiled choice stays near the sweep's best
            if let Some(paper_pt) = flats
                .iter()
                .find(|((a, b), _)| *a == 1 && *b == 2)
                .and_then(|(_, s)| s.at(x))
            {
                checks.check(
                    &format!("k={k}: (m=k/8, n=2k/8) near-optimal"),
                    paper_pt <= best_flat * 1.05,
                    format!("paper point {paper_pt:.3} vs best {best_flat:.3}"),
                );
            }
        }
    }
    checks.finish();
}
