//! Conversion disruption (the paper's §3.3 "network convertibility" made
//! operational): how much do running flows suffer when a flat-tree
//! converts from Clos to the approximated global random graph *live*?
//!
//! The harness replays the same seeded all-to-all workload on the ft-des
//! engine four times: once with no conversion (baseline), then with a
//! mid-run Clos → global-RG conversion at three converter drain latencies.
//! During the drain window the plan's removed links are already gone but
//! the new links have not yet appeared, so the fabric runs degraded;
//! affected flows are re-routed (counted as conversion re-routes) and
//! everyone's max-min rates shift. Per-flow disruption is the throughput
//! loss `1 − base_fct/conv_fct` against the baseline run of the *same*
//! flow — bounded in [0, 1] even for pairs that were co-located on one
//! edge switch under Clos (FCT 0) and get re-homed apart by the
//! converters (loss 1).
//!
//! Shapes: the conversion must actually touch traffic (re-routes > 0,
//! some flows slow down), nobody may be stranded (the plan keeps the
//! fabric connected), and the run must be bit-identical on repeat.

use ft_control::plan_transition;
use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_experiments::{print_figure, ShapeChecks, SweepOpts};
use ft_metrics::Table;
use ft_sim::{
    flows_with_arrivals, ConversionEvent, DesReport, DesSimulator, FlowSpec, RouterPolicy,
    TopoEvent,
};
use ft_topo::Network;
use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};

const CONVERT_AT: f64 = 1.0;

fn run(net: &Network, flows: &[FlowSpec], topo: &[TopoEvent]) -> DesReport {
    DesSimulator::new(net, RouterPolicy::Ecmp)
        .run(flows, topo, 1e9)
        .expect("seeded schedule must be valid")
}

/// Flow completion time, `None` when the flow never finished.
fn fct(rep: &DesReport, flows: &[FlowSpec], idx: usize) -> Option<f64> {
    rep.flows[idx]
        .completion
        .map(|c| c - flows[rep.flows[idx].flow].start)
}

fn main() {
    let opts = SweepOpts::from_args(4);
    let k = *opts.k_values.last().unwrap();
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let net = ft.materialize(&Mode::Clos).unwrap();
    let from = ft.resolve(&Mode::Clos).unwrap();
    let to = ft.resolve(&Mode::GlobalRandom).unwrap();
    let plan = plan_transition(&ft, &from, &to).unwrap();
    let mut checks = ShapeChecks::new();

    let spec = WorkloadSpec {
        pattern: TrafficPattern::AllToAll,
        cluster_size: 8,
        locality: Locality::None,
    };
    let tm = generate(&net, &spec, opts.seed);
    let flows = flows_with_arrivals(&tm, 8.0, 0.5, 2, opts.seed);

    let baseline = run(&net, &flows, &[]);

    let mut table = Table::new(&[
        "drain latency",
        "mean FCT",
        "makespan",
        "re-routes",
        "conv re-routes",
        "disrupted flows",
        "mean tput loss",
        "max tput loss",
    ]);
    table.push_row(vec![
        "(no conversion)".into(),
        format!("{:.4}", baseline.mean_fct(&flows)),
        format!("{:.4}", baseline.makespan),
        "0".into(),
        "0".into(),
        "0".into(),
        "0.0%".into(),
        "0.0%".into(),
    ]);

    let mut per_latency: Vec<(f64, DesReport, usize, f64)> = Vec::new();
    for latency in [0.0, 0.5, 2.0] {
        let topo = vec![TopoEvent::Convert(ConversionEvent::from_plan(
            CONVERT_AT,
            latency,
            &plan,
            Some(RouterPolicy::Ksp(8)),
        ))];
        let rep = run(&net, &flows, &topo);

        // per-flow disruption vs the baseline run of the same flow
        let mut disrupted = 0usize;
        let mut loss_sum = 0.0;
        let mut loss_max: f64 = 0.0;
        for i in 0..flows.len() {
            if let (Some(b), Some(c)) = (fct(&baseline, &flows, i), fct(&rep, &flows, i)) {
                if c <= b + 1e-9 {
                    continue; // unchanged or sped up
                }
                let loss = 1.0 - b / c;
                disrupted += 1;
                loss_sum += loss;
                loss_max = loss_max.max(loss);
            }
        }
        let loss_mean = if disrupted > 0 {
            loss_sum / disrupted as f64
        } else {
            0.0
        };
        let reroutes: usize = rep.flows.iter().map(|f| f.reroutes).sum();
        table.push_row(vec![
            format!("{latency:.1}"),
            format!("{:.4}", rep.mean_fct(&flows)),
            format!("{:.4}", rep.makespan),
            reroutes.to_string(),
            rep.conversion_reroutes.to_string(),
            disrupted.to_string(),
            format!("{:.1}%", loss_mean * 100.0),
            format!("{:.1}%", loss_max * 100.0),
        ]);
        per_latency.push((latency, rep, disrupted, loss_mean));
    }

    print_figure(
        &format!(
            "Conversion disruption: live Clos → global-RG at t = {CONVERT_AT} (k = {k}, \
             {} flows, ECMP → 8-way KSP)",
            flows.len()
        ),
        "drained links vanish at conversion start, new links appear after the drain latency",
        &table,
        opts.csv_path.as_deref(),
    );

    for (latency, rep, disrupted, _) in &per_latency {
        checks.check(
            &format!("latency {latency}: conversion re-routes running flows"),
            rep.conversions == 1 && rep.conversion_reroutes > 0,
            format!(
                "{} conversion re-routes, {} links -, {} links +",
                rep.conversion_reroutes, rep.links_removed, rep.links_added
            ),
        );
        checks.check(
            &format!("latency {latency}: no flow stranded by the transition"),
            rep.unfinished() == 0 && rep.missing_links == 0,
            format!(
                "{} unfinished, {} plan links missing",
                rep.unfinished(),
                rep.missing_links
            ),
        );
        checks.check(
            &format!("latency {latency}: disruption is visible per flow"),
            *disrupted > 0,
            format!("{disrupted} of {} flows slowed down", flows.len()),
        );
    }
    // longer drains keep the fabric degraded longer: mean per-flow
    // throughput loss must not *shrink* as the drain window grows
    let losses: Vec<f64> = per_latency.iter().map(|&(_, _, _, m)| m).collect();
    checks.check(
        "mean throughput loss weakly grows with drain latency",
        losses.windows(2).all(|w| w[1] >= w[0] * 0.95),
        format!("{losses:?}"),
    );
    // determinism: an identical invocation reproduces the exact schedule
    let (latency0, rep0, _, _) = &per_latency[0];
    let again = run(
        &net,
        &flows,
        &[TopoEvent::Convert(ConversionEvent::from_plan(
            CONVERT_AT,
            *latency0,
            &plan,
            Some(RouterPolicy::Ksp(8)),
        ))],
    );
    checks.check(
        "repeat run is bit-identical",
        again.completion_checksum() == rep0.completion_checksum() && again.events == rep0.events,
        format!("checksum {:#018x}", again.completion_checksum()),
    );
    checks.finish();
}
