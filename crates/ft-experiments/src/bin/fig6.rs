//! Figure 6: average path length of server pairs within each Pod.
//!
//! Flat-tree runs as approximated local random graphs (4-port local,
//! 6-port default); baselines are fat-tree, the global random graph (whose
//! "Pods" are pseudo-Pods of k²/4 consecutive servers — its servers
//! scatter, which is exactly why it loses here) and the two-stage random
//! graph.
//!
//! Paper shape: random graph worst, then fat-tree; flat-tree beats even
//! the two-stage random graph thanks to the retained Clos edge–aggregation
//! mesh.

use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_experiments::{parallel_points, print_figure, ShapeChecks, SweepOpts};
use ft_metrics::path_length::average_intra_pod_path_length;
use ft_metrics::{Series, Table};
use ft_topo::{fat_tree, jellyfish_matching_fat_tree, two_stage_random_graph, TwoStageParams};

#[derive(Clone, Copy, PartialEq)]
enum Curve {
    FlatTree,
    FatTree,
    RandomGraph,
    TwoStage,
}

fn main() {
    let opts = SweepOpts::from_args(32);
    let curves = [
        (Curve::FlatTree, "Flat-tree"),
        (Curve::FatTree, "Fat-tree"),
        (Curve::RandomGraph, "Random graph"),
        (Curve::TwoStage, "Two-stage random graph"),
    ];
    let mut points = Vec::new();
    for &k in &opts.k_values {
        for (c, _) in curves {
            points.push((k, c));
        }
    }
    let results = parallel_points(points.clone(), |&(k, curve)| {
        let pod_size = k * k / 4;
        let net = match curve {
            Curve::FlatTree => {
                let cfg = FlatTreeConfig::for_fat_tree_k(k).unwrap();
                FlatTree::new(cfg)
                    .unwrap()
                    .materialize(&Mode::LocalRandom)
                    .unwrap()
            }
            Curve::FatTree => fat_tree(k).unwrap(),
            Curve::RandomGraph => jellyfish_matching_fat_tree(k, opts.seed).unwrap(),
            Curve::TwoStage => {
                two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), opts.seed)
                    .unwrap()
            }
        };
        average_intra_pod_path_length(&net, pod_size)
    });

    let mut series: Vec<Series> = curves.iter().map(|(_, name)| Series::new(*name)).collect();
    for ((k, curve), v) in points.iter().zip(&results) {
        let i = curves.iter().position(|(c, _)| c == curve).unwrap();
        series[i].push(*k as f64, *v);
    }
    let table = Table::from_series("k", &series);
    print_figure(
        "Figure 6: average path length of server pairs in each Pod",
        "paper shape: flat-tree < two-stage RG < fat-tree < random graph (for larger k)",
        &table,
        opts.csv_path.as_deref(),
    );

    let (flat, fat, rg, ts) = (&series[0], &series[1], &series[2], &series[3]);
    let mut checks = ShapeChecks::new();
    for &k in &opts.k_values {
        if k < 8 {
            continue; // tiny pods: every topology is ~2 hops
        }
        let x = k as f64;
        let (f, t, r, two) = (
            flat.at(x).unwrap(),
            fat.at(x).unwrap(),
            rg.at(x).unwrap(),
            ts.at(x).unwrap(),
        );
        checks.check(
            &format!("k={k}: flat-tree beats fat-tree in-Pod"),
            f < t,
            format!("flat {f:.3} vs fat {t:.3}"),
        );
        checks.check(
            &format!("k={k}: random graph is worst in-Pod"),
            r > f && r > t,
            format!("rg {r:.3}, flat {f:.3}, fat {t:.3}"),
        );
        // The paper reports flat-tree strictly beating the two-stage RG
        // in-Pod; our two-stage reconstruction has exactly flat-tree's
        // intra-Pod link budget and lands statistically tied (< 1%).
        // Check parity-or-better (see EXPERIMENTS.md for the discussion).
        checks.check(
            &format!("k={k}: flat-tree ≥ two-stage RG in-Pod (±2%)"),
            f <= two * 1.02,
            format!("flat {f:.3} vs two-stage {two:.3}"),
        );
    }
    checks.finish();
}
