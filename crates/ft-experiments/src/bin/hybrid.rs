//! §3.4: hybrid flat-tree — zone isolation.
//!
//! The network is organized into two zones whose proportion sweeps from
//! 10% to 90%: one zone runs the approximated global random graph with
//! hot-spot traffic, the other runs approximated local random graphs with
//! all-to-all traffic (each zone gets the traffic pattern of the
//! corresponding complete network, §3.3).
//!
//! For every proportion the harness solves three concurrent-flow problems
//! on the hybrid topology — zone A alone, zone B alone, and both jointly —
//! and compares each zone against the *complete network* reference: the
//! same workload on the same servers with the whole network converted to
//! that zone's mode.
//!
//! Paper claim: "regardless of the proportion, each zone constantly
//! achieves the same throughput as that of the corresponding complete
//! network", i.e. hybrid mode segregates workloads perfectly.
//!
//! The paper uses k = 30; the default here is k = 10 so the harness runs
//! in minutes (`--kmax 30` reproduces the paper's scale).

use ft_core::{FlatTree, FlatTreeConfig, Mode, PodMode};
use ft_experiments::{parallel_points, print_figure, rel_diff, ShapeChecks, SweepOpts};
use ft_mcf::{aggregate_commodities, Commodity};
use ft_metrics::throughput::{throughput_on_commodities, ThroughputOptions};
use ft_metrics::Table;
use ft_topo::Network;
use ft_workload::{generate_on, Locality, TrafficPattern, WorkloadSpec};

struct Row {
    proportion: usize,
    zone_a: f64,
    ref_a: f64,
    zone_b: f64,
    ref_b: f64,
    joint: f64,
}

fn zone_servers(net: &Network, pods: std::ops::Range<usize>) -> Vec<ft_graph::NodeId> {
    net.servers()
        .filter(|&s| net.pod(s).is_some_and(|p| pods.contains(&(p as usize))))
        .collect()
}

fn commodities_for(
    net: &Network,
    servers: &[ft_graph::NodeId],
    spec: &WorkloadSpec,
    seed: u64,
) -> Vec<Commodity> {
    let tm = generate_on(net, servers, spec, seed);
    aggregate_commodities(tm.switch_triples(net))
}

fn main() {
    let opts = SweepOpts::from_args(10);
    let k = *opts.k_values.last().expect("need at least one k");
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let pods = ft.config().clos.pods;

    // Reference complete networks (whole fabric in one mode).
    let full_global = ft.materialize(&Mode::GlobalRandom).unwrap();
    let full_local = ft.materialize(&Mode::LocalRandom).unwrap();

    let topts = ThroughputOptions {
        epsilon: opts.epsilon,
        exact_threshold: 0,
        max_steps: opts.max_steps,
        ..Default::default()
    };

    let proportions: Vec<usize> = (1..=9).map(|p| p * 10).collect();
    let rows: Vec<Row> = parallel_points(proportions.clone(), |&pct| {
        let global_pods = ((pct * pods + 50) / 100).clamp(1, pods - 1);
        let mode = Mode::two_zone(pods, global_pods);
        let hybrid = ft.materialize(&mode).unwrap();

        let servers_a = zone_servers(&hybrid, 0..global_pods);
        let servers_b = zone_servers(&hybrid, global_pods..pods);
        // zone A: hot-spot clusters as in Figure 7, sized to the zone
        let spec_a = WorkloadSpec {
            pattern: TrafficPattern::HotSpot,
            cluster_size: 1000,
            locality: Locality::Strong,
        };
        // zone B: 20-server all-to-all clusters as in Figure 8
        let spec_b = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 20,
            locality: Locality::Strong,
        };
        let com_a = commodities_for(&hybrid, &servers_a, &spec_a, opts.seed);
        let com_b = commodities_for(&hybrid, &servers_b, &spec_b, opts.seed);
        let zone_a = throughput_on_commodities(&hybrid, &com_a, topts)
            .unwrap()
            .lambda;
        let zone_b = throughput_on_commodities(&hybrid, &com_b, topts)
            .unwrap()
            .lambda;
        let mut joint_com = com_a.clone();
        joint_com.extend_from_slice(&com_b);
        let joint = throughput_on_commodities(&hybrid, &joint_com, topts)
            .unwrap()
            .lambda;

        // complete-network references: same servers, same workload, whole
        // fabric in the zone's mode
        let ref_a = throughput_on_commodities(
            &full_global,
            &commodities_for(&full_global, &servers_a, &spec_a, opts.seed),
            topts,
        )
        .unwrap()
        .lambda;
        let ref_b = throughput_on_commodities(
            &full_local,
            &commodities_for(&full_local, &servers_b, &spec_b, opts.seed),
            topts,
        )
        .unwrap()
        .lambda;
        Row {
            proportion: pct,
            zone_a,
            ref_a,
            zone_b,
            ref_b,
            joint,
        }
    });

    let mut table = Table::new(&[
        "global-zone %",
        "zoneA λ (hybrid)",
        "zoneA λ (complete)",
        "zoneB λ (hybrid)",
        "zoneB λ (complete)",
        "joint λ",
    ]);
    for r in &rows {
        table.push_row(vec![
            r.proportion.to_string(),
            format!("{:.4}", r.zone_a),
            format!("{:.4}", r.ref_a),
            format!("{:.4}", r.zone_b),
            format!("{:.4}", r.ref_b),
            format!("{:.4}", r.joint),
        ]);
    }
    print_figure(
        &format!("§3.4: hybrid flat-tree zone isolation (k = {k})"),
        "paper claim: each zone achieves the complete network's throughput at every proportion",
        &table,
        opts.csv_path.as_deref(),
    );

    let mut checks = ShapeChecks::new();
    for r in &rows {
        checks.check(
            &format!("{}%: zone A matches complete network", r.proportion),
            rel_diff(r.zone_a, r.ref_a) <= 0.15,
            format!(
                "hybrid {:.4} vs complete {:.4} ({:.1}%)",
                r.zone_a,
                r.ref_a,
                100.0 * rel_diff(r.zone_a, r.ref_a)
            ),
        );
        checks.check(
            &format!("{}%: zone B matches complete network", r.proportion),
            rel_diff(r.zone_b, r.ref_b) <= 0.15,
            format!(
                "hybrid {:.4} vs complete {:.4} ({:.1}%)",
                r.zone_b,
                r.ref_b,
                100.0 * rel_diff(r.zone_b, r.ref_b)
            ),
        );
        let floor = r.zone_a.min(r.zone_b);
        checks.check(
            &format!("{}%: joint run does not collapse either zone", r.proportion),
            r.joint >= 0.8 * floor,
            format!("joint {:.4} vs per-zone floor {:.4}", r.joint, floor),
        );
    }
    let _ = PodMode::Clos; // (referenced for doc completeness)
    checks.finish();
}
