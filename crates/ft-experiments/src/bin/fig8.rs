//! Figure 8: throughput of all-to-all traffic in 20-server clusters.
//!
//! Every ordered pair inside each 20-server cluster exchanges unit demand.
//! Flat-tree runs as approximated *local* random graphs (the mode for
//! small clusters); baselines are fat-tree, the two-stage random graph and
//! the global random graph. Localities: *locality* (contiguous packing)
//! and *weak locality* (random within Pods — the paper's worst-case
//! fragmentation model).
//!
//! Paper shape: flat-tree beats the two-stage random graph on small
//! networks (k ≤ 14) and stays within ~6–9% beyond; fat-tree is highly
//! placement-sensitive (weak locality hurts it badly); the random graph is
//! the least sensitive.

use ft_core::{FlatTree, FlatTreeConfig, Mode};
use ft_experiments::{parallel_points, print_figure, rel_diff, ShapeChecks, SweepOpts};
use ft_metrics::throughput::{throughput, ThroughputOptions};
use ft_metrics::{Series, Table};
use ft_topo::{
    fat_tree, jellyfish_matching_fat_tree, two_stage_random_graph, Network, TwoStageParams,
};
use ft_workload::{generate, Locality, TrafficPattern, WorkloadSpec};

#[derive(Clone, Copy, PartialEq)]
enum Topo {
    FatTree,
    FlatTree,
    TwoStage,
    RandomGraph,
}

fn build(topo: Topo, k: usize, seed: u64) -> Network {
    match topo {
        Topo::FatTree => fat_tree(k).unwrap(),
        Topo::FlatTree => FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
            .unwrap()
            .materialize(&Mode::LocalRandom)
            .unwrap(),
        Topo::TwoStage => {
            two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), seed).unwrap()
        }
        Topo::RandomGraph => jellyfish_matching_fat_tree(k, seed).unwrap(),
    }
}

fn main() {
    let opts = SweepOpts::from_args(12);
    let combos = [
        (Topo::FatTree, Locality::Strong, "Fat-tree locality"),
        (Topo::FatTree, Locality::Weak, "Fat-tree weak locality"),
        (Topo::FlatTree, Locality::Strong, "Flat-tree locality"),
        (Topo::FlatTree, Locality::Weak, "Flat-tree weak locality"),
        (Topo::TwoStage, Locality::Strong, "Two-stage RG locality"),
        (Topo::TwoStage, Locality::Weak, "Two-stage RG weak locality"),
        (Topo::RandomGraph, Locality::Strong, "Random graph locality"),
        (
            Topo::RandomGraph,
            Locality::Weak,
            "Random graph weak locality",
        ),
    ];
    let mut points = Vec::new();
    for &k in &opts.k_values {
        for (i, _) in combos.iter().enumerate() {
            for rep in 0..opts.reps {
                points.push((k, i, rep));
            }
        }
    }
    let results = parallel_points(points.clone(), |&(k, ci, rep)| {
        let (topo, locality, _) = combos[ci];
        let seed = opts.seed + rep as u64;
        let net = build(topo, k, seed);
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 20,
            locality,
        };
        let tm = generate(&net, &spec, seed);
        let r = throughput(
            &net,
            &tm,
            ThroughputOptions {
                epsilon: opts.epsilon,
                exact_threshold: 0,
                max_steps: opts.max_steps,
                ..Default::default()
            },
        )
        .unwrap();
        if r.budget_exhausted {
            eprintln!(
                "{}",
                ft_metrics::budget_warning(
                    &format!("fig8 combo={ci} k={k} seed={seed}"),
                    r.lambda,
                    opts.max_steps.unwrap_or(0),
                )
            );
        }
        let lambda = r.lambda;
        // normalize to the nominal 20-server cluster (only k = 4 hosts
        // fewer; same normalization as Figure 7)
        let actual = spec.cluster_size.min(net.num_servers());
        lambda * (actual as f64 - 1.0) / 19.0
    });

    // average repetitions per (k, curve)
    let mut acc: std::collections::HashMap<(usize, usize), (f64, usize)> =
        std::collections::HashMap::new();
    for ((k, ci, _), v) in points.iter().zip(&results) {
        let e = acc.entry((*k, *ci)).or_insert((0.0, 0));
        e.0 += v;
        e.1 += 1;
    }
    let mut series: Vec<Series> = combos
        .iter()
        .map(|(_, _, name)| Series::new(*name))
        .collect();
    for &k in &opts.k_values {
        for ci in 0..combos.len() {
            let (sum, cnt) = acc[&(k, ci)];
            series[ci].push(k as f64, sum / cnt as f64);
        }
    }
    let table = Table::from_series("k", &series);
    print_figure(
        "Figure 8: throughput of all-to-all traffic in 20-server clusters",
        "paper shape: flat-tree ≥ two-stage RG for k ≤ 14; fat-tree highly placement-sensitive; random graph least sensitive",
        &table,
        opts.csv_path.as_deref(),
    );

    let at = |ci: usize, k: usize| series[ci].at(k as f64).unwrap();
    let mut checks = ShapeChecks::new();
    for &k in &opts.k_values {
        if k < 8 {
            continue;
        }
        let flat_loc = at(2, k);
        let ts_loc = at(4, k);
        // The paper's crossover vs the two-stage RG falls at k ≈ 14; our
        // two-stage reconstruction is slightly stronger (see fig6 and
        // EXPERIMENTS.md), moving it to k ≈ 12. Check: flat-tree wins
        // outright on small fabrics and stays within the paper's ~6–9%
        // band beyond the crossover.
        if k <= 10 {
            checks.check(
                &format!("k={k}: flat-tree ≥ two-stage RG (locality)"),
                flat_loc >= ts_loc * 0.97,
                format!("flat {flat_loc:.4} vs two-stage {ts_loc:.4}"),
            );
        } else {
            checks.check(
                &format!("k={k}: flat-tree within 10% of two-stage RG"),
                rel_diff(flat_loc, ts_loc) <= 0.10,
                format!("flat {flat_loc:.4} vs two-stage {ts_loc:.4}"),
            );
        }
        // fat-tree suffers under weak locality more than the random graph
        let fat_drop = at(0, k) / at(1, k).max(1e-12);
        let rg_drop = at(6, k) / at(7, k).max(1e-12);
        checks.check(
            &format!("k={k}: fat-tree more placement-sensitive than RG"),
            fat_drop >= rg_drop * 0.95,
            format!("fat loc/weak {fat_drop:.3} vs rg {rg_drop:.3}"),
        );
        checks.check(
            &format!("k={k}: random graph locality-insensitive"),
            rel_diff(at(6, k), at(7, k)) <= 0.25,
            format!("loc {:.4} vs weak {:.4}", at(6, k), at(7, k)),
        );
    }
    checks.finish();
}
