//! §3.2 / §2.4: the (m, n) profiling table.
//!
//! For each k, sweeps every (m, n) at the paper's k/8 granularity (with
//! m + n ≤ k/2) and prints the average-path-length matrix of the
//! approximated global random graph, marking the argmin. This is the
//! standalone form of the profiling embedded in Figure 5.
//!
//! Paper result: m = k/8, n = 2k/8 minimizes APL across the sweep.

use ft_core::{profile_mn, FlatTreeConfig};
use ft_experiments::{print_figure, ShapeChecks, SweepOpts};
use ft_metrics::Table;

fn main() {
    let opts = SweepOpts::from_args(16);
    let mut checks = ShapeChecks::new();
    for &k in &opts.k_values {
        if k < 6 {
            continue; // k = 4 admits a single (m, n); nothing to profile
        }
        let result = profile_mn(k, 1).expect("valid sweep");
        let mut table = Table::new(&["m", "n", "APL", "best"]);
        for p in &result.points {
            table.push_row(vec![
                p.m.to_string(),
                p.n.to_string(),
                format!("{:.4}", p.apl),
                if (p.m, p.n) == (result.best.m, result.best.n) {
                    "←".into()
                } else {
                    String::new()
                },
            ]);
        }
        print_figure(
            &format!("§3.2 profiling sweep, k = {k}"),
            "paper: (m = k/8, n = 2k/8) minimizes the global-RG average path length",
            &table,
            None,
        );
        // the paper's configuration is at or within 5% of the optimum
        let cfg = FlatTreeConfig::for_fat_tree_k(k).unwrap();
        let paper = result.points.iter().find(|p| p.m == cfg.m && p.n == cfg.n);
        // below k = 8 the k/8 interval collapses to 1 and rounding distorts
        // the ratios the paper's choice is based on; check k ≥ 8 only
        if let Some(p) = paper.filter(|_| k >= 8) {
            checks.check(
                &format!("k={k}: paper (m={}, n={}) near-optimal", cfg.m, cfg.n),
                p.apl <= result.best.apl * 1.05,
                format!(
                    "paper {:.4} vs best ({}, {}) {:.4}",
                    p.apl, result.best.m, result.best.n, result.best.apl
                ),
            );
        }
        println!();
    }
    checks.finish();
}
