//! Ablation of flat-tree's design choices (DESIGN.md: "ablation benches
//! for the design choices").
//!
//! Three axes, each evaluated on the approximated global random graph:
//!
//! 1. **Pod-core wiring pattern** (§2.3): Pattern 1 vs Pattern 2 vs this
//!    library's Auto selection — measured by average path length and by
//!    the Property-1/2 uniformity spreads (server and link distribution
//!    over core switches).
//! 2. **Inter-Pod chaining** (§2.5): Ring vs open Path — the Path boundary
//!    Pods lose their side links (fall back to local), lengthening paths.
//! 3. **Side/cross row-parity mixing** (§2.5): the paper alternates side
//!    and cross by converter row; the ablation forces all-side and
//!    all-cross to show the mixing's contribution.

use ft_core::{
    core_distribution, FlatTree, FlatTreeConfig, InterPodWiring, Mode, SixPortConfig, WiringPattern,
};
use ft_experiments::{print_figure, ShapeChecks, SweepOpts};
use ft_metrics::path_length::average_server_path_length;
use ft_metrics::Table;

fn main() {
    let opts = SweepOpts::from_args(16);
    let mut checks = ShapeChecks::new();

    // ---- axis 1: wiring patterns ----
    let mut t1 = Table::new(&["k", "pattern", "APL", "server spread", "edge-link spread"]);
    for &k in &opts.k_values {
        for (pattern, name) in [
            (WiringPattern::Pattern1, "pattern-1"),
            (WiringPattern::Pattern2, "pattern-2"),
            (WiringPattern::Auto, "auto"),
        ] {
            let mut cfg = FlatTreeConfig::for_fat_tree_k(k).unwrap();
            cfg.wiring = pattern;
            let ft = FlatTree::new(cfg).unwrap();
            let net = ft.materialize(&Mode::GlobalRandom).unwrap();
            let apl = average_server_path_length(&net);
            let dist = core_distribution(&net);
            t1.push_row(vec![
                k.to_string(),
                name.into(),
                format!("{apl:.4}"),
                dist.server_spread().to_string(),
                dist.edge_link_spread().to_string(),
            ]);
            if pattern == WiringPattern::Auto {
                checks.check(
                    &format!("k={k}: auto keeps Property 1 spread ≤ 2m"),
                    dist.server_spread() <= 2 * cfg.m as u32,
                    format!("spread {}", dist.server_spread()),
                );
                checks.check(
                    &format!("k={k}: auto APL finite (connected)"),
                    apl.is_finite(),
                    format!("APL {apl}"),
                );
            }
        }
    }
    print_figure(
        "Ablation 1: Pod-core wiring pattern",
        "the literal Pattern 2 degenerates when (m+1) | group size; Auto avoids it",
        &t1,
        None,
    );

    // ---- axis 2: ring vs path chaining ----
    let mut t2 = Table::new(&["k", "chaining", "APL"]);
    for &k in &opts.k_values {
        let mut apls = Vec::new();
        for (chain, name) in [
            (InterPodWiring::Ring, "ring"),
            (InterPodWiring::Path, "path"),
        ] {
            let mut cfg = FlatTreeConfig::for_fat_tree_k(k).unwrap();
            cfg.inter_pod = chain;
            let net = FlatTree::new(cfg)
                .unwrap()
                .materialize(&Mode::GlobalRandom)
                .unwrap();
            let apl = average_server_path_length(&net);
            apls.push(apl);
            t2.push_row(vec![k.to_string(), name.into(), format!("{apl:.4}")]);
        }
        if k >= 8 {
            checks.check(
                &format!("k={k}: ring no worse than open path"),
                apls[0] <= apls[1] + 1e-9,
                format!("ring {:.4} vs path {:.4}", apls[0], apls[1]),
            );
        }
    }
    print_figure(
        "Ablation 2: inter-Pod chaining",
        "closing the Pod chain into a ring keeps boundary Pods' side links",
        &t2,
        None,
    );

    // ---- axis 3: side/cross mixing ----
    let mut t3 = Table::new(&["k", "six-port policy", "APL"]);
    for &k in &opts.k_values {
        let cfg = FlatTreeConfig::for_fat_tree_k(k).unwrap();
        let ft = FlatTree::new(cfg).unwrap();
        let mixed = ft.resolve(&Mode::GlobalRandom).unwrap();
        let mut results = Vec::new();
        for (policy, name) in [
            (None, "row-parity mix (paper)"),
            (Some(SixPortConfig::Side), "all side"),
            (Some(SixPortConfig::Cross), "all cross"),
        ] {
            let mut states = mixed.clone();
            if let Some(forced) = policy {
                for s in states.six.iter_mut() {
                    if s.uses_side() {
                        *s = forced;
                    }
                }
            }
            let net = ft.materialize_states(&states).unwrap();
            let apl = average_server_path_length(&net);
            results.push(apl);
            t3.push_row(vec![k.to_string(), name.into(), format!("{apl:.4}")]);
        }
        if k >= 8 {
            let best_uniform = results[1].min(results[2]);
            checks.check(
                &format!("k={k}: row-parity mix within 3% of best uniform policy"),
                results[0] <= best_uniform * 1.03,
                format!(
                    "mix {:.4} vs all-side {:.4} / all-cross {:.4}",
                    results[0], results[1], results[2]
                ),
            );
        }
    }
    print_figure(
        "Ablation 3: side/cross mixing",
        "alternating side and cross by row diversifies inter-Pod links (§2.5)",
        &t3,
        None,
    );

    checks.finish();
}
