//! Deterministic pending-event set: a min-heap over [`EventKey`]s.
//!
//! `std::collections::BinaryHeap` makes no promise about the pop order of
//! *equal* elements, so the queue never gives it any: every pushed event
//! receives a unique sequence number, making each [`EventKey`] distinct
//! and the pop order a pure function of `(time, push order)`. `NaN`
//! timestamps are rejected at [`EventQueue::push`], so the hot pop loop
//! needs no float-comparison escape hatches at all.

use crate::key::{EventKey, TimeError, TimePoint};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled entry. Ordering ignores the payload: keys are unique
/// (the seq component), so payloads never need to be comparable.
struct Entry<E> {
    key: EventKey,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Future-event set ordered by `(time, insertion seq)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at time `time`, returning its key.
    /// Fails only on a `NaN` timestamp.
    pub fn push(&mut self, time: f64, payload: E) -> Result<EventKey, TimeError> {
        let key = EventKey {
            time: TimePoint::new(time)?,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { key, payload }));
        Ok(key)
    }

    /// Removes and returns the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.payload))
    }

    /// The key of the earliest pending event, without removing it.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(e)| e.key)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c").unwrap();
        q.push(1.0, "a").unwrap();
        q.push(2.0, "b").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..32 {
            q.push(5.0, i).unwrap();
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn nan_rejected_and_queue_unchanged() {
        let mut q = EventQueue::new();
        q.push(1.0, ()).unwrap();
        assert_eq!(q.push(f64::NAN, ()), Err(TimeError::NotANumber));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(2.0, "later").unwrap();
        q.push(1.0, "sooner").unwrap();
        let peeked = q.peek_key().unwrap();
        let (popped, payload) = q.pop().unwrap();
        assert_eq!(peeked, popped);
        assert_eq!(payload, "sooner");
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn keys_are_unique_even_at_equal_times() {
        let mut q = EventQueue::new();
        let a = q.push(1.0, ()).unwrap();
        let b = q.push(1.0, ()).unwrap();
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10.0, 10).unwrap();
        q.push(1.0, 1).unwrap();
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(5.0, 5).unwrap();
        q.push(0.5, 0).unwrap(); // earlier than everything left
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
        assert!(q.pop().is_none());
    }
}
