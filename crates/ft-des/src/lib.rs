//! ft-des: a deterministic discrete-event simulation engine.
//!
//! The flat-tree paper's core claim is that the fabric can convert
//! between Clos and random-graph modes *while carrying traffic* (§2.6).
//! Measuring that requires a simulator where the topology itself is an
//! event source — flow arrivals, link failures, and zone conversions all
//! land in one totally ordered queue. This crate is the engine under
//! that simulator (the flow model lives in `ft-sim::des`):
//!
//! - [`TimePoint`] / [`EventKey`]: total-order keys over `f64`
//!   timestamps — `NaN` rejected at construction, insertion sequence
//!   number as the tie-break, so heap order is a pure function of push
//!   order (`key` module).
//! - [`EventQueue`]: the pending-event min-heap (`queue` module).
//! - [`Engine`] / [`Component`] / [`Context`]: the clock, the handler
//!   registry, and the dispatch loop, instrumented with ft-obs spans and
//!   counters (`engine` module).
//!
//! Everything is bit-deterministic by construction: the engine has no
//! wall-clock, no hashing, and no thread-count dependence, which is what
//! lets the conversion-disruption experiments compare event traces with
//! `cmp`(1) across `FT_THREADS` settings (DESIGN.md §14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod key;
pub mod queue;

pub use engine::{Component, ComponentId, Context, Engine, RunStats, ScheduleError};
pub use key::{EventKey, TimeError, TimePoint};
pub use queue::EventQueue;
