//! Total-order event keys over `f64` simulation timestamps.
//!
//! Simulation clocks are `f64` seconds, but `f64` is only *partially*
//! ordered (`NaN` compares to nothing), so a binary heap keyed on raw
//! timestamps either needs `partial_cmp(..).unwrap()` sprinkled through
//! the hot loop or silently corrupts its ordering the first time a `NaN`
//! sneaks in. [`TimePoint`] closes that hole once, at the boundary: a
//! `NaN` is rejected when the key is *constructed*, and every survivor
//! carries a `u64` whose natural integer order equals the numeric order
//! of the original floats (the classic monotone bit trick: flip all bits
//! of negatives, flip only the sign bit of non-negatives).
//!
//! [`EventKey`] pairs a [`TimePoint`] with an insertion sequence number,
//! giving simultaneous events a deterministic FIFO tie-break — heap order
//! is then a pure function of push order, never of float quirks or of
//! `BinaryHeap`'s unspecified equal-element behavior (DESIGN.md §14).

use std::fmt;

/// A totally ordered `f64` timestamp. `NaN` cannot be represented;
/// construction rejects it. Note that under this order `-0.0 < +0.0`
/// (they map to distinct keys), which is harmless for simulation clocks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimePoint(u64);

/// Rejected timestamp values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeError {
    /// The timestamp was `NaN`.
    NotANumber,
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::NotANumber => write!(f, "event time is NaN"),
        }
    }
}

impl std::error::Error for TimeError {}

impl TimePoint {
    /// Wraps a finite or infinite timestamp; rejects `NaN`.
    pub fn new(t: f64) -> Result<TimePoint, TimeError> {
        if t.is_nan() {
            return Err(TimeError::NotANumber);
        }
        let bits = t.to_bits();
        // Monotone map f64 → u64: negatives reverse (flip every bit),
        // non-negatives shift above them (set the sign bit).
        let key = if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        };
        Ok(TimePoint(key))
    }

    /// The original `f64` value.
    pub fn value(self) -> f64 {
        let key = self.0;
        let bits = if key >> 63 == 1 {
            key & !(1 << 63)
        } else {
            !key
        };
        f64::from_bits(bits)
    }
}

impl fmt::Debug for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.value())
    }
}

/// Total-order key of one scheduled event: timestamp first, insertion
/// sequence number as the tie-break. Derived `Ord` on the field order
/// gives exactly "earlier time first, FIFO among equal times".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey {
    /// When the event fires.
    pub time: TimePoint,
    /// Queue-assigned insertion sequence number (unique per queue).
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_matches_f64_order() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for (i, &a) in samples.iter().enumerate() {
            for &b in &samples[i + 1..] {
                let (ka, kb) = (TimePoint::new(a).unwrap(), TimePoint::new(b).unwrap());
                assert!(ka < kb, "{a} should order before {b}");
            }
        }
    }

    #[test]
    fn negative_zero_orders_below_zero() {
        let nz = TimePoint::new(-0.0).unwrap();
        let z = TimePoint::new(0.0).unwrap();
        assert!(nz < z);
    }

    #[test]
    fn roundtrip_preserves_value() {
        for t in [-1e12, -3.25, 0.0, 0.125, 7.0, 1e100, f64::INFINITY] {
            let tp = TimePoint::new(t).unwrap();
            assert_eq!(tp.value().to_bits(), t.to_bits(), "{t}");
        }
    }

    #[test]
    fn nan_rejected() {
        assert_eq!(TimePoint::new(f64::NAN), Err(TimeError::NotANumber));
        assert!(!TimeError::NotANumber.to_string().is_empty());
    }

    #[test]
    fn key_breaks_ties_by_seq() {
        let t = TimePoint::new(4.0).unwrap();
        let a = EventKey { time: t, seq: 0 };
        let b = EventKey { time: t, seq: 1 };
        assert!(a < b);
        let later = EventKey {
            time: TimePoint::new(5.0).unwrap(),
            seq: 0,
        };
        assert!(b < later, "time dominates seq");
    }
}
